#!/usr/bin/env python3
"""Visualize processor allocation over time as an ASCII Gantt chart.

Runs workload #5 (1 MATRIX + 1 GRAVITY) under three policies and renders
who owned each processor when.  The charts make the policies' characters
directly visible:

* Equipartition — two static bands;
* Dyn-Aff — MATRIX's band breathes as GRAVITY's barrier phases come and
  go, but tasks keep returning to the same processors;
* Dyn-Aff-NoPri — MATRIX floods the machine and GRAVITY is squeezed into
  a sliver (the unfairness of Figure 6).

Run:  python examples/allocation_timeline.py
"""

from repro import DYN_AFF, DYN_AFF_NOPRI, EQUIPARTITION
from repro.core.system import SchedulingSystem
from repro.core.trace import AllocationTrace
from repro.engine.rng import RngRegistry
from repro.measure.workloads import make_jobs


def main() -> None:
    for policy in (EQUIPARTITION, DYN_AFF, DYN_AFF_NOPRI):
        rng = RngRegistry(1)
        jobs = make_jobs(5, rng.spawn("workload"))
        trace = AllocationTrace()
        system = SchedulingSystem(
            jobs,
            policy,
            n_processors=16,
            seed=1,
            rng=rng.spawn(f"system/{policy.name}"),
            trace=trace,
        )
        result = system.run()
        print(f"=== {policy.name} ===")
        print(trace.render_gantt(width=72))
        for name, metrics in sorted(result.jobs.items()):
            print(f"  {name:8s} finished at {metrics.response_time:6.1f} s")
        print()


if __name__ == "__main__":
    main()
