#!/usr/bin/env python3
"""Compare all five policies on a custom workload mix (Figure 5 style).

Builds a workload that is not in the paper's Table 2 — two MVAs plus a
GRAVITY — and compares every policy with replications and confidence
intervals, printing a relative-response-time table against Equipartition
and the Table 3 style affinity metrics.

Run:  python examples/policy_comparison.py
"""

from repro import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
    compare_policies,
)
from repro.measure.workloads import WorkloadMix
from repro.reporting.tables import render_relative_rt_table, render_table3

CUSTOM_MIX = WorkloadMix(
    mix_id=7, copies={"MVA": 2, "MATRIX": 0, "GRAVITY": 1}, note="custom: 2 MVA + 1 GRAVITY"
)


def main() -> None:
    print(f"Running custom mix {dict(CUSTOM_MIX.copies)} under 5 policies x 3 seeds ...")
    comparison = compare_policies(
        CUSTOM_MIX,
        [EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_NOPRI, DYN_AFF_DELAY],
        replications=3,
    )
    print()
    print(render_relative_rt_table(comparison))
    print()
    print(render_table3(comparison, policies=("Dynamic", "Dyn-Aff", "Dyn-Aff-Delay")))
    print()
    for policy in comparison.policies():
        mean = comparison.mean_response_time(policy)
        print(f"  mean job response time under {policy:14s}: {mean:6.1f} s")
    print()
    print(
        "Things to notice: the fair dynamic policies cluster tightly below\n"
        "Equipartition, while Dyn-Aff-NoPri is erratic — it favours whichever\n"
        "job happened to grab processors first (Figure 6's lesson)."
    )


if __name__ == "__main__":
    main()
