#!/usr/bin/env python3
"""Run the real computations behind the three applications.

The scheduling experiments use workload models; this example runs the
actual algorithms the models abstract:

* exact Mean Value Analysis of a closed queueing network (MVA),
* cache-blocked matrix multiplication (MATRIX),
* a Barnes-Hut N-body simulation with its five-phase step (GRAVITY),

and shows the structural facts the models encode — the MVA wavefront,
the cache-sized matrix blocks, and GRAVITY's sequential tree build.

Run:  python examples/real_kernels.py
"""

import random
import time

from repro.kernels.barnes_hut import BarnesHutSimulation, Body
from repro.kernels.matmul import blocked_matmul, choose_block_size, naive_matmul
from repro.kernels.mva_solver import QueueingNetwork, solve_mva, wavefront_order
from repro.machine.params import SEQUENT_SYMMETRY


def demo_mva() -> None:
    print("=== MVA: exact Mean Value Analysis ===")
    network = QueueingNetwork(
        demands=(0.005, 0.020, 0.012, 1.0),  # cpu, 2 disks, think time
        delay_stations=frozenset({3}),
    )
    results = solve_mva(network, population=24)
    final = results[-1]
    print(f"  24 customers: throughput {final.throughput:.2f}/s, "
          f"response time {final.response_time * 1000:.1f} ms, "
          f"bottleneck station #{final.bottleneck()}")
    waves = wavefront_order(population=24, n_stations=4)
    widths = [len(w) for w in waves]
    print(f"  dynamic-programming wavefront: {len(waves)} waves, "
          f"widths ramp {widths[:5]}...{widths[-3:]} (Figure 2's shape)")
    print()


def demo_matrix() -> None:
    print("=== MATRIX: cache-blocked multiply ===")
    block = choose_block_size(SEQUENT_SYMMETRY.cache_size_bytes)
    print(f"  Symmetry's 64 KB cache -> {block}x{block} element blocks")
    n = 96
    rng = random.Random(0)
    a = [[rng.uniform(-1, 1) for _ in range(n)] for _ in range(n)]
    b = [[rng.uniform(-1, 1) for _ in range(n)] for _ in range(n)]
    t0 = time.perf_counter()
    blocked = blocked_matmul(a, b, block=block)
    t_blocked = time.perf_counter() - t0
    t0 = time.perf_counter()
    reference = naive_matmul(a, b)
    t_naive = time.perf_counter() - t0
    error = max(
        abs(x - y) for rb, rn in zip(blocked, reference) for x, y in zip(rb, rn)
    )
    print(f"  {n}x{n} multiply: blocked {t_blocked * 1000:.0f} ms, "
          f"naive {t_naive * 1000:.0f} ms, max |diff| {error:.2e}")
    print()


def demo_gravity() -> None:
    print("=== GRAVITY: Barnes-Hut N-body ===")
    rng = random.Random(1)
    bodies = [
        Body(rng.gauss(0, 5), rng.gauss(0, 5), rng.gauss(0, 0.2), rng.gauss(0, 0.2))
        for _ in range(300)
    ]
    sim = BarnesHutSimulation(bodies, dt=0.01, theta=0.6)
    px0, py0 = sim.total_momentum()
    t0 = time.perf_counter()
    for _ in range(5):
        # The five-phase step structure of Figure 4:
        sim.phase_build_tree()        # phase 1: sequential
        forces = sim.phase_forces()   # phase 2-3: parallel tree walks
        sim.phase_update(forces)      # phase 4: parallel integration
        sim.phase_collect()           # phase 5: parallel reduction
        sim.steps_run += 1
    elapsed = time.perf_counter() - t0
    px1, py1 = sim.total_momentum()
    print(f"  300 bodies x 5 steps in {elapsed * 1000:.0f} ms")
    print(f"  momentum drift: ({px1 - px0:+.2e}, {py1 - py0:+.2e})  (symmetric forces)")
    print(f"  step structure: 1 sequential tree build + 4 parallel phases,")
    print(f"  which is exactly the dependence shape the GRAVITY model schedules")
    print()


if __name__ == "__main__":
    demo_mva()
    demo_matrix()
    demo_gravity()
