#!/usr/bin/env python3
"""Extrapolate policy behavior to future machines (Figures 8-13 style).

Parameterizes the extended response time model (Figure 7) from a live run
of workload #5 and sweeps processor-speed x cache-size over six decades,
printing each policy's relative-response-time curve and crossover point.

Run:  python examples/future_machines.py
"""

from repro import DYN_AFF, DYN_AFF_DELAY, DYNAMIC, EQUIPARTITION, compare_policies
from repro.model import (
    DEFAULT_PENALTIES,
    FutureMachineModel,
    observations_from_comparison,
    sweep_relative,
)
from repro.reporting.figures import ascii_chart

MIX = 5
POLICIES = ("Dynamic", "Dyn-Aff", "Dyn-Aff-Delay")


def main() -> None:
    print(f"Parameterizing the model from workload #{MIX} runs ...")
    comparison = compare_policies(
        MIX, [EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_DELAY], replications=3
    )
    observations = observations_from_comparison(comparison)
    model = FutureMachineModel(DEFAULT_PENALTIES)

    for job in comparison.job_names():
        sweeps = {
            policy: sweep_relative(
                model, observations[policy][job], observations["Equipartition"][job]
            )
            for policy in POLICIES
        }
        print()
        print(
            ascii_chart(
                {p: list(zip(s.products, s.ratios)) for p, s in sweeps.items()},
                title=f"{job}: response time relative to Equipartition",
                log_x=True,
                y_label="rel RT",
            )
        )
        for policy, sweep in sweeps.items():
            crossover = sweep.crossover_product()
            where = f"at ~{crossover:,.0f}x speed-cache" if crossover else "never (in range)"
            print(f"    {policy:14s} crosses above Equipartition {where}")

    print()
    print(
        "The oblivious Dynamic curve rises first: on fast machines its\n"
        "cache-blind reallocation erodes the utilization gains.  Dyn-Aff\n"
        "and especially Dyn-Aff-Delay keep the crossover far in the future\n"
        "— the paper's argument for building affinity into the allocator\n"
        "even though it buys nothing on current hardware."
    )


if __name__ == "__main__":
    main()
