#!/usr/bin/env python3
"""Quickstart: measure a cache penalty, then schedule a workload mix.

This walks the paper's pipeline end to end in under a minute:

1. measure ``P^A`` / ``P^NA`` for one application at one rescheduling
   interval (the Section 4 experiment, Table 1);
2. run workload mix #5 (1 MATRIX + 1 GRAVITY) under Equipartition and
   Dyn-Aff on a simulated 16-processor Sequent Symmetry (Section 6);
3. print per-job response times, reallocation counts and %affinity.

Run:  python examples/quickstart.py
"""

from repro import DYN_AFF, EQUIPARTITION, MVA, MATRIX, PenaltyExperiment, run_mix


def main() -> None:
    # --- 1. cache penalties (Section 4) --------------------------------
    print("Measuring cache penalties for MVA at Q = 100 ms ...")
    experiment = PenaltyExperiment(scale=32)  # coarse scale: fast demo
    result = experiment.measure(MVA, q_s=0.100, partners=(MATRIX,))
    print(f"  P^NA (no affinity, cache flushed) : {result.p_na_us:7.0f} us/switch")
    print(f"  P^A  (affinity, MATRIX intervened): {result.p_a_us('MATRIX'):7.0f} us/switch")
    print(f"  kernel context switch path length :     750 us/switch")
    print()

    # --- 2. schedule a mix (Section 6) ---------------------------------
    print("Scheduling workload #5 (1 MATRIX + 1 GRAVITY) on 16 processors ...")
    for policy in (EQUIPARTITION, DYN_AFF):
        outcome = run_mix(5, policy, seed=1)
        print(f"  {policy.name}:")
        for name, metrics in sorted(outcome.jobs.items()):
            print(
                f"    {name:8s} response time {metrics.response_time:6.1f} s, "
                f"{metrics.n_reallocations:5d} reallocations, "
                f"{metrics.pct_affinity:3.0f}% with affinity"
            )

    # --- 3. the paper's observation ------------------------------------
    print()
    print(
        "Note how Dyn-Aff reallocates thousands of times yet beats the\n"
        "static Equipartition: reallocation penalties are tiny next to the\n"
        "utilization they buy — the paper's central result."
    )


if __name__ == "__main__":
    main()
