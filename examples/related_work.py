#!/usr/bin/env python3
"""Reconcile the paper with the prior affinity-scheduling literature.

Section 8 of the paper explains why its "affinity barely matters"
conclusion does not contradict earlier work that found large affinity
effects: the earlier work modelled *time sharing*.  This example shows
both sides computationally:

1. the Squillante & Lazowska queueing model — affinity disciplines vs
   FCFS across run-interval scales;
2. a head-to-head of the DYNIX-style time-sharing scheduler against the
   paper's space-sharing policies on workload #5.

Run:  python examples/related_work.py
"""

import dataclasses

from repro import DYN_AFF, DYNAMIC
from repro.core.timesharing import (
    TIME_SHARING,
    TIME_SHARING_AFFINITY,
    TimeSharingSystem,
)
from repro.engine.rng import RngRegistry
from repro.measure.runner import run_mix
from repro.measure.workloads import make_jobs
from repro.model.affinity_queueing import QueueingConfig, compare_disciplines


def squillante_lazowska() -> None:
    print("=== The S&L queueing model: affinity benefit vs run interval ===")
    base = QueueingConfig(
        n_processors=4, n_tasks=5, footprint_lines=3000, survival=0.7
    )
    print("  interval   FCFS     FP     LP     MI     (cycle time relative to FCFS)")
    for service in (0.002, 0.010, 0.050, 0.400):
        config = dataclasses.replace(
            base, mean_service_s=service, mean_think_s=2 * service
        )
        results = compare_disciplines(config, n_completions=8000, seed=1)
        fcfs = results["FCFS"].mean_cycle_s
        cells = "  ".join(
            f"{results[p].mean_cycle_s / fcfs:5.3f}" for p in ("FCFS", "FP", "LP", "MI")
        )
        print(f"  {service * 1000:6.1f} ms  {cells}")
    print(
        "  -> ~20% benefit at 2 ms (S&L's time-sharing domain), under 1% at\n"
        "     400 ms (this paper's space-sharing reallocation intervals).\n"
    )


def head_to_head() -> None:
    print("=== Workload #5: time sharing vs space sharing head-to-head ===")
    rows = []
    for ts_policy in (TIME_SHARING, TIME_SHARING_AFFINITY):
        rng = RngRegistry(1)
        jobs = make_jobs(5, rng.spawn("workload"))
        result = TimeSharingSystem(
            jobs, ts_policy, n_processors=16, seed=1, rng=rng.spawn(ts_policy.name)
        ).run()
        rows.append((ts_policy.name, result))
    for policy in (DYNAMIC, DYN_AFF):
        rows.append((policy.name, run_mix(5, policy, seed=1)))
    for name, result in rows:
        penalty = sum(m.cache_penalty_total for m in result.jobs.values())
        print(
            f"  {name:16s} mean RT {result.mean_response_time():6.1f} s, "
            f"total cache penalty {penalty:5.1f} s"
        )
    print(
        "  -> space sharing wins outright, and most of the cache penalty\n"
        "     affinity could ever fix exists only under time sharing."
    )


if __name__ == "__main__":
    squillante_lazowska()
    head_to_head()
