#!/usr/bin/env python3
"""Define a new application and schedule it against the paper's apps.

Shows the extension surface of the library: an ``AppSpec`` subclass needs
only a thread dependence graph builder, a memory reference model, and a
parallelism hint.  Here we build FFT-BUTTERFLY — log-depth stages of
wide parallelism with barriers — and see how the policies treat it when
it competes with MATRIX.

Run:  python examples/custom_application.py
"""

import random

from repro import DYN_AFF, EQUIPARTITION, MATRIX
from repro.apps.base import AppSpec
from repro.apps.reference import ReferenceSpec
from repro.core.system import SchedulingSystem
from repro.engine.rng import RngRegistry
from repro.reporting.figures import parallelism_histogram
from repro.threads.graph import ThreadGraph
from repro.threads.sync import add_barrier


class FftSpec(AppSpec):
    """A butterfly computation: log2(n) stages of n/2 parallel threads."""

    name = "FFT"
    description = "butterfly stages with barriers; wide, bursty parallelism"

    _REFERENCE = ReferenceSpec(
        data_blocks=2048,
        p_reuse=0.97,
        refs_per_touch=16,
        reuse_window=256,
        cold_pattern="sequential",
    )

    def __init__(self, n_points: int = 64, stage_service_s: float = 0.05) -> None:
        if n_points & (n_points - 1):
            raise ValueError("n_points must be a power of two")
        self.n_points = n_points
        self.stage_service_s = stage_service_s

    @property
    def reference(self) -> ReferenceSpec:
        return self._REFERENCE

    def max_parallelism_hint(self) -> int:
        return self.n_points // 2

    def build_graph(self, rng: random.Random) -> ThreadGraph:
        graph = ThreadGraph(self.name)
        stages = self.n_points.bit_length() - 1
        previous_barrier = None
        for stage in range(stages):
            tids = []
            for _ in range(self.n_points // 2):
                jitter = 1.0 + 0.2 * (2.0 * rng.random() - 1.0)
                tid = graph.add_thread(self.stage_service_s * jitter, phase=f"stage{stage}")
                if previous_barrier is not None:
                    graph.add_dependency(previous_barrier, tid)
                tids.append(tid)
            previous_barrier = add_barrier(graph, tids, phase=f"barrier{stage}")
        return graph


def main() -> None:
    rng = RngRegistry(0)
    fft = FftSpec()

    print("FFT in isolation:")
    graph = fft.build_graph(rng.stream("profile"))
    print(parallelism_histogram(graph.parallelism_profile(16), "FFT"))
    print()

    print("FFT competing with MATRIX on 16 processors:")
    for policy in (EQUIPARTITION, DYN_AFF):
        jobs = [
            fft.make_job(rng.stream(f"fft/{policy.name}"), n_processors=16),
            MATRIX.make_job(rng.stream(f"mat/{policy.name}"), n_processors=16),
        ]
        result = SchedulingSystem(jobs, policy, n_processors=16, seed=1).run()
        print(f"  {policy.name}:")
        for name, metrics in sorted(result.jobs.items()):
            print(
                f"    {name:8s} RT {metrics.response_time:6.1f} s  "
                f"avg allocation {metrics.average_allocation:5.2f}  "
                f"waste {metrics.waste:6.1f} cpu-s"
            )
    print()
    print(
        "Under Equipartition the FFT's barrier gaps strand its share of the\n"
        "machine; Dyn-Aff hands those processors to MATRIX and returns them\n"
        "(usually to the same caches) when the next stage opens."
    )


if __name__ == "__main__":
    main()
