"""SWF ingestion: golden parse, strict malformed-input errors, full replay.

The golden file pins the exact parse of the committed sample trace —
any change to field mapping, the allocated-to-requested fallback, or
normalization shows up as a diff against it.  Malformed inputs must be
*errors with a line number*, never silent skips: a trace that parses
differently than the archive intended corrupts every experiment built
on it.
"""

import dataclasses
import json
import os

import pytest

from repro.core.policies import DYN_AFF
from repro.obs import Tracer
from repro.obs.invariants import check_trace
from repro.obs.replay import verify_replay
from repro.workloads.opensys import (
    SwfFormatError,
    SwfScenario,
    load_swf,
    parse_swf,
    run_scenario,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "..", "data")
SAMPLE = os.path.join(DATA_DIR, "sample.swf")
GOLDEN = os.path.join(DATA_DIR, "sample_swf_golden.json")


def _line(
    job_id=1,
    submit="0",
    run="4.0",
    allocated="2",
    requested="2",
    status="1",
):
    """One syntactically complete 18-field SWF line."""
    fields = [
        str(job_id), submit, "0", run, allocated, "1.0", "1024",
        requested, "8.0", "2048", status, "101", "10", "1", "1", "1",
        "-1", "-1",
    ]
    return "  ".join(fields)


class TestGolden:
    def test_sample_parses_to_golden(self):
        jobs = [dataclasses.asdict(job) for job in load_swf(SAMPLE)]
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert jobs == golden

    def test_allocated_fallback_to_requested(self):
        """Job 5 records -1 allocated processors; field 8 fills in."""
        jobs = {job.job_id: job for job in load_swf(SAMPLE)}
        assert jobs[5].n_procs == 4

    def test_comments_and_blanks_skipped(self):
        jobs = parse_swf("; comment\n\n" + _line() + "\n")
        assert len(jobs) == 1
        assert jobs[0].line_no == 3


class TestMalformed:
    def test_truncated_line(self):
        text = _line() + "\n  1 2 3 4 5\n"
        with pytest.raises(SwfFormatError) as exc:
            parse_swf(text, source="bad.swf")
        assert exc.value.line_no == 2
        assert "bad.swf:2:" in str(exc.value)
        assert "truncated" in str(exc.value)

    def test_negative_runtime(self):
        text = _line(job_id=1) + "\n" + _line(job_id=2, submit="5", run="-1")
        with pytest.raises(SwfFormatError) as exc:
            parse_swf(text, source="bad.swf")
        assert exc.value.line_no == 2
        assert "negative runtime" in str(exc.value)

    def test_negative_submit(self):
        with pytest.raises(SwfFormatError) as exc:
            parse_swf(_line(submit="-3"))
        assert exc.value.line_no == 1
        assert "negative submit" in str(exc.value)

    def test_out_of_order_submits(self):
        text = (
            _line(job_id=1, submit="10")
            + "\n; interlude\n"
            + _line(job_id=2, submit="4")
        )
        with pytest.raises(SwfFormatError) as exc:
            parse_swf(text, source="bad.swf")
        assert exc.value.line_no == 3
        assert "non-decreasing" in str(exc.value)

    def test_non_numeric_field(self):
        with pytest.raises(SwfFormatError) as exc:
            parse_swf(_line(run="fast"))
        assert exc.value.line_no == 1
        assert "non-numeric" in str(exc.value)

    def test_duplicate_job_id(self):
        text = _line(job_id=7) + "\n" + _line(job_id=7, submit="5")
        with pytest.raises(SwfFormatError) as exc:
            parse_swf(text)
        assert exc.value.line_no == 2
        assert "duplicate job id 7" in str(exc.value)

    def test_no_usable_processor_count(self):
        with pytest.raises(SwfFormatError) as exc:
            parse_swf(_line(allocated="-1", requested="0"))
        assert exc.value.line_no == 1
        assert "no usable processor count" in str(exc.value)


class TestScenario:
    def test_instantiation_normalizes_and_scales(self):
        scenario = SwfScenario.from_file(SAMPLE, time_scale=4.0, work_scale=2.0)
        instance = scenario.instantiate(seed=0, n_processors=8)
        assert instance.arrival_times[0] == 0.0  # normalized to first submit
        assert instance.arrival_times == tuple(sorted(instance.arrival_times))
        assert len(instance.jobs) == 10
        # statuses 5 (job 6) and 0 (job 8) become mid-run cancellations
        cancelled = {instance.jobs[i].name for i, _ in instance.cancellations}
        assert cancelled == {"SWF-6", "SWF-8"}

    def test_max_jobs_truncates(self):
        scenario = SwfScenario.from_file(SAMPLE, max_jobs=3)
        instance = scenario.instantiate(seed=0, n_processors=8)
        assert [job.name for job in instance.jobs] == ["SWF-1", "SWF-2", "SWF-3"]

    def test_seed_does_not_change_the_replay(self):
        """A trace is data: every seed replays the identical workload."""
        scenario = SwfScenario.from_file(SAMPLE, time_scale=4.0, work_scale=2.0)
        a = scenario.instantiate(seed=0, n_processors=8)
        b = scenario.instantiate(seed=99, n_processors=8)
        assert a.arrival_times == b.arrival_times
        assert a.cancellations == b.cancellations

    def test_replay_end_to_end_through_oracle(self):
        scenario = SwfScenario.from_file(SAMPLE, time_scale=4.0, work_scale=2.0)
        tracer = Tracer()
        result = run_scenario(
            scenario, DYN_AFF, seed=0, n_processors=8, tracer=tracer
        )
        assert result.n_jobs == 10
        assert result.n_cancelled == 2
        assert result.n_completed == 8
        assert check_trace(tracer.records) == []
        assert verify_replay(tracer.records, result.system) == []
