"""Property-based determinism and calibration checks for the open-system layer.

The contracts under test:

* a scenario instance is a pure function of (name, seed, machine size) —
  re-instantiating or re-running produces bit-identical timelines,
  traces, and metrics;
* the seed-parallel matrix runner is chunking-invariant — any worker
  count produces output bit-identical to a serial sweep;
* arrival processes are prefix-stable — extending the horizon never
  rewrites history, which is exactly why parallel chunking can work;
* utilization targeting holds — the offered load of a Poisson stream
  built by ``for_utilization`` converges on the requested value.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import DYN_AFF, EQUIPARTITION
from repro.engine.rng import RngRegistry
from repro.obs import MetricsRegistry, Tracer
from repro.workloads.opensys import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    built_in_scenarios,
    run_matrix,
    run_scenario,
)

P = 8
SCENARIO_NAMES = ("steady", "bursty", "cancellations", "failures")


def _scenario(name):
    return built_in_scenarios(lite=True, n_processors=P)[name]


# ---------------------------------------------------------------------- #
# bit-identical runs


@given(
    scenario_name=st.sampled_from(SCENARIO_NAMES),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=15, deadline=None)
def test_repeated_runs_are_bit_identical(scenario_name, seed):
    """Same (scenario, seed): identical trace records and metrics."""
    def run():
        tracer = Tracer()
        registry = MetricsRegistry()
        result = run_scenario(
            _scenario(scenario_name),
            DYN_AFF,
            seed=seed,
            n_processors=P,
            tracer=tracer,
            metrics=registry,
        )
        return tracer.records, registry.snapshot(), result

    records_a, metrics_a, result_a = run()
    records_b, metrics_b, result_b = run()
    assert records_a == records_b
    assert metrics_a == metrics_b
    assert result_a.response_times == result_b.response_times
    assert result_a.system.cancelled == result_b.system.cancelled


@given(
    scenario_name=st.sampled_from(SCENARIO_NAMES),
    seed=st.integers(0, 1000),
)
@settings(max_examples=10, deadline=None)
def test_instance_is_policy_free(scenario_name, seed):
    """Instantiation draws nothing from the policy: common random numbers."""
    scenario = _scenario(scenario_name)
    a = scenario.instantiate(seed, n_processors=P)
    b = scenario.instantiate(seed, n_processors=P)
    assert a.arrival_times == b.arrival_times
    assert a.cancellations == b.cancellations
    assert a.outages == b.outages
    assert [j.name for j in a.jobs] == [j.name for j in b.jobs]
    assert [j.graph.total_work() for j in a.jobs] == [
        j.graph.total_work() for j in b.jobs
    ]


@given(
    names=st.sets(st.sampled_from(SCENARIO_NAMES), min_size=1, max_size=2),
    seeds=st.integers(2, 3),
    workers=st.sampled_from([2, 3]),
    base_seed=st.integers(0, 50),
)
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_matrix_workers_bit_identical_to_serial(names, seeds, workers, base_seed):
    """run_matrix output is invariant to the worker count (any chunking)."""
    scenarios = [_scenario(name) for name in sorted(names)]
    policies = [DYN_AFF, EQUIPARTITION]
    serial = run_matrix(
        scenarios, policies, seeds=seeds, base_seed=base_seed,
        n_processors=P, workers=None, collect_metrics=True,
    )
    parallel = run_matrix(
        scenarios, policies, seeds=seeds, base_seed=base_seed,
        n_processors=P, workers=workers, collect_metrics=True,
    )
    assert serial.results == parallel.results
    assert serial.cells == parallel.cells
    assert serial.metrics == parallel.metrics


# ---------------------------------------------------------------------- #
# arrival-process properties


def _processes():
    return st.one_of(
        st.builds(
            PoissonArrivals,
            rate_per_s=st.floats(0.5, 20.0),
        ),
        st.builds(
            BurstyArrivals,
            burst_rate_per_s=st.floats(1.0, 20.0),
            idle_rate_per_s=st.floats(0.0, 0.5),
            mean_burst_s=st.floats(0.1, 2.0),
            mean_idle_s=st.floats(0.1, 2.0),
        ),
        st.builds(
            DiurnalArrivals,
            base_rate_per_s=st.floats(0.5, 20.0),
            amplitude=st.floats(0.0, 1.0),
            period_s=st.floats(0.5, 5.0),
        ),
    )


@given(
    process=_processes(),
    seed=st.integers(0, 10_000),
    horizon=st.floats(0.5, 8.0),
)
@settings(max_examples=50, deadline=None)
def test_arrivals_are_prefix_stable(process, seed, horizon):
    """Extending the horizon appends arrivals; it never rewrites them.

    This is the property that makes pre-sampled timelines chunk-safe:
    a draw made for time t can never depend on anything after t.
    """
    short = process.times(RngRegistry(seed).stream("arrivals"), horizon)
    long = process.times(RngRegistry(seed).stream("arrivals"), 2.0 * horizon)
    assert long[: len(short)] == short
    assert all(t >= horizon for t in long[len(short):])
    assert all(a <= b for a, b in zip(short, short[1:]))


@given(
    target=st.floats(0.1, 0.9),
    mean_work=st.floats(0.1, 5.0),
    n_processors=st.integers(2, 32),
    seed=st.integers(0, 100),
)
@settings(max_examples=25, deadline=None)
def test_poisson_offered_load_hits_target(target, mean_work, n_processors, seed):
    """Long-horizon offered load converges on the requested utilization."""
    process = PoissonArrivals.for_utilization(target, mean_work, n_processors)
    horizon = 4000.0 / process.rate_per_s  # ~4000 arrivals regardless of rate
    times = process.times(RngRegistry(seed).stream("arrivals"), horizon)
    offered = len(times) * mean_work / (n_processors * horizon)
    assert offered == pytest.approx(target, rel=0.10)


@pytest.mark.slow
def test_simulated_utilization_tracks_target():
    """A long steady run's measured utilization lands near the target.

    End-to-end: the arrival rate chosen by ``for_utilization`` pushes
    roughly ``target x P x horizon`` seconds of work through the actual
    scheduling system (makespan runs past the horizon while the tail
    drains, so the measured value sits slightly below the target).
    """
    import dataclasses

    steady = _scenario("steady")
    long_run = dataclasses.replace(steady, horizon_s=60.0, max_jobs=0)
    result = run_scenario(long_run, DYN_AFF, seed=0, n_processors=P)
    assert result.n_jobs > 100
    assert result.utilization == pytest.approx(0.5, abs=0.1)
