"""Oracle-driven scenario matrix: the open-system layer under the trace oracle.

Every (policy x scenario x seed) cell of the lite matrix is run fully
instrumented and held to both halves of the oracle: the invariant
checker must find zero violations (allocation conservation, lifecycle,
disruption rules) and the replayed record stream must reproduce the
run's own aggregates exactly.  A deliberately-tampered trace — a
cancellation record stripped from a clean run — must be flagged as a
work-conservation violation, proving the oracle can actually see the
class of bug it guards against.
"""

import dataclasses

import pytest

from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
)
from repro.obs import Tracer
from repro.obs.invariants import check_trace
from repro.obs.records import (
    AllocationChange,
    CpuFailure,
    CpuRecovery,
    JobArrival,
    JobCancelled,
    RunConfig,
)
from repro.obs.replay import verify_replay
from repro.workloads.opensys import built_in_scenarios, run_scenario

ALL_POLICIES = [EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_DELAY, DYN_AFF_NOPRI]
SCENARIO_NAMES = ("steady", "bursty", "cancellations", "failures")
SEEDS = (0, 1, 2)
P = 8


def _traced_run(scenario_name, policy, seed):
    scenario = built_in_scenarios(lite=True, n_processors=P)[scenario_name]
    tracer = Tracer()
    result = run_scenario(
        scenario, policy, seed=seed, n_processors=P, tracer=tracer
    )
    return tracer.records, result


class TestOracleMatrix:
    """5 policies x 4 scenarios x 3 seeds, each run held to the full oracle."""

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    @pytest.mark.parametrize("scenario_name", SCENARIO_NAMES)
    def test_cell_replays_exactly(self, scenario_name, policy):
        for seed in SEEDS:
            records, result = _traced_run(scenario_name, policy, seed)
            assert check_trace(records) == [], (scenario_name, policy.name, seed)
            assert verify_replay(records, result.system) == [], (
                scenario_name, policy.name, seed,
            )
            # every arrival is accounted for: completed or cancelled
            assert result.n_completed + result.n_cancelled == result.n_jobs
            assert result.makespan > 0
            assert 0 < result.utilization <= 1

    def test_scenarios_exercise_their_disruptions(self):
        """The matrix isn't vacuous: cancels cancel and failures fail."""
        _, cancelled = _traced_run("cancellations", DYN_AFF, 0)
        assert cancelled.n_cancelled > 0
        records, failed = _traced_run("failures", DYN_AFF, 0)
        assert failed.n_failures > 0
        assert any(isinstance(r, CpuFailure) for r in records)
        assert any(isinstance(r, CpuRecovery) for r in records)


class TestSeededBug:
    """Tampered traces must be caught — the oracle is not a rubber stamp."""

    def _tampered(self):
        """A clean cancellations trace with one post-arrival cancel stripped."""
        for seed in SEEDS:
            records, result = _traced_run("cancellations", DYN_AFF, seed)
            arrived = {r.job for r in records if isinstance(r, JobArrival)}
            for target in records:
                if isinstance(target, JobCancelled) and target.job in arrived:
                    stripped = [r for r in records if r is not target]
                    return stripped, target.job, result
        raise AssertionError("no post-arrival cancellation found in any seed")

    def test_stripped_cancellation_violates_work_conservation(self):
        stripped, job, _ = self._tampered()
        violations = check_trace(stripped)
        assert any(
            "work conservation violated" in v and job in v for v in violations
        ), violations

    def test_stripped_cancellation_breaks_exact_replay(self):
        stripped, job, result = self._tampered()
        problems = verify_replay(stripped, result.system)
        assert any(job in p for p in problems), problems


def _config(n_processors=2):
    return RunConfig(
        time=0.0,
        policy="Dynamic",
        n_processors=n_processors,
        seed=0,
        jobs=("A",),
        machine="test",
        cache_lines=1000,
        miss_time_s=1e-6,
        context_switch_s=1e-3,
        respect_priority=False,
        use_affinity=False,
    )


class TestDisruptionInvariants:
    """The new checker rules fire on hand-crafted bad record streams."""

    def test_grant_to_cancelled_job_flagged(self):
        records = [
            _config(),
            JobArrival(time=0.0, job="A"),
            JobCancelled(time=1.0, job="A", work_done=0.0),
            AllocationChange(time=2.0, cpu=0, job="A", prev=None),
        ]
        assert any("granted to cancelled job" in v for v in check_trace(records))

    def test_grant_while_offline_flagged(self):
        records = [
            _config(),
            JobArrival(time=0.0, job="A"),
            CpuFailure(time=1.0, cpu=0),
            AllocationChange(time=2.0, cpu=0, job="A", prev=None),
        ]
        assert any("while offline" in v for v in check_trace(records))

    def test_double_cancellation_flagged(self):
        records = [
            _config(),
            JobArrival(time=0.0, job="A"),
            JobCancelled(time=1.0, job="A", work_done=0.0),
            JobCancelled(time=2.0, job="A", work_done=0.0),
        ]
        assert any("cancelled twice" in v for v in check_trace(records))

    def test_recovery_without_failure_flagged(self):
        records = [_config(), CpuRecovery(time=1.0, cpu=0)]
        assert any(
            "recovered without having failed" in v for v in check_trace(records)
        )

    def test_failure_while_owned_flagged(self):
        records = [
            _config(),
            JobArrival(time=0.0, job="A"),
            AllocationChange(time=0.0, cpu=0, job="A", prev=None),
            CpuFailure(time=1.0, cpu=0),
        ]
        assert any("failed while owned" in v for v in check_trace(records))


class TestAppScenario:
    """One non-lite cell: real application specs through the same oracle."""

    def test_app_jobs_replay_exactly(self):
        steady = built_in_scenarios(lite=False, n_processors=P)["steady"]
        small = dataclasses.replace(steady, max_jobs=3)
        tracer = Tracer()
        result = run_scenario(small, DYN_AFF, seed=0, n_processors=P, tracer=tracer)
        assert result.n_jobs == 3
        assert check_trace(tracer.records) == []
        assert verify_replay(tracer.records, result.system) == []
