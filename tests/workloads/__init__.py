"""Tests for the open-system workload layer."""
