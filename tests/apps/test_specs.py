"""Application specs: graph shapes match the paper's Figures 2-4."""

import random

import pytest

from repro.apps import APPLICATIONS, GRAVITY, MATRIX, MVA
from repro.apps.gravity import GravityParams, GravitySpec
from repro.apps.matrix import MatrixParams, MatrixSpec
from repro.apps.mva import MvaParams, MvaSpec


def rng():
    return random.Random(42)


class TestRegistry:
    def test_all_three_applications_present(self):
        assert set(APPLICATIONS) == {"MVA", "MATRIX", "GRAVITY"}

    def test_specs_have_descriptions(self):
        for spec in APPLICATIONS.values():
            assert spec.description


class TestMva:
    def test_wavefront_ramp_up_and_down(self):
        """Parallelism slowly grows to min(N, K) and then shrinks (Fig 2)."""
        spec = MvaSpec(MvaParams(customers=6, stations=6, service_jitter=0.0))
        graph = spec.build_graph(rng())
        profile = graph.parallelism_profile(16)
        # Wave widths 1,2,...,6,...,2,1: every level 1..6 appears.
        assert set(profile.time_at_level) == {1, 2, 3, 4, 5, 6}

    def test_thread_count_is_grid_size(self):
        spec = MvaSpec(MvaParams(customers=5, stations=7))
        assert spec.build_graph(rng()).n_threads == 35

    def test_dependencies_follow_recurrence(self):
        """Cell (n, k) runs after (n-1, k) and (n, k-1)."""
        spec = MvaSpec(MvaParams(customers=2, stations=2, service_jitter=0.0))
        graph = spec.build_graph(rng())
        # ids: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3
        assert graph.initially_ready() == [0]
        assert sorted(graph.complete(0)) == [1, 2]
        graph.complete(1)
        assert graph.complete(2) == [3]

    def test_acyclic(self):
        MVA.build_graph(rng()).validate_acyclic()

    def test_max_parallelism_hint(self):
        assert MvaSpec(MvaParams(customers=10, stations=4)).max_parallelism_hint() == 4

    def test_jitter_bounds_service_times(self):
        spec = MvaSpec(MvaParams(mean_service_s=0.1, service_jitter=0.2))
        graph = spec.build_graph(rng())
        times = [graph.service_time(t) for t in range(graph.n_threads)]
        assert all(0.08 <= t <= 0.12 for t in times)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MvaSpec(MvaParams(customers=0))
        with pytest.raises(ValueError):
            MvaSpec(MvaParams(service_jitter=1.5))


class TestMatrix:
    def test_flat_fan_no_dependencies(self):
        graph = MATRIX.build_graph(rng())
        assert len(graph.initially_ready()) == graph.n_threads

    def test_thread_count_is_block_count(self):
        spec = MatrixSpec(MatrixParams(n_blocks=16))
        assert spec.build_graph(rng()).n_threads == 16

    def test_massive_constant_parallelism(self):
        """Figure 3: nearly all time at full machine parallelism."""
        profile = MATRIX.build_graph(rng()).parallelism_profile(16)
        assert profile.time_at_level.get(16, 0.0) > 0.85
        assert profile.average_demand > 14

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MatrixSpec(MatrixParams(n_blocks=0))


class TestGravity:
    def test_five_phases_per_timestep(self):
        """1 sequential + 4 parallel phases, barriers between (Fig 4)."""
        params = GravityParams(n_timesteps=2)
        spec = GravitySpec(params)
        graph = spec.build_graph(rng())
        per_step = 1 + sum(p.n_threads for p in params.phases) + len(params.phases)
        assert graph.n_threads == 2 * per_step

    def test_sequential_phase_gates_parallel_work(self):
        spec = GravitySpec(GravityParams(n_timesteps=1))
        graph = spec.build_graph(rng())
        ready = graph.initially_ready()
        assert len(ready) == 1  # only the tree build

    def test_substantial_time_at_level_one(self):
        """The sequential fraction shows up as time at parallelism 1."""
        spec = GravitySpec(GravityParams(n_timesteps=5))
        profile = spec.build_graph(rng()).parallelism_profile(16)
        assert profile.time_at_level.get(1, 0.0) > 0.15

    def test_timesteps_chain(self):
        """Step t+1's tree build waits for step t's last barrier."""
        spec = GravitySpec(GravityParams(n_timesteps=2))
        graph = spec.build_graph(rng())
        graph.validate_acyclic()
        profile = graph.parallelism_profile(1000)
        max_level = max(profile.time_at_level)
        biggest_phase = max(p.n_threads for p in GravityParams().phases)
        assert max_level <= biggest_phase

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GravitySpec(GravityParams(n_timesteps=0))
        with pytest.raises(ValueError):
            GravitySpec(GravityParams(phases=()))


class TestMakeJob:
    def test_worker_pool_capped_by_processors(self):
        job = MATRIX.make_job(rng(), n_processors=8)
        assert len(job.workers) == 8

    def test_instance_naming(self):
        assert MVA.make_job(rng(), instance=0).name == "MVA"
        assert MVA.make_job(rng(), instance=2).name == "MVA-2"

    def test_job_curve_derived_from_reference(self):
        job = GRAVITY.make_job(rng())
        expected = GRAVITY.reference.footprint_curve(
            __import__("repro.machine.params", fromlist=["SEQUENT_SYMMETRY"]).SEQUENT_SYMMETRY
        )
        assert job.curve == expected
