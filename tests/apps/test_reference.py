"""Reference stream generators: locality, scaling, determinism."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.reference import ReferenceGenerator, ReferenceSpec, reduced_machine
from repro.apps.refgen import numpy_available
from repro.machine.footprint import FootprintCurve, LinearFootprintCurve
from repro.machine.params import SEQUENT_SYMMETRY

#: Stream engines to drive the chunking properties through (the numpy
#: engine must be stream-equivalent to the scalar loop for any chunking).
BACKENDS = ("scalar", "numpy") if numpy_available() else ("scalar",)


def spec(**overrides):
    base = dict(data_blocks=1000, p_reuse=0.9, refs_per_touch=10, reuse_window=50)
    base.update(overrides)
    return ReferenceSpec(**base)


class TestValidation:
    def test_rejects_bad_p_reuse(self):
        with pytest.raises(ValueError):
            spec(p_reuse=1.0)
        with pytest.raises(ValueError):
            spec(p_reuse=-0.1)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            spec(data_blocks=0)
        with pytest.raises(ValueError):
            spec(refs_per_touch=0)
        with pytest.raises(ValueError):
            spec(reuse_window=0)

    def test_rejects_phases_without_touches(self):
        with pytest.raises(ValueError):
            spec(n_phases=4)

    def test_rejects_more_phases_than_blocks(self):
        # data_blocks // n_phases == 0 would give every phase an empty
        # region (regression: used to build a generator that crashed).
        with pytest.raises(ValueError):
            spec(data_blocks=4, n_phases=8, phase_touches=3)

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            spec(cold_pattern="zigzag")


class TestRates:
    def test_touch_rate(self):
        s = spec(refs_per_touch=10)
        # 10 refs x 0.125 us = 1.25 us per touch -> 800k touches/s
        assert s.touch_rate(SEQUENT_SYMMETRY) == pytest.approx(800_000)

    def test_cold_pick_rate(self):
        s = spec(refs_per_touch=10, p_reuse=0.9)
        assert s.cold_pick_rate(SEQUENT_SYMMETRY) == pytest.approx(80_000)

    def test_uniform_curve_derivation(self):
        s = spec()
        curve = s.footprint_curve(SEQUENT_SYMMETRY)
        assert isinstance(curve, FootprintCurve)
        assert curve.w_max == 1000
        assert curve.tau == pytest.approx(1000 / s.cold_pick_rate(SEQUENT_SYMMETRY))

    def test_sequential_curve_derivation(self):
        s = spec(cold_pattern="sequential")
        curve = s.footprint_curve(SEQUENT_SYMMETRY)
        assert isinstance(curve, LinearFootprintCurve)
        assert curve.hot == 50
        assert curve.cap == 1000


class TestReducedFidelity:
    def test_reduced_preserves_time_quantities(self):
        s = spec()
        r = s.reduced(8)
        assert r.data_blocks == 125
        assert r.refs_per_touch == 80
        # Cold pick rate scales down 8x (fewer, bigger blocks) ...
        assert r.cold_pick_rate(SEQUENT_SYMMETRY) == pytest.approx(
            s.cold_pick_rate(SEQUENT_SYMMETRY) / 8
        )
        # ... so the time to scan the whole data is unchanged.
        machine = reduced_machine(SEQUENT_SYMMETRY, 8)
        full_scan_before = s.data_blocks / s.cold_pick_rate(SEQUENT_SYMMETRY)
        full_scan_after = r.data_blocks / r.cold_pick_rate(machine)
        assert full_scan_after == pytest.approx(full_scan_before, rel=0.01)

    def test_reduced_machine_preserves_fill_time(self):
        machine = reduced_machine(SEQUENT_SYMMETRY, 16)
        assert machine.full_fill_time_s == pytest.approx(
            SEQUENT_SYMMETRY.full_fill_time_s
        )
        assert machine.cache_lines == SEQUENT_SYMMETRY.cache_lines // 16

    def test_scale_one_is_identity(self):
        assert reduced_machine(SEQUENT_SYMMETRY, 1) is SEQUENT_SYMMETRY
        assert spec().reduced(1) == spec()

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            spec().reduced(0)
        with pytest.raises(ValueError):
            reduced_machine(SEQUENT_SYMMETRY, 0)

    def test_reduced_keeps_phases_within_blocks(self):
        # Aggressive scales must not shrink the address space below the
        # phase count (the reduced spec would fail its own validation).
        s = spec(data_blocks=64, n_phases=16, phase_touches=10)
        r = s.reduced(32)
        assert r.data_blocks >= r.n_phases
        assert r.n_phases == 16


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = ReferenceGenerator(spec(), random.Random(7))
        b = ReferenceGenerator(spec(), random.Random(7))
        assert [a.next_block() for _ in range(100)] == [b.next_block() for _ in range(100)]

    def test_blocks_within_address_space(self):
        gen = ReferenceGenerator(spec(), random.Random(1))
        assert all(0 <= gen.next_block() < 1000 for _ in range(500))

    def test_high_reuse_touches_few_distinct_blocks(self):
        low = ReferenceGenerator(spec(p_reuse=0.0), random.Random(1))
        high = ReferenceGenerator(spec(p_reuse=0.95), random.Random(1))
        low_distinct = len({low.next_block() for _ in range(1000)})
        high_distinct = len({high.next_block() for _ in range(1000)})
        assert high_distinct < low_distinct / 2

    def test_sequential_scan_is_in_order(self):
        gen = ReferenceGenerator(
            spec(p_reuse=0.0, cold_pattern="sequential"), random.Random(1)
        )
        assert [gen.next_block() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_sequential_scan_wraps(self):
        gen = ReferenceGenerator(
            spec(data_blocks=4, p_reuse=0.0, cold_pattern="sequential"),
            random.Random(1),
        )
        assert [gen.next_block() for _ in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_phases_rotate_regions(self):
        gen = ReferenceGenerator(
            spec(data_blocks=100, n_phases=4, phase_touches=10, p_reuse=0.0),
            random.Random(1),
        )
        first = [gen.next_block() for _ in range(10)]
        second = [gen.next_block() for _ in range(10)]
        assert all(0 <= b < 25 for b in first)
        assert all(25 <= b < 50 for b in second)
        assert gen.current_phase == 1

    def test_reset_clears_hot_set(self):
        gen = ReferenceGenerator(spec(p_reuse=0.99), random.Random(1))
        for _ in range(100):
            gen.next_block()
        gen.reset()
        # After reset the next touch must be a cold pick (no hot set).
        block = gen.next_block()
        assert 0 <= block < 1000


class _DequeReference:
    """The pre-batching formulation: deque hot set, rng.choice picks.

    Kept as an executable specification — the production ring-buffer
    generator must consume the random stream and emit blocks exactly as
    this one does, one touch at a time.
    """

    def __init__(self, s: ReferenceSpec, rng: random.Random) -> None:
        import collections

        self.spec = s
        self._rng = rng
        self._recent = collections.deque(maxlen=s.reuse_window)
        self._phase = 0
        self._touches_in_phase = 0
        self._region_size = s.data_blocks // s.n_phases
        self._scan = 0

    def next_block(self) -> int:
        s = self.spec
        rng = self._rng
        if s.n_phases > 1:
            self._touches_in_phase += 1
            if self._touches_in_phase > s.phase_touches:
                self._phase = (self._phase + 1) % s.n_phases
                self._touches_in_phase = 0
                self._recent.clear()
                self._scan = self._phase * self._region_size
        if self._recent and rng.random() < s.p_reuse:
            return rng.choice(self._recent)
        if s.cold_pattern == "sequential":
            block = self._scan
            self._scan += 1
            if s.n_phases > 1:
                base = self._phase * self._region_size
                if self._scan >= base + self._region_size:
                    self._scan = base
            elif self._scan >= s.data_blocks:
                self._scan = 0
        elif s.n_phases > 1:
            block = self._phase * self._region_size + rng.randrange(
                max(1, self._region_size)
            )
        else:
            block = rng.randrange(s.data_blocks)
        if not self._recent or self._recent[-1] != block:
            self._recent.append(block)
        return block


GENERATOR_SPECS = [
    spec(),
    spec(p_reuse=0.0),
    spec(reuse_window=1),
    spec(cold_pattern="sequential"),
    spec(data_blocks=64, n_phases=4, phase_touches=37, reuse_window=5),
    spec(data_blocks=7, n_phases=7, phase_touches=3, cold_pattern="sequential"),
]


class TestBatchStreamEquivalence:
    @pytest.mark.parametrize("s", GENERATOR_SPECS, ids=lambda s: repr(s)[:40])
    def test_next_blocks_matches_deque_formulation(self, s):
        """Same seed => byte-identical stream to the old deque generator."""
        for seed in (0, 1, 99):
            ring = ReferenceGenerator(s, random.Random(seed))
            deque_gen = _DequeReference(s, random.Random(seed))
            assert ring.next_blocks(3000) == [
                deque_gen.next_block() for _ in range(3000)
            ]

    def test_next_block_is_next_blocks_of_one(self):
        a = ReferenceGenerator(spec(), random.Random(5))
        b = ReferenceGenerator(spec(), random.Random(5))
        assert [a.next_block() for _ in range(500)] == b.next_blocks(500)

    def test_reset_between_chunks(self):
        a = ReferenceGenerator(spec(p_reuse=0.95), random.Random(3))
        b = ReferenceGenerator(spec(p_reuse=0.95), random.Random(3))
        sa = a.next_blocks(400)
        sb = [b.next_block() for _ in range(400)]
        a.reset()
        b.reset()
        assert sa + a.next_blocks(400) == sb + [b.next_block() for _ in range(400)]


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=30, deadline=None)
@given(
    s=st.sampled_from(GENERATOR_SPECS),
    seed=st.integers(0, 1000),
    data=st.data(),
)
def test_property_any_chunking_yields_same_stream(backend, s, seed, data):
    """next_blocks is stream-equivalent for arbitrary chunk boundaries.

    Runs once per available engine: the scalar loop against itself (any
    chunking of the specification agrees), and the numpy engine against
    the touch-by-touch scalar loop (the vectorized parse is exact).
    """
    total = 1200
    scalar = ReferenceGenerator(s, random.Random(seed), backend="scalar")
    expected = [scalar.next_block() for _ in range(total)]
    chunked = ReferenceGenerator(s, random.Random(seed), backend=backend)
    got = []
    while len(got) < total:
        n = data.draw(st.integers(1, total - len(got)), label="chunk")
        got.extend(chunked.next_blocks(n))
    assert got == expected
    # And the generators are left in the same state: continuations match.
    assert chunked.next_blocks(200) == [scalar.next_block() for _ in range(200)]


@settings(max_examples=25, deadline=None)
@given(
    p_reuse=st.floats(min_value=0.0, max_value=0.99),
    window=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_distinct_blocks_bounded_by_data(p_reuse, window, seed):
    gen = ReferenceGenerator(
        spec(data_blocks=300, p_reuse=p_reuse, reuse_window=window),
        random.Random(seed),
    )
    blocks = {gen.next_block() for _ in range(2000)}
    assert all(0 <= b < 300 for b in blocks)
    assert len(blocks) <= 300
