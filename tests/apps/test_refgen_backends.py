"""Differential tests: the numpy stream engine against the scalar spec.

The scalar ring-buffer loop (:mod:`repro.apps.refgen.scalar`) is the
executable specification of the reference stream; the numpy engine
(:mod:`repro.apps.refgen.numpy_backend`) re-derives the same stream by
parsing the raw Mersenne Twister word sequence with array passes.  These
tests drive both engines over a zoo of specs, seeds, and chunk patterns
and require *exact* agreement on:

* the emitted block stream, for any chunking;
* the list and array entry points (``next_blocks`` vs ``next_blocks_array``);
* the final generator state after the engine flushes — the Python
  ``random.Random`` state, the hot-set ring, and the sequential scan
  cursor — checked both directly and via scalar continuation.

Plus the selection rules: explicit argument > ``REPRO_BACKEND`` env var >
scalar, a hard error for ``numpy``-without-numpy, and silent scalar
fallback for streams the vectorized parse cannot cover (phased specs).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.refgen import (
    generator_vectorizable,
    make_generator_backend,
    numpy_available,
)
from repro.apps.reference import ReferenceGenerator, ReferenceSpec

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

#: Spec families chosen to hit every parse path: the Table 1 benchmark
#: stream and its sequential (MVA) variant, degenerate windows and block
#: spaces, power-of-two sizes (rejection-free `_randbelow`), p_reuse
#: extremes (all-cold and nearly-all-hot word patterns), near-2**31
#: block spaces (int64 history dtype), and low-reject streams that
#: force the conservative sync-block stitch.
DIFF_SPECS = [
    ReferenceSpec(3500, 0.9875, 20, 1100),
    ReferenceSpec(3500, 0.9875, 20, 1100, cold_pattern="sequential"),
    ReferenceSpec(500, 0.5, 5, 16),
    ReferenceSpec(64, 0.9, 3, 2),
    ReferenceSpec(100, 0.7, 2, 1),
    ReferenceSpec(1000, 0.0, 4, 10),
    ReferenceSpec(2048, 0.999, 8, 512),
    ReferenceSpec(4096, 0.9, 4, 256),
    ReferenceSpec(3000, 0.95, 4, 1024),
    ReferenceSpec(1, 0.3, 2, 1),
    ReferenceSpec(300, 0.8, 2, 40, cold_pattern="sequential"),
    ReferenceSpec(2 ** 31 - 5, 0.9, 4, 100),
    ReferenceSpec(77777, 0.6, 3, 333),
]


def normalized_ring(gen):
    """The hot set oldest..newest, independent of ring rotation."""
    cap = gen.spec.reuse_window
    start, length = gen._recent_start, gen._recent_len
    buf = gen._recent_buf
    return [buf[(start + i) % cap] for i in range(length)]


def random_chunks(rnd, total, hi=2500):
    chunks = []
    covered = 0
    while covered < total:
        c = min(rnd.randint(1, hi), total - covered)
        chunks.append(c)
        covered += c
    return chunks


@requires_numpy
class TestStreamEquality:
    @pytest.mark.parametrize("s", DIFF_SPECS, ids=lambda s: repr(s)[14:54])
    @pytest.mark.parametrize("seed", [1, 7, 12345])
    def test_exact_stream_and_final_state(self, s, seed):
        """Both engines: same blocks, same rng, same ring, same cursor."""
        g_s = ReferenceGenerator(s, random.Random(seed), backend="scalar")
        g_v = ReferenceGenerator(s, random.Random(seed), backend="numpy")
        assert g_v.backend_name == "numpy"
        for c in random_chunks(random.Random(seed * 31 + 1), 6000):
            assert g_s.next_blocks(c) == g_v.next_blocks(c)
        # Array/list parity on the live engine.
        assert g_v.next_blocks_array(700).tolist() == g_s.next_blocks(700)
        # Final state: flush engine-side state, then everything the
        # scalar loop would have left must match exactly.
        g_v._engine.invalidate()
        assert g_v._rng.getstate() == g_s._rng.getstate()
        assert normalized_ring(g_v) == normalized_ring(g_s)
        assert (g_v._scan, g_v._phase) == (g_s._scan, g_s._phase)
        # And the stream continues identically from the flushed state.
        assert g_v.next_blocks(500) == g_s.next_blocks(500)

    def test_single_touch_calls_match(self):
        """next_block (n=1) stays exact: the scalar-fallback small path."""
        s = DIFF_SPECS[0]
        g_s = ReferenceGenerator(s, random.Random(3), backend="scalar")
        g_v = ReferenceGenerator(s, random.Random(3), backend="numpy")
        g_s.next_blocks(4000)
        g_v.next_blocks(4000)  # vectorized steady state
        assert [g_v.next_block() for _ in range(50)] == [
            g_s.next_block() for _ in range(50)
        ]
        # ... and vectorization resumes exactly afterwards.
        assert g_v.next_blocks(3000) == g_s.next_blocks(3000)

    def test_reset_flushes_engine_state(self):
        for s in DIFF_SPECS[:4]:
            g_s = ReferenceGenerator(s, random.Random(3), backend="scalar")
            g_v = ReferenceGenerator(s, random.Random(3), backend="numpy")
            g_s.next_blocks(3000)
            g_v.next_blocks(3000)
            g_s.reset()
            g_v.reset()
            assert g_s.next_blocks(3000) == g_v.next_blocks(3000)


@requires_numpy
# The chunking draw is inherently long (it covers 4000 touches one chunk
# at a time), which trips the large-base-example health check.
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.large_base_example],
)
@given(
    data_blocks=st.integers(1, 5000),
    p_reuse=st.floats(0.0, 0.99),
    window=st.integers(1, 128),
    sequential=st.booleans(),
    seed=st.integers(0, 10_000),
    data=st.data(),
)
def test_property_random_specs_agree(
    data_blocks, p_reuse, window, sequential, seed, data
):
    """Random specs x random chunkings: the engines never diverge."""
    s = ReferenceSpec(
        data_blocks=data_blocks,
        p_reuse=p_reuse,
        refs_per_touch=1,
        reuse_window=window,
        cold_pattern="sequential" if sequential else "uniform",
    )
    g_s = ReferenceGenerator(s, random.Random(seed), backend="scalar")
    g_v = ReferenceGenerator(s, random.Random(seed), backend="numpy")
    total = 4000
    produced = 0
    while produced < total:
        n = data.draw(st.integers(1, total - produced), label="chunk")
        assert g_s.next_blocks(n) == g_v.next_blocks(n)
        produced += n
    g_v._engine.invalidate()
    assert g_v._rng.getstate() == g_s._rng.getstate()
    assert normalized_ring(g_v) == normalized_ring(g_s)


class TestSelection:
    def test_explicit_scalar(self):
        gen = ReferenceGenerator(DIFF_SPECS[0], random.Random(0), backend="scalar")
        assert gen.backend_name == "scalar"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            ReferenceGenerator(DIFF_SPECS[0], random.Random(0), backend="fortran")

    @requires_numpy
    def test_env_var_selects_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        gen = ReferenceGenerator(DIFF_SPECS[0], random.Random(0))
        assert gen.backend_name == "numpy"

    @requires_numpy
    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        gen = ReferenceGenerator(DIFF_SPECS[0], random.Random(0), backend="scalar")
        assert gen.backend_name == "scalar"

    @requires_numpy
    def test_phased_spec_falls_back_to_scalar(self):
        """The vectorized parse covers single-phase streams only."""
        s = ReferenceSpec(
            data_blocks=100, p_reuse=0.5, refs_per_touch=1, reuse_window=8,
            n_phases=4, phase_touches=50,
        )
        gen = ReferenceGenerator(s, random.Random(0), backend="numpy")
        assert gen.backend_name == "scalar"

    @requires_numpy
    def test_non_stock_rng_falls_back_to_scalar(self):
        class LoggedRandom(random.Random):
            def random(self):  # any drawing override breaks word accounting
                return super().random()

        s = DIFF_SPECS[0]
        assert not generator_vectorizable(s, LoggedRandom(0))
        gen = ReferenceGenerator(s, LoggedRandom(0), backend="numpy")
        assert gen.backend_name == "scalar"

    def test_numpy_without_numpy_is_an_error(self, monkeypatch):
        import repro.apps.refgen as refgen

        # Build on the scalar engine first (the REPRO_BACKEND env var may
        # say numpy), then ask for numpy with availability stubbed out.
        gen = ReferenceGenerator(DIFF_SPECS[0], random.Random(0), backend="scalar")
        monkeypatch.setattr(refgen, "numpy_available", lambda: False)
        with pytest.raises(RuntimeError, match="numpy"):
            make_generator_backend("numpy", gen)


@requires_numpy
class TestArrayPath:
    def test_scalar_engine_array_conversion(self):
        import numpy as np

        g_l = ReferenceGenerator(DIFF_SPECS[0], random.Random(2), backend="scalar")
        g_a = ReferenceGenerator(DIFF_SPECS[0], random.Random(2), backend="scalar")
        arr = g_a.next_blocks_array(1000)
        assert arr.dtype == np.int64
        assert arr.tolist() == g_l.next_blocks(1000)

    def test_numpy_engine_array_is_int64(self):
        import numpy as np

        gen = ReferenceGenerator(DIFF_SPECS[0], random.Random(2), backend="numpy")
        assert gen.next_blocks_array(5000).dtype == np.int64

    def test_fused_stream_into_cache_matches_list_path(self):
        """End to end: generator arrays through the cache, both engines."""
        from repro.apps.reference import reduced_machine
        from repro.machine.params import SEQUENT_SYMMETRY
        from repro.machine.processor import Processor

        machine = reduced_machine(SEQUENT_SYMMETRY, 16)
        s = ReferenceSpec(3500, 0.9875, 20, 1100).reduced(16)
        runs = {}
        for backend in ("scalar", "numpy"):
            gen = ReferenceGenerator(s, random.Random(11), backend=backend)
            draw = (
                gen.next_blocks_array
                if gen.backend_name == "numpy"
                else gen.next_blocks
            )
            proc = Processor(0, machine, backend=backend)
            for _ in range(12):
                proc.touch_batch("app", draw(4096), s.refs_per_touch)
            runs[backend] = (
                proc.cache.stats.hits,
                proc.cache.stats.misses,
                proc.busy_time,
            )
        assert runs["scalar"] == runs["numpy"]
