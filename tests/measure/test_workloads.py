"""Table 2 workload mixes."""

import pytest

from repro.engine.rng import RngRegistry
from repro.measure.workloads import MIXES, WorkloadMix, make_jobs


class TestTable2:
    """The mixes exactly as printed in the paper."""

    def test_six_mixes(self):
        assert sorted(MIXES) == [1, 2, 3, 4, 5, 6]

    @pytest.mark.parametrize(
        "mix_id,expected",
        [
            (1, {"MVA": 2, "MATRIX": 0, "GRAVITY": 0}),
            (2, {"MVA": 1, "MATRIX": 1, "GRAVITY": 0}),
            (3, {"MVA": 1, "MATRIX": 0, "GRAVITY": 1}),
            (4, {"MVA": 0, "MATRIX": 0, "GRAVITY": 2}),
            (5, {"MVA": 0, "MATRIX": 1, "GRAVITY": 1}),
            (6, {"MVA": 1, "MATRIX": 1, "GRAVITY": 1}),
        ],
    )
    def test_copies(self, mix_id, expected):
        assert dict(MIXES[mix_id].copies) == expected

    def test_homogeneous_flags(self):
        """Mixes #1 and #4 are the homogeneous ones (Table 4)."""
        assert MIXES[1].is_homogeneous
        assert MIXES[4].is_homogeneous
        assert not any(MIXES[m].is_homogeneous for m in (2, 3, 5, 6))

    def test_job_counts(self):
        assert [MIXES[m].n_jobs for m in range(1, 7)] == [2, 2, 2, 2, 2, 3]


class TestMakeJobs:
    def test_job_names_follow_convention(self):
        jobs = make_jobs(1, RngRegistry(0))
        assert [j.name for j in jobs] == ["MVA", "MVA-1"]

    def test_mix6_has_one_of_each(self):
        jobs = make_jobs(6, RngRegistry(0))
        assert [j.name for j in jobs] == ["MVA", "MATRIX", "GRAVITY"]

    def test_copies_are_statistically_distinct(self):
        """Two copies of MVA get different jitter (different rng streams)."""
        a, b = make_jobs(1, RngRegistry(0))
        times_a = [a.graph.service_time(t) for t in range(5)]
        times_b = [b.graph.service_time(t) for t in range(5)]
        assert times_a != times_b

    def test_same_seed_same_workload(self):
        first = make_jobs(5, RngRegistry(3))
        second = make_jobs(5, RngRegistry(3))
        for x, y in zip(first, second):
            assert x.graph.total_work() == pytest.approx(y.graph.total_work())

    def test_accepts_mix_object(self):
        mix = WorkloadMix(99, {"MVA": 1})
        jobs = make_jobs(mix, RngRegistry(0))
        assert len(jobs) == 1

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            make_jobs(WorkloadMix(99, {"MVA": 0}), RngRegistry(0))

    def test_worker_pools_capped_by_processors(self):
        jobs = make_jobs(6, RngRegistry(0), n_processors=8)
        assert all(len(j.workers) <= 8 for j in jobs)
