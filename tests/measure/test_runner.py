"""Workload runner: pairing, replication aggregation, relative RTs."""

import pytest

from repro.core.policies import DYN_AFF, DYNAMIC, EQUIPARTITION
from repro.measure.runner import (
    compare_policies,
    relative_response_times,
    run_mix,
)
from repro.measure.workloads import WorkloadMix

#: A cut-down heterogeneous mix so runner tests stay fast.
SMALL_MIX = WorkloadMix(90, {"MVA": 1, "GRAVITY": 0, "MATRIX": 0})


class TestRunMix:
    def test_returns_metrics_per_job(self):
        result = run_mix(SMALL_MIX, DYNAMIC, seed=0)
        assert set(result.jobs) == {"MVA"}
        assert result.jobs["MVA"].response_time > 0

    def test_same_seed_same_workload_across_policies(self):
        """Common random numbers: work is identical across policies."""
        a = run_mix(SMALL_MIX, DYNAMIC, seed=5)
        b = run_mix(SMALL_MIX, EQUIPARTITION, seed=5)
        assert a.jobs["MVA"].work == pytest.approx(b.jobs["MVA"].work, rel=1e-9)

    def test_different_seeds_different_workloads(self):
        a = run_mix(SMALL_MIX, DYNAMIC, seed=0)
        b = run_mix(SMALL_MIX, DYNAMIC, seed=1)
        assert a.jobs["MVA"].work != b.jobs["MVA"].work

    def test_policy_recorded(self):
        assert run_mix(SMALL_MIX, DYN_AFF, seed=0).policy == "Dyn-Aff"


class TestComparePolicies:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_policies(
            SMALL_MIX, [EQUIPARTITION, DYNAMIC], replications=3, base_seed=0
        )

    def test_summaries_per_policy_per_job(self, comparison):
        assert set(comparison.policies()) == {"Equipartition", "Dynamic"}
        assert comparison.job_names() == ["MVA"]

    def test_replication_count_respected(self, comparison):
        assert comparison.summaries["Dynamic"]["MVA"].response_time.n == 3

    def test_relative_response_time(self, comparison):
        ratio = comparison.relative_response_time("Dynamic", "MVA", "Equipartition")
        assert 0.5 < ratio < 1.5

    def test_relative_table_excludes_baseline(self, comparison):
        table = relative_response_times(comparison)
        assert set(table) == {"Dynamic"}
        assert set(table["Dynamic"]) == {"MVA"}

    def test_missing_baseline_rejected(self, comparison):
        with pytest.raises(KeyError):
            relative_response_times(comparison, baseline="NoSuchPolicy")

    def test_mean_response_time(self, comparison):
        mean = comparison.mean_response_time("Dynamic")
        assert mean == pytest.approx(
            comparison.summaries["Dynamic"]["MVA"].response_time.mean
        )

    def test_invalid_replications(self):
        with pytest.raises(ValueError):
            compare_policies(SMALL_MIX, [DYNAMIC], replications=0)

    def test_job_summary_app_property(self, comparison):
        assert comparison.summaries["Dynamic"]["MVA"].app == "MVA"
