"""Penalty vs intervening-task count and the survival-ratio fit."""

import pytest

from repro.apps import GRAVITY, MATRIX, MVA
from repro.measure.intervening import InterveningExperiment, InterveningResult


@pytest.fixture(scope="module")
def result():
    experiment = InterveningExperiment(scale=32, n_switches_target=20)
    return experiment.measure(MVA, MATRIX, q_s=0.05, max_intervening=4)


class TestMeasurement:
    def test_zero_interveners_zero_penalty(self, result):
        assert result.penalty_by_k[0] == 0.0

    def test_penalty_grows_with_interveners(self, result):
        penalties = [result.penalty_by_k[k] for k in sorted(result.penalty_by_k)]
        assert penalties == sorted(penalties)

    def test_penalty_bounded_by_full_flush(self, result):
        for k, penalty in result.penalty_by_k.items():
            assert penalty <= result.p_na_s * 1.1, k

    def test_survival_decreases(self, result):
        survivals = [result.survival_after(k) for k in sorted(result.penalty_by_k)]
        assert survivals[0] == 1.0
        assert all(a >= b for a, b in zip(survivals, survivals[1:]))

    def test_sigma_fit_in_unit_interval(self, result):
        sigma = result.fitted_sigma()
        assert 0.0 < sigma < 1.0

    def test_single_intervener_ejects_something(self, result):
        assert result.survival_after(1) < 0.95

    def test_invalid_max_intervening(self):
        experiment = InterveningExperiment(scale=64)
        with pytest.raises(ValueError):
            experiment.measure(MVA, MATRIX, max_intervening=0)


class TestQDependence:
    def test_survival_shrinks_with_q(self):
        """The paper's core disagreement with S&L, quantified: at short
        (time-sharing) intervals a footprint largely survives one
        intervening task; at space-sharing intervals it largely dies."""
        experiment = InterveningExperiment(scale=32, n_switches_target=15)
        short = experiment.measure(MVA, GRAVITY, q_s=0.025, max_intervening=2)
        long_q = experiment.measure(MVA, GRAVITY, q_s=0.400, max_intervening=2)
        assert short.survival_after(1) > long_q.survival_after(1) + 0.2


class TestFitEdgeCases:
    def test_sigma_zero_when_nothing_survives(self):
        result = InterveningResult(
            app="X", q_s=0.1,
            penalty_by_k={0: 0.0, 1: 1e-3, 2: 1e-3},
            p_na_s=1e-3,
        )
        assert result.fitted_sigma() == 0.0

    def test_sigma_exact_for_pure_geometric(self):
        sigma = 0.5
        p_na = 2e-3
        penalties = {k: p_na * (1 - sigma ** k) for k in range(4)}
        result = InterveningResult(app="X", q_s=0.1, penalty_by_k=penalties, p_na_s=p_na)
        assert result.fitted_sigma() == pytest.approx(sigma, rel=1e-6)

    def test_zero_pna_means_full_survival(self):
        result = InterveningResult(app="X", q_s=0.1, penalty_by_k={0: 0.0, 1: 0.0}, p_na_s=0.0)
        assert result.survival_after(1) == 1.0
