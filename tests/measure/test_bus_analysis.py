"""Bus load estimation from scheduling runs."""

import pytest

from repro.apps import APPLICATIONS, GRAVITY, MATRIX
from repro.core.policies import DYN_AFF, DYNAMIC, EQUIPARTITION
from repro.measure.bus_analysis import estimate_bus_load, steady_state_miss_rate
from repro.measure.runner import run_mix
from repro.machine.params import SEQUENT_SYMMETRY


@pytest.fixture(scope="module")
def mix5_dynamic():
    return run_mix(5, DYNAMIC, seed=0)


class TestSteadyStateRate:
    def test_matches_reference_cold_rate(self):
        rate = steady_state_miss_rate(MATRIX)
        assert rate == pytest.approx(
            MATRIX.reference.cold_pick_rate(SEQUENT_SYMMETRY)
        )

    def test_gravity_misses_more_than_matrix(self):
        """GRAVITY streams; MATRIX is cache blocked."""
        assert steady_state_miss_rate(GRAVITY) > steady_state_miss_rate(MATRIX)


class TestEstimate:
    def test_estimate_fields(self, mix5_dynamic):
        estimate = estimate_bus_load(mix5_dynamic, APPLICATIONS)
        assert set(estimate.steady_miss_rates) == {"MATRIX", "GRAVITY"}
        assert estimate.aggregate_miss_rate > 0
        assert 0 < estimate.utilization < 1

    def test_symmetry_bus_has_headroom(self, mix5_dynamic):
        """The paper's encapsulation assumption requires a non-saturated
        bus: the mix-5 load keeps contention inflation under 25%."""
        estimate = estimate_bus_load(mix5_dynamic, APPLICATIONS)
        assert estimate.contention_factor < 1.25

    def test_affinity_cuts_reload_traffic_share(self, mix5_dynamic):
        """Reload bursts are all-miss, so their *traffic* share is far
        larger than their time share (~45% of misses under oblivious
        Dynamic for only ~5% of time); affinity scheduling cuts it."""
        oblivious = estimate_bus_load(mix5_dynamic, APPLICATIONS)
        aware = estimate_bus_load(run_mix(5, DYN_AFF, seed=0), APPLICATIONS)
        assert oblivious.reload_share < 0.6
        assert aware.reload_share < oblivious.reload_share

    def test_equipartition_generates_less_reload_traffic(self):
        equi = estimate_bus_load(run_mix(5, EQUIPARTITION, seed=0), APPLICATIONS)
        dyn = estimate_bus_load(run_mix(5, DYN_AFF, seed=0), APPLICATIONS)
        assert sum(equi.reload_miss_rates.values()) < sum(
            dyn.reload_miss_rates.values()
        )

    def test_faster_machine_saturates_the_bus(self, mix5_dynamic):
        """On a 16x machine with sqrt-scaled memory, the same workload
        pushes utilization sharply higher — why Section 7 worries about
        the memory subsystem at all."""
        base = estimate_bus_load(mix5_dynamic, APPLICATIONS)
        fast = estimate_bus_load(
            mix5_dynamic, APPLICATIONS, machine=SEQUENT_SYMMETRY.scaled(16.0, 1.0)
        )
        # Miss *rate* scales with speed while service shrinks only sqrt:
        # utilization grows ~sqrt(16) = 4x.
        assert fast.utilization > 2 * base.utilization
