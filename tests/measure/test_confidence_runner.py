"""The paper's 1% confidence-interval replication stopping rule."""

import pytest

from repro.core.policies import DYNAMIC, EQUIPARTITION
from repro.measure.runner import compare_policies_to_confidence
from repro.measure.workloads import WorkloadMix

SMALL_MIX = WorkloadMix(91, {"MVA": 1})


class TestConfidenceStoppingRule:
    def test_stops_when_converged(self):
        comparison = compare_policies_to_confidence(
            SMALL_MIX,
            [EQUIPARTITION, DYNAMIC],
            target_relative=0.05,  # loose: converges quickly
            min_replications=3,
            max_replications=20,
        )
        assert 3 <= comparison.n_replications <= 20
        for policy in comparison.policies():
            for summary in comparison.summaries[policy].values():
                assert summary.response_time.relative_half_width() <= 0.05

    def test_respects_minimum(self):
        comparison = compare_policies_to_confidence(
            SMALL_MIX,
            [EQUIPARTITION],
            target_relative=0.5,  # trivially satisfied
            min_replications=4,
            max_replications=20,
        )
        assert comparison.n_replications == 4

    def test_caps_at_maximum(self):
        comparison = compare_policies_to_confidence(
            SMALL_MIX,
            [DYNAMIC],
            target_relative=1e-9,  # unreachable
            min_replications=2,
            max_replications=5,
        )
        assert comparison.n_replications == 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            compare_policies_to_confidence(SMALL_MIX, [DYNAMIC], min_replications=1)
        with pytest.raises(ValueError):
            compare_policies_to_confidence(
                SMALL_MIX, [DYNAMIC], min_replications=5, max_replications=3
            )

    def test_parallel_summaries_identical_to_serial(self):
        """workers=N must not change a single number in the summaries."""
        kwargs = dict(
            target_relative=0.05,
            min_replications=3,
            max_replications=10,
            base_seed=7,
        )
        serial = compare_policies_to_confidence(
            SMALL_MIX, [EQUIPARTITION, DYNAMIC], **kwargs
        )
        parallel = compare_policies_to_confidence(
            SMALL_MIX, [EQUIPARTITION, DYNAMIC], workers=2, **kwargs
        )
        assert parallel.n_replications == serial.n_replications
        assert parallel.policies() == serial.policies()
        for policy in serial.policies():
            for job, expected in serial.summaries[policy].items():
                got = parallel.summaries[policy][job]
                assert got.response_time.mean == expected.response_time.mean
                assert got.response_time.half_width == expected.response_time.half_width
                assert got.n_reallocations == expected.n_reallocations
                assert got.pct_affinity == expected.pct_affinity
                assert got.work == expected.work
                assert got.waste == expected.waste
                assert got.average_allocation == expected.average_allocation

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            compare_policies_to_confidence(SMALL_MIX, [DYNAMIC], workers=0)

    def test_tighter_target_needs_more_replications(self):
        loose = compare_policies_to_confidence(
            SMALL_MIX, [DYNAMIC], target_relative=0.20, max_replications=30
        )
        tight = compare_policies_to_confidence(
            SMALL_MIX, [DYNAMIC], target_relative=0.005, max_replications=30
        )
        assert tight.n_replications >= loose.n_replications
