"""The Section 4 penalty experiment (fast, coarse-scale versions)."""

import typing

import pytest

from repro.apps import GRAVITY, MATRIX, MVA
from repro.apps.base import AppSpec
from repro.apps.reference import ReferenceGenerator
from repro.engine.rng import RngRegistry
from repro.machine.processor import Processor
from repro.measure.penalty import PAPER_QUANTA_S, PenaltyExperiment, RegimeRun

#: Aggressive fidelity reduction keeps these tests fast; the benchmark
#: suite runs the calibrated scale-16 version.
FAST_SCALE = 64


@pytest.fixture(scope="module")
def experiment():
    return PenaltyExperiment(scale=FAST_SCALE, n_switches_target=15, min_run_s=0.5)


@pytest.fixture(scope="module")
def mva_result(experiment):
    return experiment.measure(MVA, 0.05, partners=(MATRIX,))


class TestRegimes:
    def test_migrating_slower_than_stationary(self, mva_result):
        assert mva_result.migrating.response_time > mva_result.stationary.response_time

    def test_multiprog_between_stationary_and_migrating(self, mva_result):
        multi = mva_result.multiprog["MATRIX"].response_time
        assert mva_result.stationary.response_time < multi
        assert multi < mva_result.migrating.response_time * 1.05

    def test_switch_counts_positive(self, mva_result):
        assert mva_result.stationary.n_switches >= 10
        assert mva_result.migrating.n_switches >= 10

    def test_hit_rate_ordering(self, mva_result):
        """Flushing depresses the hit rate below the stationary baseline."""
        assert mva_result.migrating.hit_rate < mva_result.stationary.hit_rate


class TestPenalties:
    def test_p_na_positive(self, mva_result):
        assert mva_result.p_na_s > 0

    def test_p_a_positive_and_below_p_na(self, mva_result):
        p_a = mva_result.p_a_s("MATRIX")
        assert 0 < p_a < mva_result.p_na_s

    def test_p_na_bounded_by_full_fill(self, experiment, mva_result):
        assert mva_result.p_na_s <= experiment.machine.full_fill_time_s * 1.2

    def test_unit_conversion(self, mva_result):
        assert mva_result.p_na_us == pytest.approx(mva_result.p_na_s * 1e6)

    def test_penalty_grows_with_q(self, experiment):
        small = experiment.measure(MVA, 0.025, partners=())
        large = experiment.measure(MVA, 0.2, partners=())
        assert large.p_na_s > small.p_na_s


class TestTable1Harness:
    def test_table_covers_apps_and_quanta(self, experiment):
        table = experiment.table1((MVA, MATRIX), quanta=(0.025, 0.05))
        assert table.apps() == ["MVA", "MATRIX"]
        assert table.quanta() == [0.025, 0.05]
        result = table.result("MVA", 0.05)
        assert set(result.multiprog) == {"MVA", "MATRIX"}

    def test_paper_quanta_constants(self):
        assert PAPER_QUANTA_S == (0.025, 0.100, 0.400)

    def test_invalid_q(self, experiment):
        with pytest.raises(ValueError):
            experiment.measure(MVA, 0.0, partners=())

    def test_invalid_switch_target(self):
        with pytest.raises(ValueError):
            PenaltyExperiment(n_switches_target=1)


def _scalar_run_regime(
    experiment: PenaltyExperiment,
    app: AppSpec,
    q_s: float,
    regime: str,
    partner: typing.Optional[AppSpec],
    n_touches: int,
) -> RegimeRun:
    """The pre-batching regime driver, one Processor.touch per touch.

    Kept as an executable specification for the production chunked
    driver: identical RNG derivation, identical reference streams,
    touch-by-touch slice accounting.
    """
    rng = RngRegistry(experiment.seed).spawn(f"{app.name}/q{q_s:g}")
    app_ref = app.reference.reduced(experiment.scale)
    gen = ReferenceGenerator(app_ref, rng.stream("app"))
    partner_gen = partner_ref = None
    if partner is not None:
        partner_ref = partner.reference.reduced(experiment.scale)
        partner_gen = ReferenceGenerator(partner_ref, rng.stream("partner"))
    proc = Processor(0, experiment.machine)
    response_time = 0.0
    slice_left = q_s
    switches = 0
    for _ in range(n_touches):
        cost = proc.touch("measured", gen.next_block(), app_ref.refs_per_touch)
        response_time += cost
        slice_left -= cost
        if slice_left <= 0.0:
            switches += 1
            slice_left = q_s
            if regime == "migrating":
                proc.flush_cache()
            elif regime == "multiprog":
                budget = q_s
                while budget > 0.0:
                    budget -= proc.touch(
                        "partner", partner_gen.next_block(), partner_ref.refs_per_touch
                    )
    return RegimeRun(
        response_time=response_time,
        n_switches=switches,
        hit_rate=proc.cache.stats.hit_rate,
    )


class TestChunkedDriverEquivalence:
    """The chunked production driver against the scalar specification."""

    #: offset past a whole millisecond so no sum of touch costs (all
    #: multiples of 0.125 us) can tie exactly with the slice budget —
    #: the one case where summation order may shift a switch by a touch.
    Q_S = 0.0501003

    @pytest.mark.parametrize("regime,partner", [
        ("stationary", None),
        ("migrating", None),
        ("multiprog", MATRIX),
    ])
    def test_matches_scalar_loop(self, regime, partner):
        exp = PenaltyExperiment(scale=FAST_SCALE, n_switches_target=10, min_run_s=0.4)
        n_touches = exp._touch_count(MVA, self.Q_S)
        scalar = _scalar_run_regime(exp, MVA, self.Q_S, regime, partner, n_touches)
        chunked = exp._run_regime(MVA, self.Q_S, regime, partner, n_touches)
        assert chunked.n_switches == scalar.n_switches
        assert chunked.response_time == pytest.approx(scalar.response_time, rel=1e-9)
        assert chunked.hit_rate == pytest.approx(scalar.hit_rate, rel=1e-12)


class TestScaleInvariance:
    def test_penalties_stable_across_fidelity(self):
        """Scale-32 and scale-64 agree on P^NA within 40%.

        (The reduction preserves time quantities by construction; residual
        differences are sampling noise in the smaller cache.)
        """
        coarse = PenaltyExperiment(scale=64, n_switches_target=15, min_run_s=0.5)
        fine = PenaltyExperiment(scale=32, n_switches_target=15, min_run_s=0.5)
        p_coarse = coarse.measure(GRAVITY, 0.05, partners=()).p_na_s
        p_fine = fine.measure(GRAVITY, 0.05, partners=()).p_na_s
        assert p_coarse == pytest.approx(p_fine, rel=0.4)

    @pytest.mark.slow
    def test_full_fidelity_matches_default_scale(self):
        """Scale 1 (the real 4096-line cache, no reduction) agrees with the
        default scale 16 on both P^NA and P^A.

        This is the run the batched hot path makes feasible: it plays
        every touch against the full-size cache.  The tolerance absorbs
        sampling noise between the two cache geometries.
        """
        full = PenaltyExperiment(scale=1, n_switches_target=20, min_run_s=1.0)
        default = PenaltyExperiment(scale=16, n_switches_target=20, min_run_s=1.0)
        r_full = full.measure(MVA, 0.1, partners=(MATRIX,))
        r_default = default.measure(MVA, 0.1, partners=(MATRIX,))
        assert r_full.p_na_s == pytest.approx(r_default.p_na_s, rel=0.35)
        assert r_full.p_a_s("MATRIX") == pytest.approx(
            r_default.p_a_s("MATRIX"), rel=0.35
        )
        # Affinity ordering is preserved at every fidelity.
        assert 0 < r_full.p_a_s("MATRIX") < r_full.p_na_s
