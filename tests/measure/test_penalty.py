"""The Section 4 penalty experiment (fast, coarse-scale versions)."""

import pytest

from repro.apps import GRAVITY, MATRIX, MVA
from repro.measure.penalty import PAPER_QUANTA_S, PenaltyExperiment

#: Aggressive fidelity reduction keeps these tests fast; the benchmark
#: suite runs the calibrated scale-16 version.
FAST_SCALE = 64


@pytest.fixture(scope="module")
def experiment():
    return PenaltyExperiment(scale=FAST_SCALE, n_switches_target=15, min_run_s=0.5)


@pytest.fixture(scope="module")
def mva_result(experiment):
    return experiment.measure(MVA, 0.05, partners=(MATRIX,))


class TestRegimes:
    def test_migrating_slower_than_stationary(self, mva_result):
        assert mva_result.migrating.response_time > mva_result.stationary.response_time

    def test_multiprog_between_stationary_and_migrating(self, mva_result):
        multi = mva_result.multiprog["MATRIX"].response_time
        assert mva_result.stationary.response_time < multi
        assert multi < mva_result.migrating.response_time * 1.05

    def test_switch_counts_positive(self, mva_result):
        assert mva_result.stationary.n_switches >= 10
        assert mva_result.migrating.n_switches >= 10

    def test_hit_rate_ordering(self, mva_result):
        """Flushing depresses the hit rate below the stationary baseline."""
        assert mva_result.migrating.hit_rate < mva_result.stationary.hit_rate


class TestPenalties:
    def test_p_na_positive(self, mva_result):
        assert mva_result.p_na_s > 0

    def test_p_a_positive_and_below_p_na(self, mva_result):
        p_a = mva_result.p_a_s("MATRIX")
        assert 0 < p_a < mva_result.p_na_s

    def test_p_na_bounded_by_full_fill(self, experiment, mva_result):
        assert mva_result.p_na_s <= experiment.machine.full_fill_time_s * 1.2

    def test_unit_conversion(self, mva_result):
        assert mva_result.p_na_us == pytest.approx(mva_result.p_na_s * 1e6)

    def test_penalty_grows_with_q(self, experiment):
        small = experiment.measure(MVA, 0.025, partners=())
        large = experiment.measure(MVA, 0.2, partners=())
        assert large.p_na_s > small.p_na_s


class TestTable1Harness:
    def test_table_covers_apps_and_quanta(self, experiment):
        table = experiment.table1((MVA, MATRIX), quanta=(0.025, 0.05))
        assert table.apps() == ["MVA", "MATRIX"]
        assert table.quanta() == [0.025, 0.05]
        result = table.result("MVA", 0.05)
        assert set(result.multiprog) == {"MVA", "MATRIX"}

    def test_paper_quanta_constants(self):
        assert PAPER_QUANTA_S == (0.025, 0.100, 0.400)

    def test_invalid_q(self, experiment):
        with pytest.raises(ValueError):
            experiment.measure(MVA, 0.0, partners=())

    def test_invalid_switch_target(self):
        with pytest.raises(ValueError):
            PenaltyExperiment(n_switches_target=1)


class TestScaleInvariance:
    def test_penalties_stable_across_fidelity(self):
        """Scale-32 and scale-64 agree on P^NA within 40%.

        (The reduction preserves time quantities by construction; residual
        differences are sampling noise in the smaller cache.)
        """
        coarse = PenaltyExperiment(scale=64, n_switches_target=15, min_run_s=0.5)
        fine = PenaltyExperiment(scale=32, n_switches_target=15, min_run_s=0.5)
        p_coarse = coarse.measure(GRAVITY, 0.05, partners=()).p_na_s
        p_fine = fine.measure(GRAVITY, 0.05, partners=()).p_na_s
        assert p_coarse == pytest.approx(p_fine, rel=0.4)
