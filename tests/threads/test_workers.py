"""Worker task state machine and affinity accounting."""

import pytest

from repro.machine.footprint import FootprintCurve
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job
from repro.threads.workers import WorkerState, WorkerTask


def make_worker() -> WorkerTask:
    g = ThreadGraph()
    g.add_thread(1.0)
    job = Job("J", g, FootprintCurve(100, 0.1), max_workers=1)
    return job.workers[0]


class TestDispatchDeparture:
    def test_initial_state(self):
        w = make_worker()
        assert w.state == WorkerState.IDLE
        assert w.processor is None
        assert w.last_processor is None

    def test_first_dispatch_has_no_affinity(self):
        w = make_worker()
        assert w.note_dispatch(3, 0.0) is False
        assert w.state == WorkerState.RUNNING
        assert w.processor == 3

    def test_redispatch_same_processor_has_affinity(self):
        w = make_worker()
        w.note_dispatch(3, 0.0)
        w.note_departure(1.0, suspended=False)
        assert w.note_dispatch(3, 2.0) is True

    def test_redispatch_elsewhere_has_no_affinity(self):
        w = make_worker()
        w.note_dispatch(3, 0.0)
        w.note_departure(1.0, suspended=False)
        assert w.note_dispatch(4, 2.0) is False

    def test_departure_returns_stint_duration(self):
        w = make_worker()
        w.note_dispatch(0, 1.0)
        assert w.note_departure(3.5, suspended=False) == pytest.approx(2.5)

    def test_voluntary_departure_clears_thread(self):
        w = make_worker()
        w.current_thread = 0
        w.remaining_service = 0.7
        w.note_dispatch(0, 0.0)
        w.note_departure(1.0, suspended=False)
        assert w.state == WorkerState.IDLE
        assert w.current_thread is None
        assert w.remaining_service == 0.0

    def test_suspension_keeps_thread(self):
        w = make_worker()
        w.current_thread = 0
        w.remaining_service = 0.7
        w.note_dispatch(0, 0.0)
        w.note_departure(1.0, suspended=True)
        assert w.state == WorkerState.SUSPENDED
        assert w.current_thread == 0
        assert w.remaining_service == pytest.approx(0.7)

    def test_last_processor_updated_on_departure(self):
        w = make_worker()
        w.note_dispatch(5, 0.0)
        w.note_departure(1.0, suspended=False)
        assert w.last_processor == 5
        assert w.processor is None


class TestAffinityStats:
    def test_affinity_rate(self):
        w = make_worker()
        w.note_dispatch(0, 0.0)
        w.note_departure(1.0, suspended=False)
        w.note_dispatch(0, 1.0)   # affine
        w.note_departure(2.0, suspended=False)
        w.note_dispatch(1, 2.0)   # not affine
        assert w.dispatches == 3
        assert w.affine_dispatches == 1
        assert w.affinity_rate() == pytest.approx(1 / 3)

    def test_affinity_rate_empty(self):
        assert make_worker().affinity_rate() == 0.0

    def test_key_is_stable(self):
        w = make_worker()
        assert w.key == ("J", 0)
