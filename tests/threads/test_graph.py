"""Thread dependence graphs: readiness, profiles, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.threads.graph import ThreadGraph


def diamond() -> ThreadGraph:
    """a -> (b, c) -> d."""
    g = ThreadGraph("diamond")
    a = g.add_thread(1.0)
    b = g.add_thread(2.0)
    c = g.add_thread(3.0)
    d = g.add_thread(1.0)
    g.add_dependency(a, b)
    g.add_dependency(a, c)
    g.add_dependency(b, d)
    g.add_dependency(c, d)
    return g


class TestConstruction:
    def test_add_thread_returns_sequential_ids(self):
        g = ThreadGraph()
        assert [g.add_thread(1.0) for _ in range(3)] == [0, 1, 2]

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            ThreadGraph().add_thread(-1.0)

    def test_self_dependency_rejected(self):
        g = ThreadGraph()
        t = g.add_thread(1.0)
        with pytest.raises(ValueError):
            g.add_dependency(t, t)

    def test_unknown_thread_rejected(self):
        g = ThreadGraph()
        g.add_thread(1.0)
        with pytest.raises(IndexError):
            g.add_dependency(0, 7)

    def test_total_work(self):
        assert diamond().total_work() == pytest.approx(7.0)


class TestReadiness:
    def test_initially_ready_are_roots(self):
        assert diamond().initially_ready() == [0]

    def test_completion_unblocks_successors(self):
        g = diamond()
        assert sorted(g.complete(0)) == [1, 2]

    def test_join_waits_for_all_predecessors(self):
        g = diamond()
        g.complete(0)
        assert g.complete(1) == []
        assert g.complete(2) == [3]

    def test_double_completion_raises(self):
        g = diamond()
        g.complete(0)
        with pytest.raises(RuntimeError):
            g.complete(0)

    def test_all_done(self):
        g = diamond()
        for tid in (0, 1, 2, 3):
            assert not g.all_done
            g.complete(tid)
        assert g.all_done

    def test_reset_restores_initial_state(self):
        g = diamond()
        g.complete(0)
        g.reset()
        assert g.n_completed == 0
        assert g.initially_ready() == [0]
        assert sorted(g.complete(0)) == [1, 2]


class TestAnalysis:
    def test_validate_acyclic_passes_dag(self):
        diamond().validate_acyclic()

    def test_validate_acyclic_catches_cycle(self):
        g = ThreadGraph("cyclic")
        a = g.add_thread(1.0)
        b = g.add_thread(1.0)
        g.add_dependency(a, b)
        g.add_dependency(b, a)
        with pytest.raises(ValueError):
            g.validate_acyclic()

    def test_critical_path_diamond(self):
        # a(1) -> c(3) -> d(1) = 5
        assert diamond().critical_path() == pytest.approx(5.0)

    def test_critical_path_chain(self):
        g = ThreadGraph()
        ids = [g.add_thread(2.0) for _ in range(4)]
        for a, b in zip(ids, ids[1:]):
            g.add_dependency(a, b)
        assert g.critical_path() == pytest.approx(8.0)

    def test_critical_path_empty(self):
        assert ThreadGraph().critical_path() == 0.0


class TestParallelismProfile:
    def test_flat_fan_runs_at_machine_width(self):
        g = ThreadGraph()
        for _ in range(8):
            g.add_thread(1.0)
        profile = g.parallelism_profile(4)
        assert profile.execution_time == pytest.approx(2.0)
        assert profile.time_at_level[4] == pytest.approx(1.0)
        assert profile.average_demand == pytest.approx(4.0)

    def test_chain_runs_at_level_one(self):
        g = ThreadGraph()
        ids = [g.add_thread(1.0) for _ in range(3)]
        for a, b in zip(ids, ids[1:]):
            g.add_dependency(a, b)
        profile = g.parallelism_profile(4)
        assert profile.time_at_level == {1: pytest.approx(1.0)}
        assert profile.execution_time == pytest.approx(3.0)

    def test_fractions_sum_to_one(self):
        profile = diamond().parallelism_profile(16)
        assert sum(profile.time_at_level.values()) == pytest.approx(1.0)

    def test_profile_restores_graph(self):
        g = diamond()
        g.parallelism_profile(4)
        assert g.n_completed == 0

    def test_fewer_processors_never_faster(self):
        g = diamond()
        wide = g.parallelism_profile(16).execution_time
        narrow = g.parallelism_profile(1).execution_time
        assert narrow >= wide

    def test_single_processor_time_is_total_work(self):
        g = diamond()
        assert g.parallelism_profile(1).execution_time == pytest.approx(g.total_work())

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            diamond().parallelism_profile(0)

    def test_max_parallelism_diamond(self):
        assert diamond().max_parallelism() == 2


@st.composite
def random_dag(draw):
    """A random DAG with edges only from lower to higher ids (acyclic)."""
    n = draw(st.integers(min_value=1, max_value=25))
    g = ThreadGraph("random")
    for _ in range(n):
        g.add_thread(draw(st.floats(min_value=0.01, max_value=5.0)))
    for after in range(1, n):
        for before in range(after):
            if draw(st.booleans()) and draw(st.integers(0, 3)) == 0:
                g.add_dependency(before, after)
    return g


@settings(max_examples=40, deadline=None)
@given(random_dag())
def test_property_greedy_schedule_completes_everything(graph):
    """Any forward-edge DAG list-schedules to completion with sane bounds."""
    graph.validate_acyclic()
    profile = graph.parallelism_profile(4)
    lower = max(graph.critical_path(), graph.total_work() / 4)
    assert profile.execution_time >= lower - 1e-9
    assert profile.execution_time <= graph.total_work() + 1e-9
    assert sum(profile.time_at_level.values()) == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(random_dag())
def test_property_completion_order_covers_all(graph):
    """Repeated complete() over ready sets touches every thread exactly once."""
    ready = list(graph.initially_ready())
    done = 0
    while ready:
        tid = ready.pop()
        ready.extend(graph.complete(tid))
        done += 1
    assert done == graph.n_threads
    assert graph.all_done
