"""The user-level thread data-affinity layer (Section 9 future work)."""

import pytest

from repro.core.policies import DYN_AFF
from repro.core.system import SchedulingSystem
from repro.machine.footprint import FootprintCurve
from repro.threads.data_affinity import DataAffinitySpec, effective_service, pick_thread
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job

CURVE = FootprintCurve(1000, 0.05)


def grouped_job(groups, spec=None, workers=2, service=1.0):
    """A flat job whose threads carry the given data group tags."""
    graph = ThreadGraph("G")
    for group in groups:
        graph.add_thread(service, data_group=group)
    return Job("G", graph, CURVE, max_workers=workers, data_affinity=spec)


class TestSpecValidation:
    def test_defaults(self):
        spec = DataAffinitySpec()
        assert spec.scheduler == "affine"
        assert 0 < spec.warm_discount < 1

    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            DataAffinitySpec(warm_discount=1.0)
        with pytest.raises(ValueError):
            DataAffinitySpec(warm_discount=-0.1)

    def test_invalid_scheduler(self):
        with pytest.raises(ValueError):
            DataAffinitySpec(scheduler="random")

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DataAffinitySpec(search_window=0)


class TestPickThread:
    def test_fifo_without_spec(self):
        job = grouped_job([1, 2, 3])
        job.start(0.0)
        worker = job.workers[0]
        worker.last_data_group = 3
        assert job.take_ready_thread(worker) == 0  # FIFO, no spec

    def test_affine_prefers_matching_group(self):
        job = grouped_job([1, 2, 3], spec=DataAffinitySpec())
        job.start(0.0)
        worker = job.workers[0]
        worker.last_data_group = 3
        assert job.take_ready_thread(worker) == 2  # tid of group 3

    def test_affine_falls_back_to_fifo(self):
        job = grouped_job([1, 2, 3], spec=DataAffinitySpec())
        job.start(0.0)
        worker = job.workers[0]
        worker.last_data_group = 99
        assert job.take_ready_thread(worker) == 0

    def test_search_window_bounds_lookahead(self):
        job = grouped_job([1, 2, 3, 4], spec=DataAffinitySpec(search_window=2))
        job.start(0.0)
        worker = job.workers[0]
        worker.last_data_group = 4  # beyond the window
        assert job.take_ready_thread(worker) == 0

    def test_cold_worker_takes_fifo(self):
        job = grouped_job([1, 2], spec=DataAffinitySpec())
        job.start(0.0)
        assert job.take_ready_thread(job.workers[0]) == 0

    def test_empty_ready_returns_none(self):
        job = grouped_job([1], spec=DataAffinitySpec())
        job.start(0.0)
        job.take_ready_thread(job.workers[0])
        assert pick_thread(job, job.workers[0], job.data_affinity) is None


class TestEffectiveService:
    def test_warm_thread_discounted(self):
        spec = DataAffinitySpec(warm_discount=0.2)
        job = grouped_job([5, 5], spec=spec)
        worker = job.workers[0]
        first = effective_service(job, worker, 0)
        second = effective_service(job, worker, 1)
        assert first == pytest.approx(1.0)       # cold
        assert second == pytest.approx(0.8)      # warm: same group

    def test_group_change_is_cold(self):
        spec = DataAffinitySpec(warm_discount=0.2)
        job = grouped_job([5, 6], spec=spec)
        worker = job.workers[0]
        effective_service(job, worker, 0)
        assert effective_service(job, worker, 1) == pytest.approx(1.0)

    def test_untagged_threads_never_warm(self):
        spec = DataAffinitySpec(warm_discount=0.2)
        job = grouped_job([None, None], spec=spec)
        worker = job.workers[0]
        effective_service(job, worker, 0)
        assert effective_service(job, worker, 1) == pytest.approx(1.0)

    def test_no_spec_means_no_discount(self):
        job = grouped_job([5, 5])
        worker = job.workers[0]
        effective_service(job, worker, 0)
        assert effective_service(job, worker, 1) == pytest.approx(1.0)


class TestEndToEnd:
    def run_job(self, spec):
        # Interleaved groups with scrambled service times, so FIFO cannot
        # accidentally keep workers on their warm groups.
        graph = ThreadGraph("G")
        for index in range(32):
            graph.add_thread(0.4 + 0.03 * (index * 5 % 7), data_group=index % 4)
        job = Job("G", graph, CURVE, max_workers=4, data_affinity=spec)
        result = SchedulingSystem([job], DYN_AFF, n_processors=4, seed=0).run()
        return result.jobs["G"]

    def test_affine_scheduling_beats_fifo(self):
        """Grouped dispatch converts warm-data discounts into response time."""
        fifo = self.run_job(DataAffinitySpec(warm_discount=0.2, scheduler="fifo"))
        affine = self.run_job(DataAffinitySpec(warm_discount=0.2, scheduler="affine"))
        assert affine.response_time < fifo.response_time
        assert affine.work < fifo.work  # fewer effective processor-seconds

    def test_discount_bounded_by_theory(self):
        """Response time cannot improve by more than the discount itself."""
        fifo = self.run_job(DataAffinitySpec(warm_discount=0.2, scheduler="fifo"))
        affine = self.run_job(DataAffinitySpec(warm_discount=0.2, scheduler="affine"))
        assert affine.response_time > (1 - 0.2) * fifo.response_time - 1e-9
