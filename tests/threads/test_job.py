"""Job runtime state: demand reflection and worker selection."""

import pytest

from repro.machine.footprint import FootprintCurve
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job
from repro.threads.workers import WorkerState


def make_job(n_threads=4, max_workers=2, chain=False) -> Job:
    g = ThreadGraph("test")
    ids = [g.add_thread(1.0) for _ in range(n_threads)]
    if chain:
        for a, b in zip(ids, ids[1:]):
            g.add_dependency(a, b)
    return Job("J", g, FootprintCurve(100, 0.1), max_workers=max_workers)


class TestLifecycle:
    def test_start_populates_ready(self):
        job = make_job(4)
        job.start(0.0)
        assert len(job.ready) == 4

    def test_chain_starts_with_one_ready(self):
        job = make_job(4, chain=True)
        job.start(0.0)
        assert len(job.ready) == 1

    def test_response_time_requires_completion(self):
        job = make_job()
        job.start(1.0)
        with pytest.raises(RuntimeError):
            _ = job.response_time
        job.completion_time = 5.0
        assert job.response_time == pytest.approx(4.0)

    def test_finished_tracks_graph(self):
        job = make_job(2, max_workers=1)
        job.start(0.0)
        assert not job.finished
        job.on_thread_complete(job.take_ready_thread())
        job.on_thread_complete(job.take_ready_thread())
        assert job.finished

    def test_needs_at_least_one_worker(self):
        g = ThreadGraph()
        g.add_thread(1.0)
        with pytest.raises(ValueError):
            Job("J", g, FootprintCurve(100, 0.1), max_workers=0)


class TestDemand:
    def test_demand_capped_by_workers(self):
        job = make_job(10, max_workers=3)
        job.start(0.0)
        assert job.demand() == 3

    def test_demand_counts_ready_and_running(self):
        job = make_job(4, max_workers=8)
        job.start(0.0)
        worker = job.workers[0]
        worker.current_thread = job.take_ready_thread()
        worker.note_dispatch(0, 0.0)
        assert job.demand() == 4  # 3 ready + 1 running

    def test_demand_counts_suspended(self):
        job = make_job(1, max_workers=4)
        job.start(0.0)
        worker = job.workers[0]
        worker.current_thread = job.take_ready_thread()
        worker.note_dispatch(0, 0.0)
        worker.remaining_service = 0.5
        worker.note_departure(1.0, suspended=True)
        assert worker.state == WorkerState.SUSPENDED
        assert job.demand() == 1

    def test_additional_request(self):
        job = make_job(10, max_workers=8)
        job.start(0.0)
        assert job.additional_request(3) == 5
        assert job.additional_request(8) == 0
        assert job.additional_request(12) == 0


class TestWorkerSelection:
    def test_no_work_no_worker(self):
        job = make_job(0 + 1, max_workers=2)
        job.start(0.0)
        job.take_ready_thread()
        assert job.select_worker(0, prefer_affinity=False) is None

    def test_suspended_preferred_over_idle(self):
        job = make_job(5, max_workers=4)
        job.start(0.0)
        worker = job.workers[2]
        worker.current_thread = job.take_ready_thread()
        worker.note_dispatch(1, 0.0)
        worker.remaining_service = 0.5
        worker.note_departure(1.0, suspended=True)
        assert job.select_worker(0, prefer_affinity=False) is worker

    def test_affinity_preference_picks_matching_worker(self):
        job = make_job(8, max_workers=4)
        job.start(0.0)
        # Give workers distinct histories.
        for cpu, worker in enumerate(job.workers):
            worker.note_dispatch(cpu, 0.0)
            worker.note_departure(1.0, suspended=False)
        chosen = job.select_worker(2, prefer_affinity=True)
        assert chosen is job.workers[2]

    def test_without_affinity_takes_first_dispatchable(self):
        job = make_job(8, max_workers=4)
        job.start(0.0)
        for cpu, worker in enumerate(job.workers):
            worker.note_dispatch(cpu, 0.0)
            worker.note_departure(1.0, suspended=False)
        assert job.select_worker(2, prefer_affinity=False) is job.workers[0]

    def test_desired_processor_follows_critical_suspended_worker(self):
        job = make_job(6, max_workers=4)
        job.start(0.0)
        for cpu, remaining in ((3, 0.2), (5, 0.9)):
            worker = job.workers[cpu % 4]
            worker.current_thread = job.take_ready_thread()
            worker.note_dispatch(cpu, 0.0)
            worker.remaining_service = remaining
            worker.note_departure(1.0, suspended=True)
        assert job.desired_processor() == 5

    def test_desired_processor_none_for_fresh_job(self):
        job = make_job(4)
        job.start(0.0)
        assert job.desired_processor() is None


class TestMetrics:
    def test_affinity_percentage(self):
        job = make_job()
        job.n_reallocations = 10
        job.n_affine = 4
        assert job.affinity_percentage() == pytest.approx(40.0)

    def test_affinity_percentage_no_reallocations(self):
        assert make_job().affinity_percentage() == 0.0

    def test_average_allocation(self):
        job = make_job()
        job.start(0.0)
        job.completion_time = 10.0
        job.allocation_integral = 35.0
        assert job.average_allocation() == pytest.approx(3.5)

    def test_worker_by_key(self):
        job = make_job(max_workers=3)
        assert job.worker_by_key(("J", 1)) is job.workers[1]
        assert job.worker_by_key(("OTHER", 1)) is None
        assert job.worker_by_key(("J", 99)) is None
