"""Barrier construction and critical-section inflation."""

import pytest

from repro.threads.graph import ThreadGraph
from repro.threads.sync import CriticalSectionModel, add_barrier


class TestAddBarrier:
    def test_barrier_waits_for_all(self):
        g = ThreadGraph()
        phase = [g.add_thread(1.0) for _ in range(3)]
        barrier = add_barrier(g, phase)
        nxt = g.add_thread(1.0)
        g.add_dependency(barrier, nxt)
        g.complete(phase[0])
        g.complete(phase[1])
        assert g.complete(phase[2]) == [barrier]
        assert g.complete(barrier) == [nxt]

    def test_barrier_has_zero_service_by_default(self):
        g = ThreadGraph()
        phase = [g.add_thread(1.0)]
        barrier = add_barrier(g, phase)
        assert g.service_time(barrier) == 0.0

    def test_barrier_phase_label_recorded(self):
        g = ThreadGraph()
        phase = [g.add_thread(1.0)]
        barrier = add_barrier(g, phase, phase="sync/step-3")
        assert g.node(barrier).phase == "sync/step-3"

    def test_barrier_with_no_predecessors_is_immediately_ready(self):
        g = ThreadGraph()
        barrier = add_barrier(g, [])
        assert barrier in g.initially_ready()

    def test_nonzero_service_barrier_adds_work(self):
        g = ThreadGraph()
        phase = [g.add_thread(1.0) for _ in range(2)]
        add_barrier(g, phase, service_time=0.25)
        assert g.total_work() == pytest.approx(2.25)

    def test_barrier_drops_parallelism_to_one(self):
        """The paper: 'parallelism decreases briefly to one' at barriers."""
        g = ThreadGraph()
        first = [g.add_thread(1.0) for _ in range(4)]
        barrier = add_barrier(g, first, service_time=0.5)
        for _ in range(4):
            tid = g.add_thread(1.0)
            g.add_dependency(barrier, tid)
        profile = g.parallelism_profile(8)
        assert profile.time_at_level[1] == pytest.approx(0.5 / 2.5)


class TestCriticalSectionModel:
    def test_zero_fraction_no_inflation(self):
        model = CriticalSectionModel(0.0)
        assert model.inflated_service(1.0, 32) == pytest.approx(1.0)

    def test_single_thread_no_inflation(self):
        model = CriticalSectionModel(0.25)
        assert model.inflated_service(1.0, 1) == pytest.approx(1.0)

    def test_expected_wait_half_of_others(self):
        model = CriticalSectionModel(0.1)
        # 0.5 * 9 others * 0.1 * 2.0s = 0.9s extra
        assert model.inflated_service(2.0, 10) == pytest.approx(2.9)

    def test_inflation_grows_with_concurrency(self):
        model = CriticalSectionModel(0.05)
        assert model.inflated_service(1.0, 16) < model.inflated_service(1.0, 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            CriticalSectionModel(1.0)
        with pytest.raises(ValueError):
            CriticalSectionModel(-0.1)
        model = CriticalSectionModel(0.1)
        with pytest.raises(ValueError):
            model.inflated_service(1.0, 0)
        with pytest.raises(ValueError):
            model.inflated_service(-1.0, 2)
