"""Content-addressed result cache: keys, commit protocol, damage handling."""

import json
import os
import re

import pytest

from repro.sweep.cache import (
    RESULT_SCHEMA,
    ResultCache,
    cell_key,
    code_fingerprint,
)
from repro.sweep.spec import SweepCell

FP = "f" * 64  # a fixed fingerprint so key tests never walk the source tree


def _cell(seed=0, **extra):
    config = {"scenario": "steady", "policy": "Dyn-Aff", "seed": seed}
    config.update(extra)
    return SweepCell.make("opensys", config)


def _payload(value=1.5):
    return {"schema": RESULT_SCHEMA, "kind": "opensys",
            "data": {"makespan": value, "jobs": {"a": [1, 2]}}}


class TestCellKey:
    def test_shape_and_determinism(self):
        key = cell_key(_cell(), FP)
        assert re.fullmatch(r"[0-9a-f]{64}", key)
        assert cell_key(_cell(), FP) == key

    def test_config_change_changes_key(self):
        assert cell_key(_cell(seed=0), FP) != cell_key(_cell(seed=1), FP)
        assert cell_key(_cell(), FP) != cell_key(_cell(lite=True), FP)

    def test_kind_is_part_of_the_key(self):
        a = SweepCell(kind="mix", config_json=_cell().config_json)
        b = SweepCell(kind="opensys", config_json=_cell().config_json)
        assert cell_key(a, FP) != cell_key(b, FP)

    def test_fingerprint_is_part_of_the_key(self):
        assert cell_key(_cell(), FP) != cell_key(_cell(), "0" * 64)

    def test_default_fingerprint_is_the_source_tree_hash(self):
        assert cell_key(_cell()) == cell_key(_cell(), code_fingerprint())


class TestCodeFingerprint:
    def test_stable_and_well_formed(self):
        fp = code_fingerprint()
        assert re.fullmatch(r"[0-9a-f]{64}", fp)
        assert code_fingerprint() == fp


class TestStoreLoad:
    def test_miss_is_none(self, tmp_path):
        assert ResultCache(str(tmp_path)).load("ab" * 32) is None

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cell_key(_cell(), FP)
        cache.store(_cell(), key, _payload(), FP)
        assert cache.has(key)
        assert cache.load(key) == _payload()

    def test_floats_roundtrip_exactly(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cell_key(_cell(), FP)
        value = 0.1 + 0.2  # 0.30000000000000004 — repr round-trips exactly
        cache.store(_cell(), key, _payload(value), FP)
        assert cache.load(key)["data"]["makespan"] == value

    def test_store_refuses_unschemad_payload(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ValueError, match="refusing to cache"):
            cache.store(_cell(), cell_key(_cell(), FP), {"data": {}}, FP)

    def test_provenance_written_alongside(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cell_key(_cell(), FP)
        cache.store(_cell(), key, _payload(), FP)
        with open(os.path.join(cache.cell_dir(key), "cell.json")) as fh:
            provenance = json.load(fh)
        assert provenance["key"] == key
        assert provenance["code_fingerprint"] == FP
        assert provenance["config"] == _cell().config

    def test_missing_result_file_is_a_miss(self, tmp_path):
        # cell.json without result.json == interrupted store == never ran.
        cache = ResultCache(str(tmp_path))
        key = cell_key(_cell(), FP)
        os.makedirs(cache.cell_dir(key))
        with open(os.path.join(cache.cell_dir(key), "cell.json"), "w") as fh:
            fh.write("{}")
        assert not cache.has(key)
        assert cache.load(key) is None


class TestDamage:
    @pytest.mark.parametrize("damage", ["", "{trunc", '"a string"', "[1,2]"])
    def test_damaged_entry_evicted_and_missed(self, tmp_path, damage):
        cache = ResultCache(str(tmp_path))
        key = cell_key(_cell(), FP)
        cache.store(_cell(), key, _payload(), FP)
        with open(os.path.join(cache.cell_dir(key), "result.json"), "w") as fh:
            fh.write(damage)
        assert cache.load(key) is None
        assert not os.path.exists(cache.cell_dir(key))  # evicted

    def test_wrong_result_schema_evicted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cell_key(_cell(), FP)
        cache.store(_cell(), key, _payload(), FP)
        path = os.path.join(cache.cell_dir(key), "result.json")
        with open(path, "w") as fh:
            json.dump({"schema": "something/else"}, fh)
        assert cache.load(key) is None
        assert not cache.has(key)


class TestEvict:
    def test_evict_removes_and_prunes_fanout(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cell_key(_cell(), FP)
        cache.store(_cell(), key, _payload(), FP)
        assert cache.evict(key)
        assert not os.path.exists(cache.cell_dir(key))
        assert not os.path.exists(os.path.dirname(cache.cell_dir(key)))

    def test_evict_keeps_sibling_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key_a = cell_key(_cell(seed=0), FP)
        # Find a sibling sharing the two-char fanout prefix.
        seed, key_b = next(
            (s, k) for s, k in
            ((s, cell_key(_cell(seed=s), FP)) for s in range(1, 5000))
            if k[:2] == key_a[:2]
        )
        cache.store(_cell(seed=0), key_a, _payload(), FP)
        cache.store(_cell(seed=seed), key_b, _payload(), FP)
        assert cache.evict(key_a)
        assert cache.has(key_b)

    def test_evict_missing_is_false(self, tmp_path):
        assert not ResultCache(str(tmp_path)).evict("ab" * 32)
