"""CLI surface of the sweep layer: `repro sweep` and the --seeds axis."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sweep import SweepSpec
from repro.workloads.opensys import built_in_scenarios, run_matrix
from repro.core.policies import DYN_AFF, EQUIPARTITION


def _write_spec(tmp_path, **overrides):
    kwargs = dict(
        name="lite",
        kind="opensys",
        scenarios=("steady",),
        policies=("Equipartition", "Dyn-Aff"),
        seeds=(0,),
        n_processors=4,
        lite=True,
    )
    kwargs.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SweepSpec(**kwargs).to_dict()), encoding="utf-8")
    return str(path)


class TestSweepCommand:
    def test_run_then_rerun_hits_everything(self, tmp_path, capsys):
        spec = _write_spec(tmp_path)
        cache = str(tmp_path / "cache")
        assert main(["sweep", "run", spec, "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert "2 cells, 0 cache hits, 2 computed" in first
        assert "Dyn-Aff" in first  # the matrix table rendered

        assert main(["sweep", "run", spec, "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "2 cells, 2 cache hits, 0 computed" in second
        # Identical rendered report either way (modulo the hit counters).
        assert first.splitlines()[2:] == second.splitlines()[2:]

    def test_status_and_clean(self, tmp_path, capsys):
        spec = _write_spec(tmp_path)
        cache = str(tmp_path / "cache")
        assert main(["sweep", "status", spec, "--cache-dir", cache]) == 0
        assert "2 cells, 0 cached, 2 pending" in capsys.readouterr().out

        main(["sweep", "run", spec, "--cache-dir", cache])
        capsys.readouterr()
        assert main(["sweep", "status", spec, "--cache-dir", cache]) == 0
        assert "2 cells, 2 cached, 0 pending" in capsys.readouterr().out

        assert main(["sweep", "clean", spec, "--cache-dir", cache]) == 0
        assert "evicted 2 cached cell(s)" in capsys.readouterr().out
        assert main(["sweep", "status", spec, "--cache-dir", cache]) == 0
        assert "2 cells, 0 cached, 2 pending" in capsys.readouterr().out

    def test_bad_spec_is_a_diagnostic_not_a_traceback(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"name": "x", "kind": "fig9"}),
                        encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "run", str(path), "--cache-dir",
                  str(tmp_path / "cache")])
        assert excinfo.value.code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "unknown sweep kind" in err

    def test_missing_spec_file(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "run", str(tmp_path / "nope.json")])
        assert excinfo.value.code == 1
        assert "cannot read sweep spec" in capsys.readouterr().err

    def test_metrics_flag_renders_snapshot(self, tmp_path, capsys):
        spec = _write_spec(tmp_path)
        assert main(["sweep", "run", spec, "--cache-dir",
                     str(tmp_path / "cache"), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "=== metrics ===" in out


class TestSeedsAxis:
    def test_count_form_parses(self):
        args = build_parser().parse_args(["opensys", "--seeds", "3"])
        assert args.seeds == 3

    def test_list_form_parses(self):
        args = build_parser().parse_args(["opensys", "--seeds", "1,2,5"])
        assert args.seeds == (1, 2, 5)

    def test_duplicate_seed_list_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["opensys", "--seeds", "1,1,2"])
        assert excinfo.value.code == 2  # argparse usage error
        assert "duplicate seeds" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["0", "-2", "x", "1,y"])
    def test_invalid_seeds_rejected(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["opensys", "--seeds", bad])


class TestRunMatrixSeedList:
    def test_explicit_seed_list_matches_equivalent_count(self):
        scenarios = [built_in_scenarios(lite=True, n_processors=4)["steady"]]
        policies = [EQUIPARTITION, DYN_AFF]
        by_count = run_matrix(
            scenarios, policies, seeds=2, base_seed=5, n_processors=4
        )
        by_list = run_matrix(
            scenarios, policies, seeds=[5, 6], n_processors=4
        )
        assert by_count.seeds == by_list.seeds == (5, 6)
        assert by_count.results == by_list.results

    def test_noncontiguous_seed_list(self):
        scenarios = [built_in_scenarios(lite=True, n_processors=4)["steady"]]
        result = run_matrix(
            scenarios, [DYN_AFF], seeds=[3, 11], n_processors=4
        )
        assert result.seeds == (3, 11)
        for per_seed in result.results.values():
            assert [r.seed for r in per_seed] == [3, 11]

    def test_duplicate_seed_list_rejected(self):
        scenarios = [built_in_scenarios(lite=True, n_processors=4)["steady"]]
        with pytest.raises(ValueError, match="duplicate seeds"):
            run_matrix(scenarios, [DYN_AFF], seeds=[1, 1], n_processors=4)

    def test_zero_count_rejected(self):
        scenarios = [built_in_scenarios(lite=True, n_processors=4)["steady"]]
        with pytest.raises(ValueError, match="at least one seed"):
            run_matrix(scenarios, [DYN_AFF], seeds=0, n_processors=4)
