"""Sweep specs: seed validation, axis validation, expansion, loading."""

import json
import pickle
import sys

import pytest

from repro.sweep.spec import (
    OPENSYS_SCENARIOS,
    TABLE1_APPS,
    TABLE1_QUANTA_S,
    SweepCell,
    SweepSpec,
    load_spec,
    normalize_seeds,
    parse_seeds_arg,
    spec_from_dict,
)


class TestNormalizeSeeds:
    def test_count_expands_from_base(self):
        assert normalize_seeds(3) == (0, 1, 2)
        assert normalize_seeds(2, base_seed=7) == (7, 8)

    def test_explicit_list_passes_through(self):
        assert normalize_seeds([5, 1, 9]) == (5, 1, 9)
        assert normalize_seeds((4,)) == (4,)

    def test_explicit_list_ignores_base_seed(self):
        assert normalize_seeds([2, 3], base_seed=100) == (2, 3)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_count_rejected(self, bad):
        with pytest.raises(ValueError, match="at least one seed"):
            normalize_seeds(bad)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            normalize_seeds([])

    def test_bool_is_not_a_count(self):
        with pytest.raises(ValueError, match="count or a list"):
            normalize_seeds(True)

    @pytest.mark.parametrize("bad", [[1, 2.5], [1, "2"], [1, None], [1, True]])
    def test_non_integer_entries_rejected(self, bad):
        with pytest.raises(ValueError, match="not an integer"):
            normalize_seeds(bad)

    def test_duplicates_rejected_and_named(self):
        with pytest.raises(ValueError, match=r"duplicate seeds \[1\]"):
            normalize_seeds([1, 1, 2])

    def test_all_duplicates_named_sorted(self):
        with pytest.raises(ValueError, match=r"duplicate seeds \[2, 7\]"):
            normalize_seeds([7, 2, 7, 2, 1])


class TestParseSeedsArg:
    def test_plain_number_is_a_count(self):
        assert parse_seeds_arg("3") == 3

    def test_comma_list_is_explicit(self):
        assert parse_seeds_arg("1,2,5") == (1, 2, 5)

    def test_trailing_comma_forces_single_element_list(self):
        assert parse_seeds_arg("5,") == (5,)

    def test_whitespace_tolerated(self):
        assert parse_seeds_arg(" 1 , 2 ") == (1, 2)

    @pytest.mark.parametrize("bad", ["", "x", "1,y"])
    def test_garbage_raises(self, bad):
        with pytest.raises(ValueError):
            parse_seeds_arg(bad)


def _opensys_spec(**overrides):
    kwargs = dict(
        name="t",
        kind="opensys",
        scenarios=("steady",),
        policies=("Equipartition", "Dyn-Aff"),
        seeds=(0, 1),
        n_processors=4,
        lite=True,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown sweep kind"):
            SweepSpec(name="t", kind="fig9")

    def test_needs_name(self):
        with pytest.raises(ValueError, match="needs a name"):
            SweepSpec(name="", kind="mix", mixes=(1,), policies=("Dyn-Aff",))

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicate seeds"):
            _opensys_spec(seeds=(1, 1, 2))

    def test_seed_count_expands(self):
        assert _opensys_spec(seeds=3).seeds == (0, 1, 2)

    def test_duplicate_axis_entries_rejected(self):
        with pytest.raises(ValueError, match="duplicate entries in policies"):
            _opensys_spec(policies=("Dyn-Aff", "Dyn-Aff"))
        with pytest.raises(ValueError, match="duplicate entries in scenarios"):
            _opensys_spec(scenarios=("steady", "steady"))

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy 'Roulette'"):
            _opensys_spec(policies=("Roulette",))

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            _opensys_spec(scenarios=("quiet",))

    def test_unknown_mix(self):
        with pytest.raises(ValueError, match="unknown mix"):
            SweepSpec(name="t", kind="mix", mixes=(99,), policies=("Dyn-Aff",))

    def test_unknown_app(self):
        with pytest.raises(ValueError, match="unknown application"):
            SweepSpec(name="t", kind="table1", apps=("SORT",))

    def test_utilization_bounds(self):
        with pytest.raises(ValueError, match="utilization"):
            _opensys_spec(utilization=0.0)
        with pytest.raises(ValueError, match="utilization"):
            _opensys_spec(utilization=1.0)

    def test_backend_validated(self):
        with pytest.raises(ValueError, match="backend"):
            SweepSpec(name="t", kind="table1", backend="fortran")

    def test_policies_required_for_mix_and_opensys(self):
        with pytest.raises(ValueError, match="at least one policy"):
            SweepSpec(name="t", kind="mix", mixes=(1,))
        with pytest.raises(ValueError, match="at least one policy"):
            SweepSpec(name="t", kind="opensys", scenarios=("steady",))

    def test_table1_defaults_paper_axes(self):
        spec = SweepSpec(name="t", kind="table1")
        assert spec.apps == TABLE1_APPS
        assert spec.quanta == TABLE1_QUANTA_S


class TestExpansion:
    def test_opensys_order_is_scenario_policy_seed(self):
        spec = _opensys_spec(scenarios=("steady", "bursty"))
        labels = [cell.label for cell in spec.expand()]
        assert labels == [
            "steady/Equipartition/seed0",
            "steady/Equipartition/seed1",
            "steady/Dyn-Aff/seed0",
            "steady/Dyn-Aff/seed1",
            "bursty/Equipartition/seed0",
            "bursty/Equipartition/seed1",
            "bursty/Dyn-Aff/seed0",
            "bursty/Dyn-Aff/seed1",
        ]

    def test_expansion_is_deterministic(self):
        assert _opensys_spec().expand() == _opensys_spec().expand()

    def test_mix_cell_config(self):
        spec = SweepSpec(
            name="t", kind="mix", mixes=(1,), policies=("Dyn-Aff",),
            seeds=(3,), n_processors=8,
        )
        (cell,) = spec.expand()
        assert cell.config == {
            "mix": 1, "policy": "Dyn-Aff", "seed": 3, "n_processors": 8,
        }

    def test_backend_only_keys_table1_cells(self):
        # backend picks the cache/reference engines, which only table1
        # touches; keying mix/opensys cells on it would split the cache
        # for runs that cannot differ.
        mix = SweepSpec(
            name="t", kind="mix", mixes=(1,), policies=("Dyn-Aff",),
        ).expand()[0]
        osys = _opensys_spec().expand()[0]
        t1 = SweepSpec(name="t", kind="table1", backend="scalar").expand()[0]
        assert "backend" not in mix.config
        assert "backend" not in osys.config
        assert t1.config["backend"] == "scalar"

    def test_table1_cells_carry_partners(self):
        spec = SweepSpec(name="t", kind="table1", apps=("MVA", "MATRIX"))
        for cell in spec.expand():
            assert cell.config["partners"] == ["MVA", "MATRIX"]

    def test_cells_are_hashable_orderable_picklable(self):
        cells = _opensys_spec().expand()
        assert len(set(cells)) == len(cells)
        assert sorted(cells)  # order=True
        assert pickle.loads(pickle.dumps(cells[0])) == cells[0]

    def test_make_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            SweepCell.make("fig9", {})


def test_opensys_scenario_names_pin_the_builtin_set():
    """spec.OPENSYS_SCENARIOS is hardcoded (leaf-module constraint);
    this pins it to the actual built-in scenario registry."""
    from repro.workloads.opensys import built_in_scenarios

    scenarios = built_in_scenarios(lite=True, n_processors=4)
    assert tuple(scenarios) == OPENSYS_SCENARIOS


class TestSpecDocuments:
    def test_roundtrip_through_dict(self):
        spec = _opensys_spec()
        assert spec_from_dict(spec.to_dict()) == spec
        t1 = SweepSpec(name="q", kind="table1", scale=8, backend="numpy")
        assert spec_from_dict(t1.to_dict()) == t1

    def test_unknown_field_rejected_naming_source(self):
        data = _opensys_spec().to_dict()
        data["scenario"] = "steady"  # typo for "scenarios"
        with pytest.raises(ValueError, match=r"my.json: unknown spec field"):
            spec_from_dict(data, source="my.json")

    def test_unknown_schema_rejected(self):
        data = _opensys_spec().to_dict()
        data["schema"] = "repro.sweep.spec/99"
        with pytest.raises(ValueError, match="unknown spec schema"):
            spec_from_dict(data)

    def test_axis_must_be_a_list(self):
        data = _opensys_spec().to_dict()
        data["policies"] = "Dyn-Aff"
        with pytest.raises(ValueError, match="policies must be a list"):
            spec_from_dict(data)

    def test_validation_errors_name_the_source(self):
        data = _opensys_spec().to_dict()
        data["seeds"] = [1, 1]
        with pytest.raises(ValueError, match="spec.json: duplicate seeds"):
            spec_from_dict(data, source="spec.json")

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="table/object"):
            spec_from_dict(["not", "a", "spec"])


class TestLoadSpec:
    def test_json_roundtrip(self, tmp_path):
        spec = _opensys_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        assert load_spec(str(path)) == spec

    def test_missing_file_names_path(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read sweep spec"):
            load_spec(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_spec(str(path))

    def test_toml_gated_or_loaded(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'schema = "repro.sweep.spec/1"\n'
            'name = "t"\n'
            'kind = "opensys"\n'
            'scenarios = ["steady"]\n'
            'policies = ["Dyn-Aff"]\n'
            "seeds = [0]\n"
            "lite = true\n",
            encoding="utf-8",
        )
        if sys.version_info >= (3, 11):
            spec = load_spec(str(path))
            assert spec.kind == "opensys" and spec.lite
        else:
            with pytest.raises(ValueError, match="TOML specs need Python 3.11"):
                load_spec(str(path))

    def test_invalid_toml(self, tmp_path):
        if sys.version_info < (3, 11):
            pytest.skip("tomllib needs Python 3.11+")
        path = tmp_path / "spec.toml"
        path.write_text("= broken", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid TOML"):
            load_spec(str(path))
