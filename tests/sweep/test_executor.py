"""Sweep executor: hits, recompute, invalidation, journal, worker counts.

Cells here are lite open-system scenarios — real simulations, small
enough (~tens of ms each) to run many times per test.
"""

import json

import pytest

import repro.sweep.executor as executor
from repro.sweep import ResultCache, SweepSpec, cell_key
from repro.sweep.executor import run_sweep, sweep_clean, sweep_status
from repro.sweep.spec import canonical_json

FAKE_FP = "0" * 64


def _spec(**overrides):
    kwargs = dict(
        name="t",
        kind="opensys",
        scenarios=("steady",),
        policies=("Equipartition", "Dyn-Aff"),
        seeds=(0, 1),
        n_processors=4,
        lite=True,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def _bytes(result):
    """The sweep's payloads in canonical-JSON form, expansion order."""
    return [canonical_json(o.payload) for o in result.outcomes]


class TestRunSweep:
    def test_no_cache_runs_everything(self):
        result = run_sweep(_spec())
        assert result.n_computed == 4 and result.n_hits == 0
        assert result.journal_path is None
        assert [o.cell for o in result.outcomes] == list(_spec().expand())
        for outcome in result.outcomes:
            assert outcome.payload["schema"] == "repro.sweep.result/1"
            assert outcome.payload["data"]["opensys"]["n_jobs"] > 0

    def test_second_run_is_all_hits_and_byte_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = run_sweep(_spec(), cache=cache)
        second = run_sweep(_spec(), cache=cache)
        assert first.n_computed == 4 and first.n_hits == 0
        assert second.n_computed == 0 and second.n_hits == 4
        assert all(o.cached for o in second.outcomes)
        assert _bytes(first) == _bytes(second)

    def test_cached_run_matches_uncached_byte_for_byte(self, tmp_path):
        cached = run_sweep(_spec(), cache=ResultCache(str(tmp_path)))
        plain = run_sweep(_spec())
        assert _bytes(cached) == _bytes(plain)

    def test_workers_bit_identical_to_serial(self, tmp_path):
        serial = run_sweep(_spec(), cache=ResultCache(str(tmp_path / "a")))
        parallel = run_sweep(
            _spec(), cache=ResultCache(str(tmp_path / "b")),
            workers=2, shard_size=1,
        )
        assert parallel.n_computed == 4
        assert _bytes(serial) == _bytes(parallel)

    def test_force_recomputes_despite_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep(_spec(), cache=cache)
        forced = run_sweep(_spec(), cache=cache, force=True)
        assert forced.n_computed == 4 and forced.n_hits == 0

    def test_on_commit_fires_per_shard_in_order(self, tmp_path):
        seen = []
        run_sweep(
            _spec(), cache=ResultCache(str(tmp_path)), shard_size=1,
            on_commit=lambda index, payloads: seen.append((index, len(payloads))),
        )
        assert seen == [(0, 1), (1, 1), (2, 1), (3, 1)]

    def test_bad_shard_size(self, tmp_path):
        with pytest.raises(ValueError, match="shard_size"):
            run_sweep(_spec(), cache=ResultCache(str(tmp_path)), shard_size=0)


class TestInvalidation:
    def test_config_change_forces_recompute(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep(_spec(), cache=cache)
        changed = run_sweep(_spec(utilization=0.6), cache=cache)
        assert changed.n_computed == 4 and changed.n_hits == 0

    def test_untouched_cells_still_hit_after_axis_growth(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep(_spec(), cache=cache)
        grown = run_sweep(_spec(scenarios=("steady", "bursty")), cache=cache)
        assert grown.n_hits == 4 and grown.n_computed == 4
        cached_labels = {o.cell.label for o in grown.outcomes if o.cached}
        assert all(label.startswith("steady/") for label in cached_labels)

    def test_code_fingerprint_change_forces_recompute(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        baseline = run_sweep(_spec(), cache=cache)
        monkeypatch.setattr(executor, "code_fingerprint", lambda: FAKE_FP)
        refreshed = run_sweep(_spec(), cache=cache)
        assert refreshed.n_computed == 4 and refreshed.n_hits == 0
        assert _bytes(refreshed) == _bytes(baseline)
        # Entries under the old fingerprint still serve once it's back.
        monkeypatch.undo()
        again = run_sweep(_spec(), cache=cache)
        assert again.n_hits == 4

    def test_metricless_hit_cannot_serve_a_metrics_run(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep(_spec(), cache=cache)
        with_metrics = run_sweep(_spec(), cache=cache, collect_metrics=True)
        assert with_metrics.n_computed == 4  # upgraded in place
        assert all(o.payload["metrics"] for o in with_metrics.outcomes)
        # Now the cache holds metrics: both flavours of run are hits, and
        # a metric-less run is served a metric-less payload.
        hit = run_sweep(_spec(), cache=cache, collect_metrics=True)
        assert hit.n_hits == 4
        plain = run_sweep(_spec(), cache=cache)
        assert plain.n_hits == 4
        assert all("metrics" not in o.payload for o in plain.outcomes)


class TestJournal:
    def test_journal_records_the_run(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_sweep(_spec(), cache=cache, shard_size=2)
        with open(result.journal_path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh]
        assert all(line["schema"] == "repro.sweep.journal/1" for line in lines)
        events = [line["event"] for line in lines]
        assert events == ["run_start", "cell_done", "cell_done",
                          "cell_done", "cell_done", "run_end"]
        start = lines[0]
        assert start["n_cells"] == 4 and start["n_pending"] == 4
        assert len(start["code_fingerprint"]) == 64
        done = [line for line in lines if line["event"] == "cell_done"]
        assert [d["label"] for d in done] == [
            c.label for c in _spec().expand()
        ]
        assert [d["shard"] for d in done] == [0, 0, 1, 1]

    def test_journal_appends_across_runs(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep(_spec(), cache=cache)
        result = run_sweep(_spec(), cache=cache)
        with open(result.journal_path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh]
        # Second run: everything cached, so run_start + run_end only.
        assert [line["event"] for line in lines[-2:]] == ["run_start", "run_end"]
        assert lines[-2]["n_cached"] == 4 and lines[-2]["n_pending"] == 0
        assert lines[-1]["n_computed"] == 0 and lines[-1]["n_hits"] == 4


class TestStatusAndClean:
    def test_status_counts_cache_occupancy(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        before = sweep_status(_spec(), cache)
        assert before.n_cells == 4 and before.n_cached == 0
        assert before.n_pending == 4 and before.journal_path is None
        run_sweep(_spec(), cache=cache)
        after = sweep_status(_spec(), cache)
        assert after.n_cached == 4 and after.n_pending == 0
        assert after.journal_path is not None

    def test_partial_occupancy(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep(_spec(), cache=cache)
        cells = _spec().expand()
        assert cache.evict(cell_key(cells[0]))
        status = sweep_status(_spec(), cache)
        assert status.n_cached == 3 and status.n_pending == 1
        resumed = run_sweep(_spec(), cache=cache)
        assert resumed.n_computed == 1 and resumed.n_hits == 3

    def test_clean_evicts_only_this_spec(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep(_spec(), cache=cache)
        other = _spec(name="other", scenarios=("bursty",))
        run_sweep(other, cache=cache)
        assert sweep_clean(_spec(), cache) == 4
        assert sweep_status(_spec(), cache).n_cached == 0
        assert sweep_status(other, cache).n_cached == 4
        assert sweep_clean(_spec(), cache) == 0  # idempotent
