"""Resume correctness: a hard-killed sweep, resumed, matches an
uninterrupted one bit-for-bit.

The victim process runs in a subprocess (SIGKILL cannot be trapped, so
it must not be the test process) with ``shard_size=1`` and an
``on_commit`` hook that kills the process after the first shard lands.
Resume is just running the same spec again: cached cells are skipped,
the rest recompute, and the assembled payloads must be byte-identical
to a never-interrupted run in a separate cache.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys

import pytest

from repro.sweep import ResultCache, SweepSpec
from repro.sweep.executor import run_sweep, sweep_status
from repro.sweep.spec import canonical_json

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

VICTIM = """\
import json, os, signal, sys

from repro.sweep import ResultCache, spec_from_dict
from repro.sweep.executor import run_sweep

spec = spec_from_dict(json.loads(sys.argv[1]))
cache = ResultCache(sys.argv[2])
workers = int(sys.argv[3])

def kamikaze(index, payloads):
    os.kill(os.getpid(), signal.SIGKILL)

run_sweep(spec, cache=cache, workers=workers, shard_size=1,
          on_commit=kamikaze)
raise SystemExit("unreachable: the sweep should have been killed")
"""


def _spec():
    return SweepSpec(
        name="t",
        kind="opensys",
        scenarios=("steady",),
        policies=("Equipartition", "Dyn-Aff"),
        seeds=(0, 1),
        n_processors=4,
        lite=True,
    )


def _bytes(result):
    return [canonical_json(o.payload) for o in result.outcomes]


def _kill_mid_sweep(cache_dir, workers):
    env = dict(os.environ, PYTHONPATH=SRC)
    # No pipes: orphaned pool workers inherit them and would keep a
    # capture-based wait from ever seeing EOF after the parent dies.
    proc = subprocess.run(
        [sys.executable, "-c", VICTIM,
         json.dumps(_spec().to_dict()), str(cache_dir), str(workers)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL


@pytest.mark.parametrize("workers", [1, 2])
def test_killed_then_resumed_matches_uninterrupted(tmp_path, workers):
    interrupted = ResultCache(str(tmp_path / "interrupted"))
    _kill_mid_sweep(interrupted.root, workers)

    status = sweep_status(_spec(), interrupted)
    assert status.n_cached >= 1, "kill landed before any cell was cached"
    if workers == 1:
        # Serial commits: exactly the first shard's cell survived.
        assert status.n_cached == 1

    resumed = run_sweep(_spec(), cache=interrupted, workers=workers)
    assert resumed.n_hits >= 1
    assert resumed.n_hits + resumed.n_computed == 4

    uninterrupted = run_sweep(
        _spec(), cache=ResultCache(str(tmp_path / "clean")), workers=workers
    )
    assert _bytes(resumed) == _bytes(uninterrupted)

    # And the caches themselves converged to the same result bytes.
    for outcome_a, outcome_b in zip(resumed.outcomes, uninterrupted.outcomes):
        path_a = os.path.join(interrupted.cell_dir(outcome_a.key), "result.json")
        path_b = os.path.join(
            ResultCache(str(tmp_path / "clean")).cell_dir(outcome_b.key),
            "result.json",
        )
        with open(path_a, "rb") as fh_a, open(path_b, "rb") as fh_b:
            assert fh_a.read() == fh_b.read()


def test_journal_survives_the_kill(tmp_path):
    cache = ResultCache(str(tmp_path))
    _kill_mid_sweep(cache.root, 1)
    journal = os.path.join(cache.root, "sweeps", "t", "journal.jsonl")
    with open(journal, encoding="utf-8") as fh:
        lines = [json.loads(line) for line in fh]
    # fsync-per-line: every line present is complete; the run_start and
    # the first committed cell made it, run_end never did.
    assert lines[0]["event"] == "run_start"
    assert any(line["event"] == "cell_done" for line in lines)
    assert all(line["event"] != "run_end" for line in lines)
