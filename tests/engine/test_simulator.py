"""Run-loop behavior of the discrete-event simulator."""

import pytest

from repro.engine.simulator import Simulator


class TestScheduling:
    def test_events_fire_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.schedule(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5, 4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_at_schedules_absolute(self):
        sim = Simulator()
        seen = []
        sim.at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestRunControl:
    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        end = sim.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert sim.now == 5.0

    def test_run_until_then_continue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        sim.run()
        assert fired == [1, 10]

    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired[0] == 1
        assert 2 not in fired

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_cancel_via_simulator(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(handle)
        sim.run()
        assert fired == []
        assert len(sim.queue) == 0

    def test_max_events_limits_run(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_fired_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_fired == 5


class TestTraceHooks:
    def test_hook_sees_time_and_label(self):
        sim = Simulator()
        trace = []
        sim.add_trace_hook(lambda t, label: trace.append((t, label)))
        sim.schedule(1.0, lambda: None, label="first")
        sim.schedule(2.0, lambda: None, label="second")
        sim.run()
        assert trace == [(1.0, "first"), (2.0, "second")]
