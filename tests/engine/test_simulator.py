"""Run-loop behavior of the discrete-event simulator."""

import pytest

from repro.engine.simulator import Simulator


class TestScheduling:
    def test_events_fire_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.schedule(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5, 4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_at_schedules_absolute(self):
        sim = Simulator()
        seen = []
        sim.at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestRunControl:
    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        end = sim.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert sim.now == 5.0

    def test_run_until_then_continue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        sim.run()
        assert fired == [1, 10]

    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired[0] == 1
        assert 2 not in fired

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_cancel_via_simulator(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(handle)
        sim.run()
        assert fired == []
        assert len(sim.queue) == 0

    def test_max_events_limits_run(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_cancel_after_fire_does_not_drop_live_events(self):
        """Regression: a late cancel of a fired event made ``bool(queue)``
        go False early, ending the run at t=1.5 with a live t=2.0 event
        still queued (and the next cancel could underflow the count)."""
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1.0))
        sim.schedule(1.5, lambda: (fired.append(1.5), sim.cancel(handle)))
        sim.schedule(2.0, lambda: fired.append(2.0))
        sim.run()
        assert fired == [1.0, 1.5, 2.0]
        assert sim.now == 2.0
        assert len(sim.queue) == 0

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.cancel(handle) is False
        assert handle.fired
        assert not handle.cancelled

    def test_max_events_with_until_does_not_jump_clock(self):
        """Regression: breaking on ``max_events`` with events still queued
        before ``until`` advanced the clock to ``until`` anyway, so the next
        run() raised "clock cannot run backwards"."""
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        end = sim.run(until=10.0, max_events=1)
        assert fired == [1.0]
        assert end == 1.0  # not jumped to until=10
        sim.run()  # must not raise ValueError
        assert fired == [1.0, 2.0, 3.0]

    def test_until_still_advances_clock_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=5.0, max_events=10) == 5.0

    def test_events_fired_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_fired == 5


class TestReset:
    def test_reset_restores_pristine_state(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        sim.reset()
        assert sim.now == 0.0
        assert sim.events_fired == 0
        assert len(sim.queue) == 0

    def test_reset_cancels_outstanding_handles(self):
        sim = Simulator()
        handle = sim.schedule(5.0, lambda: None)
        sim.reset()
        assert handle.cancelled

    def test_reset_allows_reuse_across_replications(self):
        sim = Simulator()
        totals = []
        for replication in range(3):
            sim.reset(seed=replication)
            fired = []
            sim.schedule(1.0, lambda: fired.append(sim.rng.stream("x").random()))
            sim.run()
            totals.append(fired[0])
        assert sim.events_fired == 1  # per-replication counter, not cumulative
        assert len(set(totals)) == 3  # distinct seeds give distinct draws

    def test_reset_is_deterministic_in_seed(self):
        draws = []
        sim = Simulator()
        for _ in range(2):
            sim.reset(seed=42)
            draws.append(sim.rng.stream("x").random())
        assert draws[0] == draws[1]

    def test_reset_inside_event_rejected(self):
        sim = Simulator()
        errors = []

        def resetter():
            try:
                sim.reset()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(1.0, resetter)
        sim.run()
        assert len(errors) == 1


class TestTraceHooks:
    def test_hook_sees_time_and_label(self):
        sim = Simulator()
        trace = []
        sim.add_trace_hook(lambda t, label: trace.append((t, label)))
        sim.schedule(1.0, lambda: None, label="first")
        sim.schedule(2.0, lambda: None, label="second")
        sim.run()
        assert trace == [(1.0, "first"), (2.0, "second")]
