"""Seeded random stream registry."""

from repro.engine.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(42)
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_give_different_sequences(self):
        registry = RngRegistry(42)
        a = [registry.stream("a").random() for _ in range(5)]
        b = [registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_reproduces_sequences(self):
        first = [RngRegistry(7).stream("x").random() for _ in range(5)]
        second = [RngRegistry(7).stream("x").random() for _ in range(5)]
        # Each comprehension re-creates the registry, so compare streams.
        a = RngRegistry(7).stream("x")
        b = RngRegistry(7).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]
        assert first == second

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x")
        b = RngRegistry(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_isolation(self):
        """Drawing from one stream does not perturb another."""
        registry = RngRegistry(0)
        reference = RngRegistry(0)
        registry.stream("noise").random()
        registry.stream("noise").random()
        assert registry.stream("signal").random() == reference.stream("signal").random()

    def test_spawn_is_deterministic(self):
        a = RngRegistry(3).spawn("rep1")
        b = RngRegistry(3).spawn("rep1")
        assert a.master_seed == b.master_seed

    def test_spawn_differs_by_salt(self):
        base = RngRegistry(3)
        assert base.spawn("rep1").master_seed != base.spawn("rep2").master_seed

    def test_spawn_differs_from_parent(self):
        base = RngRegistry(3)
        assert base.spawn("rep1").master_seed != base.master_seed
