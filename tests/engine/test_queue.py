"""Event queue ordering, cancellation, and determinism."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.events import Event
from repro.engine.queue import EventQueue


def _noop():
    pass


class TestPushPop:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, _noop, label="c")
        q.push(1.0, _noop, label="a")
        q.push(2.0, _noop, label="b")
        assert [q.pop().label for _ in range(3)] == ["a", "b", "c"]

    def test_same_time_pops_in_priority_order(self):
        q = EventQueue()
        q.push(1.0, _noop, priority=200, label="late")
        q.push(1.0, _noop, priority=10, label="early")
        assert q.pop().label == "early"
        assert q.pop().label == "late"

    def test_same_time_same_priority_is_fifo(self):
        q = EventQueue()
        for i in range(10):
            q.push(5.0, _noop, label=str(i))
        assert [q.pop().label for _ in range(10)] == [str(i) for i in range(10)]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_counts_live_events(self):
        q = EventQueue()
        q.push(1.0, _noop)
        q.push(2.0, _noop)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        q.push(1.0, _noop)
        assert q

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), _noop)


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        handle = q.push(1.0, _noop, label="cancelled")
        q.push(2.0, _noop, label="kept")
        handle.cancel()
        assert len(q) == 1
        assert q.pop().label == "kept"

    def test_cancel_is_idempotent_on_handle(self):
        q = EventQueue()
        handle = q.push(1.0, _noop)
        assert handle.cancel() is True
        assert handle.cancel() is False
        assert handle.cancelled
        assert len(q) == 0

    def test_cancel_after_fire_is_a_noop(self):
        """Regression: cancelling a fired event used to corrupt the count."""
        q = EventQueue()
        handle = q.push(1.0, _noop)
        q.push(2.0, _noop, label="still-live")
        fired = q.pop()
        assert fired.fired
        assert handle.cancel() is False
        assert not handle.cancelled
        assert handle.fired
        assert len(q) == 1  # the t=2.0 event must stay visible
        assert q.pop().label == "still-live"

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        handle = q.push(1.0, _noop)
        q.push(5.0, _noop)
        handle.cancel()
        assert q.peek_time() == 5.0

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_clear_empties_queue(self):
        q = EventQueue()
        q.push(1.0, _noop)
        q.push(2.0, _noop)
        q.clear()
        assert len(q) == 0
        assert q.peek_time() is None

    def test_clear_cancels_outstanding_handles(self):
        q = EventQueue()
        handle = q.push(1.0, _noop)
        q.clear()
        assert handle.cancelled
        assert handle.cancel() is False  # already cancelled; count stays 0
        assert len(q) == 0


class TestEventOrdering:
    def test_sort_key_total_order(self):
        a = Event(1.0, 100, 0, _noop)
        b = Event(1.0, 100, 1, _noop)
        assert a < b
        assert not b < a


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            st.integers(min_value=0, max_value=1000),
        ),
        min_size=1,
        max_size=200,
    )
)
def test_property_pop_order_is_sorted(items):
    """Popping always yields (time, priority) in non-decreasing order."""
    q = EventQueue()
    for time, priority in items:
        q.push(time, _noop, priority=priority)
    popped = [q.pop() for _ in range(len(items))]
    keys = [(e.time, e.priority) for e in popped]
    assert keys == sorted(keys)


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=2, max_size=50), st.data())
def test_property_cancellation_preserves_rest(times, data):
    """Cancelling any subset never perturbs the order of survivors."""
    q = EventQueue()
    handles = [q.push(t, _noop, label=str(i)) for i, t in enumerate(times)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times) - 1)
    )
    for index in to_cancel:
        handles[index].cancel()
    survivors = [i for i in range(len(times)) if i not in to_cancel]
    assert len(q) == len(survivors)
    expected = [str(i) for i in sorted(survivors, key=lambda i: (times[i], i))]
    assert [q.pop().label for _ in range(len(survivors))] == expected


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.floats(min_value=0, max_value=1000, allow_nan=False)),
            st.tuples(st.just("pop"), st.just(0.0)),
            st.tuples(st.just("cancel"), st.just(0.0)),
            st.tuples(st.just("cancel_fired"), st.just(0.0)),
        ),
        max_size=200,
    ),
    st.data(),
)
def test_property_live_count_matches_pending(ops, data):
    """len(queue) always equals the number of PENDING events, whatever the
    interleaving of pushes, pops, live cancels and (no-op) stale cancels."""
    q = EventQueue()
    handles = []
    for op, time in ops:
        if op == "push":
            handles.append(q.push(time, _noop))
        elif op == "pop" and q:
            q.pop()
        elif op == "cancel" and handles:
            index = data.draw(st.integers(min_value=0, max_value=len(handles) - 1))
            handles[index].cancel()
        elif op == "cancel_fired":
            fired = [h for h in handles if h.fired]
            if fired:
                index = data.draw(st.integers(min_value=0, max_value=len(fired) - 1))
                assert fired[index].cancel() is False
        assert len(q) == q.pending_events()
        assert bool(q) == (q.pending_events() > 0)
    assert len(q) == q.pending_events()
