"""Sample statistics and the replication stopping rule."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.engine.stats import (
    ConfidenceInterval,
    ReplicationDriver,
    SampleStats,
    mean_confidence_interval,
    t_critical_95,
)


class TestSampleStats:
    def test_mean_of_known_values(self):
        s = SampleStats()
        s.extend([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)

    def test_variance_matches_statistics_module(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        s = SampleStats()
        s.extend(values)
        assert s.variance == pytest.approx(statistics.variance(values))

    def test_min_max_tracking(self):
        s = SampleStats()
        s.extend([3.0, -1.0, 7.0])
        assert s.minimum == -1.0
        assert s.maximum == 7.0

    def test_empty_stats(self):
        s = SampleStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value_has_zero_variance(self):
        s = SampleStats()
        s.add(5.0)
        assert s.variance == 0.0

    def test_ci_shrinks_with_more_samples(self):
        small = SampleStats()
        small.extend([1.0, 2.0, 3.0])
        big = SampleStats()
        big.extend([1.0, 2.0, 3.0] * 20)
        assert big.confidence_interval().half_width < small.confidence_interval().half_width

    def test_ci_of_constant_samples_is_zero_width(self):
        s = SampleStats()
        s.extend([4.2] * 10)
        ci = s.confidence_interval()
        assert ci.half_width == pytest.approx(0.0)

    def test_ci_of_single_sample_is_infinite(self):
        s = SampleStats()
        s.add(1.0)
        assert math.isinf(s.confidence_interval().half_width)

    def test_only_95_percent_supported(self):
        s = SampleStats()
        s.extend([1.0, 2.0])
        with pytest.raises(ValueError):
            s.confidence_interval(confidence=0.99)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
    def test_property_welford_matches_statistics(self, values):
        s = SampleStats()
        s.extend(values)
        assert s.mean == pytest.approx(statistics.fmean(values), abs=1e-6, rel=1e-9)
        assert s.variance == pytest.approx(statistics.variance(values), abs=1e-6, rel=1e-6)


class TestMerge:
    def test_merge_empty_into_empty(self):
        a, b = SampleStats(), SampleStats()
        a.merge(b)
        assert a.n == 0

    def test_merge_into_empty_copies(self):
        a, b = SampleStats(), SampleStats()
        b.extend([1.0, 2.0, 3.0])
        a.merge(b)
        assert a.n == 3
        assert a.mean == pytest.approx(2.0)
        assert a.variance == pytest.approx(1.0)
        assert (a.minimum, a.maximum) == (1.0, 3.0)

    def test_merge_empty_is_noop(self):
        a, b = SampleStats(), SampleStats()
        a.extend([1.0, 2.0])
        a.merge(b)
        assert a.n == 2
        assert a.mean == pytest.approx(1.5)

    def test_merged_classmethod(self):
        parts = []
        for chunk in ([1.0, 2.0], [3.0], [4.0, 5.0, 6.0]):
            part = SampleStats()
            part.extend(chunk)
            parts.append(part)
        total = SampleStats.merged(parts)
        assert total.n == 6
        assert total.mean == pytest.approx(3.5)
        assert total.variance == pytest.approx(statistics.variance([1, 2, 3, 4, 5, 6]))

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=60),
        st.integers(min_value=0, max_value=60),
    )
    def test_property_merge_matches_serial_welford(self, values, cut):
        """Chan et al. pairwise merge of any split equals one serial pass."""
        cut = min(cut, len(values))
        left, right = SampleStats(), SampleStats()
        left.extend(values[:cut])
        right.extend(values[cut:])
        left.merge(right)
        serial = SampleStats()
        serial.extend(values)
        assert left.n == serial.n
        assert left.mean == pytest.approx(serial.mean, abs=1e-6, rel=1e-9)
        assert left.variance == pytest.approx(serial.variance, abs=1e-6, rel=1e-6)
        assert left.minimum == serial.minimum
        assert left.maximum == serial.maximum


class TestTCritical:
    def test_known_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(10) == pytest.approx(2.228)

    def test_large_dof_approaches_normal(self):
        assert t_critical_95(500) == pytest.approx(1.960)

    def test_interpolates_between_table_entries(self):
        assert 2.0 <= t_critical_95(45) <= 2.021

    def test_invalid_dof(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestConfidenceInterval:
    def test_bounds(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0, n=5)
        assert ci.low == 8.0
        assert ci.high == 12.0

    def test_relative_half_width(self):
        ci = ConfidenceInterval(mean=100.0, half_width=1.0, n=5)
        assert ci.relative_half_width() == pytest.approx(0.01)

    def test_relative_half_width_zero_mean(self):
        assert math.isinf(ConfidenceInterval(0.0, 1.0).relative_half_width())

    def test_helper_function(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3


class TestReplicationDriver:
    def test_stops_when_converged(self):
        calls = []

        def run_once(replication):
            calls.append(replication)
            return {"rt": 10.0}  # zero variance -> converges at min

        driver = ReplicationDriver(run_once, min_replications=3, max_replications=50)
        result = driver.run()
        assert len(calls) == 3
        assert result["rt"].mean == pytest.approx(10.0)

    def test_runs_to_cap_when_noisy(self):
        import random

        rng = random.Random(0)
        calls = []

        def run_once(replication):
            calls.append(replication)
            return {"rt": rng.uniform(0, 1000)}

        driver = ReplicationDriver(
            run_once, target_relative=1e-6, min_replications=2, max_replications=8
        )
        driver.run()
        assert len(calls) == 8

    def test_all_metrics_must_converge(self):
        values = iter([(1.0, 100.0), (1.0, 200.0), (1.0, 100.0), (1.0, 200.0),
                       (1.0, 100.0), (1.0, 200.0)])

        def run_once(replication):
            a, b = next(values)
            return {"stable": a, "noisy": b}

        driver = ReplicationDriver(run_once, min_replications=2, max_replications=6)
        result = driver.run()
        assert result["stable"].n == 6  # kept running because of "noisy"

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ReplicationDriver(lambda r: {}, min_replications=1)
        with pytest.raises(ValueError):
            ReplicationDriver(lambda r: {}, min_replications=5, max_replications=3)
        with pytest.raises(ValueError):
            ReplicationDriver(lambda r: {}, workers=0)

    def test_zero_mean_metric_converges_via_absolute_tolerance(self):
        """Regression: a mean-zero metric has infinite relative half-width,
        which used to stall convergence until max_replications every time."""
        calls = []

        def run_once(replication):
            calls.append(replication)
            # mean 0 with tiny float noise: relatively never converged
            return {"delta": 1e-12 if replication % 2 else -1e-12}

        driver = ReplicationDriver(run_once, min_replications=3, max_replications=50)
        result = driver.run()
        assert len(calls) < 50
        assert result["delta"].mean == pytest.approx(0.0, abs=1e-12)

    def test_absolute_tolerance_can_be_tightened(self):
        def run_once(replication):
            return {"delta": 0.5 if replication % 2 else -0.5}  # mean ~0, real noise

        driver = ReplicationDriver(
            run_once, min_replications=3, max_replications=10, target_absolute=0.0
        )
        result = driver.run()
        assert result["delta"].n == 10  # genuinely unconverged: runs to cap

    def test_absolute_tolerance_escape_hatch_is_adjustable(self):
        def run_once(replication):
            return {"delta": 0.5 if replication % 2 else -0.5}

        driver = ReplicationDriver(
            run_once, min_replications=3, max_replications=10, target_absolute=10.0
        )
        result = driver.run()
        assert result["delta"].n == 3  # wide tolerance: stops at the floor
