"""The process-pool replication executor and its serial equivalence."""

import pytest

from repro.engine.parallel import (
    BatchedConvergence,
    ConvergenceCriterion,
    map_replications,
    resolve_workers,
    run_replications,
)
from repro.engine.stats import ConfidenceInterval, ReplicationDriver, SampleStats


def _square(replication):
    """Module-level so it pickles into pool workers."""
    return replication * replication


def _metric(replication):
    """Deterministic pseudo-noisy metric keyed only by the replication index."""
    return {"rt": 100.0 + ((replication * 37) % 11) * 0.01}


class TestResolveWorkers:
    def test_none_means_serial(self):
        assert resolve_workers(None) == 1

    def test_positive_passes_through(self):
        assert resolve_workers(3) == 3

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestConvergenceCriterion:
    def test_relative_rule(self):
        criterion = ConvergenceCriterion(target_relative=0.01, target_absolute=0.0)
        assert criterion.interval_converged(ConfidenceInterval(100.0, 0.5))
        assert not criterion.interval_converged(ConfidenceInterval(100.0, 5.0))

    def test_absolute_escape_hatch_for_zero_mean(self):
        criterion = ConvergenceCriterion(target_relative=0.01, target_absolute=1e-6)
        assert criterion.interval_converged(ConfidenceInterval(0.0, 1e-7))
        assert not criterion.interval_converged(ConfidenceInterval(0.0, 1e-3))

    def test_negative_tolerances_rejected(self):
        with pytest.raises(ValueError):
            ConvergenceCriterion(target_relative=-0.1)
        with pytest.raises(ValueError):
            ConvergenceCriterion(target_absolute=-1.0)


class TestBatchedConvergence:
    def test_folds_prefixes_incrementally(self):
        check = BatchedConvergence(lambda m: m, ConvergenceCriterion(0.5, 0.0))
        committed = [{"rt": 10.0}, {"rt": 10.5}]
        check(committed)
        assert check.samples["rt"].n == 2
        committed.append({"rt": 9.5})
        check(committed)
        assert check.samples["rt"].n == 3  # only the new tail was folded

    def test_matches_serial_welford(self):
        values = [10.0, 12.0, 11.0, 10.5, 11.5]
        check = BatchedConvergence(lambda m: m, ConvergenceCriterion())
        committed = []
        for value in values:
            committed.append({"rt": value})
            check(committed)
        serial = SampleStats()
        serial.extend(values)
        assert check.samples["rt"].n == serial.n
        assert check.samples["rt"].mean == pytest.approx(serial.mean)
        assert check.samples["rt"].variance == pytest.approx(serial.variance)

    def test_empty_samples_never_converged(self):
        check = BatchedConvergence(lambda m: m, ConvergenceCriterion(1.0, 1.0))
        assert check([]) is False


class TestRunReplications:
    def test_serial_stops_at_first_converged_prefix(self):
        seen = []

        def run_once(replication):
            seen.append(replication)
            return replication

        results = run_replications(run_once, 2, 10, lambda c: len(c) >= 4)
        assert results == [0, 1, 2, 3]
        assert seen == [0, 1, 2, 3]

    def test_serial_runs_to_cap_when_never_converged(self):
        results = run_replications(lambda r: r, 2, 5, lambda c: False)
        assert results == [0, 1, 2, 3, 4]

    def test_parallel_commits_in_replication_order(self):
        results = run_replications(_square, 2, 8, lambda c: False, workers=3)
        assert results == [r * r for r in range(8)]

    def test_parallel_stops_at_same_prefix_as_serial(self):
        converged = lambda committed: len(committed) >= 3
        serial = run_replications(_square, 2, 10, converged)
        parallel = run_replications(_square, 2, 10, converged, workers=4)
        assert parallel == serial == [0, 1, 4]

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            run_replications(_square, 0, 5, lambda c: True)
        with pytest.raises(ValueError):
            run_replications(_square, 5, 3, lambda c: True)


class TestMapReplications:
    def test_serial(self):
        assert map_replications(_square, 4) == [0, 1, 4, 9]

    def test_parallel_equals_serial(self):
        assert map_replications(_square, 6, workers=3) == map_replications(_square, 6)

    def test_zero_count(self):
        assert map_replications(_square, 0, workers=2) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            map_replications(_square, -1)


class TestReplicationDriverParallel:
    def test_parallel_intervals_equal_serial(self):
        serial = ReplicationDriver(
            _metric, target_relative=0.001, min_replications=3, max_replications=12
        ).run()
        parallel = ReplicationDriver(
            _metric,
            target_relative=0.001,
            min_replications=3,
            max_replications=12,
            workers=2,
        ).run()
        assert serial.keys() == parallel.keys()
        assert serial["rt"].n == parallel["rt"].n
        assert serial["rt"].mean == parallel["rt"].mean
        assert serial["rt"].half_width == parallel["rt"].half_width
