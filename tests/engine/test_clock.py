"""Virtual clock invariants."""

import pytest

from repro.engine.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_allowed(self):
        clock = VirtualClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_backwards_raises(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.999)

    def test_reset_returns_to_start(self):
        clock = VirtualClock()
        clock.advance_to(100.0)
        clock.reset()
        assert clock.now == 0.0

    def test_repr_contains_time(self):
        assert "3.5" in repr(VirtualClock(3.5))
