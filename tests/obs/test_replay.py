"""Replay exactness and serial-vs-parallel metrics determinism."""

import pytest

from repro.core.policies import DYN_AFF, DYNAMIC, EQUIPARTITION
from repro.measure.runner import compare_policies, run_mix
from repro.obs import Tracer
from repro.obs.replay import replay, verify_replay


class TestReplayExactness:
    @pytest.mark.parametrize(
        "policy", (EQUIPARTITION, DYNAMIC, DYN_AFF), ids=lambda p: p.name
    )
    def test_trace_replays_to_exact_aggregates(self, policy):
        """ISSUE acceptance: replayed response times match bit-for-bit."""
        tracer = Tracer()
        result = run_mix(5, policy, seed=3, tracer=tracer)
        assert verify_replay(tracer.records, result) == []
        summary = replay(tracer.records)
        for name, metrics in result.jobs.items():
            assert summary.jobs[name].response_time == metrics.response_time
            assert summary.jobs[name].n_reallocations == metrics.n_reallocations
        assert summary.makespan == result.makespan

    def test_mean_response_time_matches(self):
        tracer = Tracer()
        result = run_mix(5, DYN_AFF, seed=0, tracer=tracer)
        summary = replay(tracer.records)
        assert summary.mean_response_time() == pytest.approx(
            result.mean_response_time(), rel=0, abs=0
        )

    def test_verify_replay_catches_missing_job(self):
        tracer = Tracer()
        result = run_mix(5, DYN_AFF, seed=0, tracer=tracer)
        from repro.obs.records import JobDeparture

        truncated = [
            r for r in tracer.records if not isinstance(r, JobDeparture)
        ]
        assert verify_replay(truncated, result)


class TestSerialParallelDifferential:
    """ISSUE satellite: workers=2 must produce identical metrics snapshots."""

    def run(self, workers):
        return compare_policies(
            5,
            (EQUIPARTITION, DYN_AFF),
            replications=4,
            base_seed=0,
            workers=workers,
            collect_metrics=True,
        )

    @pytest.mark.slow
    def test_metrics_identical_across_worker_counts(self):
        serial = self.run(workers=None)
        parallel = self.run(workers=2)
        assert set(serial.metrics) == {"Equipartition", "Dyn-Aff"}
        # Exact dict equality: counters, gauges, histograms, bit-for-bit.
        assert serial.metrics == parallel.metrics
        # And the statistical summaries agree too (PR 1's guarantee).
        for policy in serial.policies():
            for job in serial.job_names():
                assert (
                    serial.summaries[policy][job].response_time.mean
                    == parallel.summaries[policy][job].response_time.mean
                )
