"""Run telemetry: throttled heartbeats, collection, and non-interference.

The contract under test: emitters beat on the engine hook with bounded
per-event cost (wall clock consulted only every ``check_every`` events,
beats spaced ``min_interval_s`` apart), every cell always lands exactly
one terminal snapshot, the collector folds totals from finals only, and
— the load-bearing property — a matrix run with telemetry attached
commits results identical to one without.
"""

import pytest

from repro.core.policies import DYN_AFF, EQUIPARTITION
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    HeartbeatEmitter,
    TelemetryChannel,
    TelemetryCollector,
    TelemetrySnapshot,
    progress_line,
)
from repro.workloads.opensys import built_in_scenarios, run_matrix


def snap(label="cell", seq=0, wall_s=2.0, sim_s=4.0, events=1000,
         records=500, final=False):
    return TelemetrySnapshot(label=label, seq=seq, wall_s=wall_s,
                             sim_s=sim_s, events=events, records=records,
                             final=final)


class TestSnapshot:
    def test_rates(self):
        s = snap()
        assert s.events_per_s == 500.0
        assert s.records_per_s == 250.0
        assert s.sim_rate == 2.0

    def test_zero_wall_rates_are_zero(self):
        s = snap(wall_s=0.0)
        assert s.events_per_s == 0.0
        assert s.sim_rate == 0.0

    def test_to_dict_is_schema_tagged(self):
        d = snap(final=True).to_dict()
        assert d["schema"] == TELEMETRY_SCHEMA
        assert d["final"] is True
        assert d["events_per_s"] == 500.0

    def test_progress_line(self):
        line = progress_line(snap())
        assert line.startswith("[cell] running:")
        assert "done" in progress_line(snap(final=True))


class TestHeartbeatEmitter:
    def test_throttling_by_count_and_wall_clock(self):
        beats = []
        clock = iter(float(i) for i in range(1000))
        emitter = HeartbeatEmitter(
            beats.append, "cell", min_interval_s=2.0, check_every=10,
            clock=lambda: next(clock),
        )
        for i in range(100):
            emitter.engine_hook(now=float(i), label="e")
        # clock ticks once at init then once per modulo hit (every 10
        # events); with min_interval_s=2 every other check beats.
        assert 0 < len(beats) < 10
        assert all(not b.final for b in beats)
        assert [b.seq for b in beats] == list(range(len(beats)))

    def test_finish_is_terminal_and_idempotent(self):
        beats = []
        emitter = HeartbeatEmitter(beats.append, "cell", check_every=10**9)
        for _ in range(5):
            emitter.engine_hook(now=1.0, label="e")
        emitter.finish(sim_s=7.5)
        emitter.finish(sim_s=9.9)
        assert len(beats) == 1
        assert beats[0].final and beats[0].sim_s == 7.5
        assert beats[0].events == 5

    def test_records_fn_is_sampled_at_beat_time(self):
        beats = []
        emitter = HeartbeatEmitter(
            beats.append, "cell", records_fn=lambda: 42,
        )
        emitter.finish(sim_s=1.0)
        assert beats[0].records == 42

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            HeartbeatEmitter(lambda s: None, "x", min_interval_s=-1)
        with pytest.raises(ValueError):
            HeartbeatEmitter(lambda s: None, "x", check_every=0)


class TestTelemetryCollector:
    def test_totals_fold_finals_only(self):
        collector = TelemetryCollector()
        collector(snap(label="a", events=10, wall_s=1.0))
        collector(snap(label="a", seq=1, events=20, wall_s=2.0, final=True))
        collector(snap(label="b", events=5, wall_s=1.0, records=3, final=True))
        info = collector.summary()
        assert info["cells_seen"] == 2
        assert info["cells_finished"] == 2
        assert info["total_events"] == 25
        assert info["total_records"] == 503
        assert info["slowest_cell"] == "a"
        assert info["aggregate_events_per_s"] == pytest.approx(25 / 3.0)

    def test_render_summary(self):
        collector = TelemetryCollector()
        collector(snap(label="steady/Dyn-Aff/seed0", final=True))
        text = collector.render_summary()
        assert "cells: 1 seen, 1 finished" in text
        assert "slowest cell: steady/Dyn-Aff/seed0" in text

    def test_empty_summary(self):
        info = TelemetryCollector().summary()
        assert info["cells_seen"] == 0
        assert info["slowest_cell"] is None
        assert info["aggregate_events_per_s"] == 0.0


class TestTelemetryChannel:
    def test_serial_sink_is_direct(self):
        seen = []
        callback = seen.append
        with TelemetryChannel(workers=1, on_snapshot=callback) as channel:
            assert channel.sink is callback
            channel.sink(snap())
        assert len(seen) == 1

    def test_parallel_channel_drains_before_close_returns(self):
        seen = []
        with TelemetryChannel(workers=2, on_snapshot=seen.append) as channel:
            for i in range(20):
                channel.sink(snap(seq=i))
        assert len(seen) == 20
        assert [s.seq for s in seen] == list(range(20))


def _matrix(telemetry=None, workers=None, on_commit=None):
    built = built_in_scenarios(lite=True, n_processors=4)
    return run_matrix(
        [built["steady"]], [DYN_AFF, EQUIPARTITION], seeds=2,
        n_processors=4, workers=workers, telemetry=telemetry,
        on_commit=on_commit,
    )


class TestMatrixTelemetry:
    def test_observational_only(self):
        """Heartbeats attached or not, results are identical."""
        collector = TelemetryCollector()
        commits = []
        watched = _matrix(telemetry=collector,
                          on_commit=lambda i, r: commits.append(i))
        baseline = _matrix()
        assert set(watched.cells) == set(baseline.cells)
        for key in baseline.cells:
            assert watched.cells[key].mean_response == (
                baseline.cells[key].mean_response
            )
        assert commits == [0, 1]
        # 1 scenario x 2 policies x 2 seeds = 4 cells, each finished once
        info = collector.summary()
        assert info["cells_seen"] == 4
        assert info["cells_finished"] == 4
        assert set(collector.latest) == {
            "steady/Dyn-Aff/seed0", "steady/Dyn-Aff/seed1",
            "steady/Equipartition/seed0", "steady/Equipartition/seed1",
        }

    def test_parallel_matrix_delivers_all_finals(self):
        collector = TelemetryCollector()
        result = _matrix(telemetry=collector, workers=2)
        baseline = _matrix()
        for key in baseline.cells:
            assert result.cells[key].mean_response == (
                baseline.cells[key].mean_response
            )
        assert collector.summary()["cells_finished"] == 4
