"""Export formats: JSONL round trip, golden files, sorting, termination."""

import json
import pathlib

from repro.reporting.obs_export import (
    snapshot_to_csv,
    snapshot_to_json,
    trace_from_jsonl,
    trace_to_jsonl,
)
from tests.obs.golden_run import golden_run

GOLDEN = pathlib.Path(__file__).parent / "golden"


class TestJsonlTrace:
    def test_round_trip_preserves_every_record(self):
        records, _ = golden_run()
        assert trace_from_jsonl(trace_to_jsonl(records)) == list(records)

    def test_lines_are_key_sorted(self):
        records, _ = golden_run()
        for line in trace_to_jsonl(records).splitlines():
            keys = list(json.loads(line))
            assert keys == sorted(keys)

    def test_newline_terminated(self):
        records, _ = golden_run()
        assert trace_to_jsonl(records).endswith("\n")
        assert trace_to_jsonl([]) == ""

    def test_blank_lines_skipped_bad_json_rejected(self):
        records, _ = golden_run()
        text = trace_to_jsonl(records) + "\n"
        assert len(trace_from_jsonl(text)) == len(records)
        try:
            trace_from_jsonl("not json\n")
        except ValueError as exc:
            assert "line 1" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestSnapshotExports:
    def test_json_key_sorted_and_terminated(self):
        _, snapshot = golden_run()
        text = snapshot_to_json(snapshot)
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(json.dumps(snapshot, sort_keys=True))
        names = list(json.loads(text)["counters"])
        assert names == sorted(names)

    def test_csv_key_sorted_and_terminated(self):
        _, snapshot = golden_run()
        text = snapshot_to_csv(snapshot)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines[0] == "section,name,field,value"
        counter_names = [l.split(",")[1] for l in lines if l.startswith("counter,")]
        assert counter_names == sorted(counter_names)


class TestGoldenFiles:
    """Byte-for-byte stability of the exports on the canonical tiny run.

    If a change intentionally alters trace content or export format,
    regenerate with ``PYTHONPATH=src python tests/obs/golden_run.py`` and
    review the diff.
    """

    def test_trace_jsonl_matches_golden(self):
        records, _ = golden_run()
        assert trace_to_jsonl(records) == (GOLDEN / "trace.jsonl").read_text(
            encoding="utf-8"
        )

    def test_metrics_json_matches_golden(self):
        _, snapshot = golden_run()
        assert snapshot_to_json(snapshot) == (GOLDEN / "metrics.json").read_text(
            encoding="utf-8"
        )

    def test_metrics_csv_matches_golden(self):
        _, snapshot = golden_run()
        assert snapshot_to_csv(snapshot) == (GOLDEN / "metrics.csv").read_text(
            encoding="utf-8"
        )

    def test_golden_trace_is_diff_friendly(self):
        """One record per line, every line a flat JSON object."""
        for line in (GOLDEN / "trace.jsonl").read_text().splitlines():
            payload = json.loads(line)
            assert isinstance(payload, dict) and "kind" in payload
