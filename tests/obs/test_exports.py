"""Export formats: JSONL round trip, golden files, sorting, termination."""

import json
import pathlib

import pytest

from repro.reporting.obs_export import (
    snapshot_to_csv,
    snapshot_to_json,
    snapshots_to_csv,
    trace_from_jsonl,
    trace_to_jsonl,
)
from tests.obs.golden_run import golden_run

GOLDEN = pathlib.Path(__file__).parent / "golden"


class TestJsonlTrace:
    def test_round_trip_preserves_every_record(self):
        records, _ = golden_run()
        assert trace_from_jsonl(trace_to_jsonl(records)) == list(records)

    def test_lines_are_key_sorted(self):
        records, _ = golden_run()
        for line in trace_to_jsonl(records).splitlines():
            keys = list(json.loads(line))
            assert keys == sorted(keys)

    def test_newline_terminated(self):
        records, _ = golden_run()
        assert trace_to_jsonl(records).endswith("\n")
        assert trace_to_jsonl([]) == ""

    def test_blank_lines_skipped_bad_json_rejected(self):
        records, _ = golden_run()
        text = trace_to_jsonl(records) + "\n"
        assert len(trace_from_jsonl(text)) == len(records)
        try:
            trace_from_jsonl("not json\n")
        except ValueError as exc:
            assert "line 1" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestSnapshotExports:
    def test_json_key_sorted_and_terminated(self):
        _, snapshot = golden_run()
        text = snapshot_to_json(snapshot)
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(json.dumps(snapshot, sort_keys=True))
        names = list(json.loads(text)["counters"])
        assert names == sorted(names)

    def test_csv_key_sorted_and_terminated(self):
        _, snapshot = golden_run()
        text = snapshot_to_csv(snapshot)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines[0] == "section,name,field,value"
        counter_names = [l.split(",")[1] for l in lines if l.startswith("counter,")]
        assert counter_names == sorted(counter_names)


def _snapshot(counters=(), gauges=(), histograms=()):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for name, values in histograms:
        for value in values:
            registry.histogram(name).observe(value)
    return registry.snapshot()


class TestSnapshotsToCsv:
    """Regression: merged snapshots with disjoint keys share one header.

    The old per-snapshot export sorted each snapshot's own keys, so two
    cells touching different metrics (failures cells have
    ``cpu/failures``; steady cells don't) produced rows whose columns
    did not line up.  ``snapshots_to_csv`` must emit the union header
    and blank-fill the gaps.
    """

    def test_disjoint_key_sets_align_under_union_header(self):
        a = _snapshot(counters=[("cpu/failures", 3.0), ("jobs/arrived", 8.0)])
        b = _snapshot(counters=[("jobs/arrived", 9.0)],
                      gauges=[("run/makespan_s", 4.5)])
        text = snapshots_to_csv([a, b], labels=["failures", "steady"])
        lines = text.splitlines()
        assert lines[0] == (
            "label,counter:cpu/failures,counter:jobs/arrived,"
            "gauge:run/makespan_s"
        )
        assert lines[1] == "failures,3.0,8.0,"
        assert lines[2] == "steady,,9.0,4.5"
        # every row has exactly the header's column count
        width = lines[0].count(",")
        assert all(line.count(",") == width for line in lines)

    def test_histograms_flatten_to_stable_fields(self):
        a = _snapshot(histograms=[("jobs/response_s", (1.0, 2.0))])
        text = snapshots_to_csv([a])
        header = text.splitlines()[0].split(",")
        assert header == [
            "label",
            "histogram:jobs/response_s:count",
            "histogram:jobs/response_s:max",
            "histogram:jobs/response_s:mean",
            "histogram:jobs/response_s:min",
            "histogram:jobs/response_s:sum",
        ]

    def test_default_labels_are_indices(self):
        text = snapshots_to_csv([_snapshot(), _snapshot()])
        rows = text.splitlines()[1:]
        assert [row.split(",")[0] for row in rows] == ["0", "1"]

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            snapshots_to_csv([_snapshot()], labels=["a", "b"])

    def test_empty_input_is_header_only(self):
        assert snapshots_to_csv([]) == "label\n"


class TestGoldenFiles:
    """Byte-for-byte stability of the exports on the canonical tiny run.

    If a change intentionally alters trace content or export format,
    regenerate with ``PYTHONPATH=src python tests/obs/golden_run.py`` and
    review the diff.
    """

    def test_trace_jsonl_matches_golden(self):
        records, _ = golden_run()
        assert trace_to_jsonl(records) == (GOLDEN / "trace.jsonl").read_text(
            encoding="utf-8"
        )

    def test_metrics_json_matches_golden(self):
        _, snapshot = golden_run()
        assert snapshot_to_json(snapshot) == (GOLDEN / "metrics.json").read_text(
            encoding="utf-8"
        )

    def test_metrics_csv_matches_golden(self):
        _, snapshot = golden_run()
        assert snapshot_to_csv(snapshot) == (GOLDEN / "metrics.csv").read_text(
            encoding="utf-8"
        )

    def test_golden_trace_is_diff_friendly(self):
        """One record per line, every line a flat JSON object."""
        for line in (GOLDEN / "trace.jsonl").read_text().splitlines():
            payload = json.loads(line)
            assert isinstance(payload, dict) and "kind" in payload
