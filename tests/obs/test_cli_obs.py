"""The observability CLI surface: ``repro trace`` and ``--metrics``."""

import json

import pytest

from repro.cli import METRICS_MARKER, main
from repro.obs.invariants import assert_trace_ok
from repro.obs.metrics import validate_snapshot
from repro.reporting.obs_export import trace_from_jsonl


def snapshots_from_stdout(text):
    """Parse every metrics snapshot a command printed after its tables."""
    chunks = text.split(METRICS_MARKER)[1:]
    snapshots = []
    for chunk in chunks:
        body = chunk.split("\n", 1)[1]
        decoder = json.JSONDecoder()
        snapshot, _ = decoder.raw_decode(body)
        snapshots.append(snapshot)
    return snapshots


class TestTraceCommand:
    def test_trace_writes_verified_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--mix", "1", "--policy", "Dyn-Aff",
                     "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "invariant violations: 0" in stdout
        assert "replay check: exact" in stdout
        records = trace_from_jsonl(out.read_text(encoding="utf-8"))
        assert records, "trace file must not be empty"
        assert_trace_ok(records)  # the written artifact re-verifies cold

    def test_trace_metrics_flag_prints_valid_snapshot(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--mix", "1", "--out", str(out), "--metrics"]) == 0
        snapshots = snapshots_from_stdout(capsys.readouterr().out)
        assert len(snapshots) == 1
        validate_snapshot(snapshots[0])

    def test_trace_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["trace", "--policy", "NoSuchPolicy"])


class TestMetricsFlags:
    def test_table1_scale16_emits_schema_valid_snapshot(self, capsys):
        """ISSUE regression: ``repro table1 --scale 16 --metrics``."""
        assert main(["table1", "--scale", "16", "--metrics"]) == 0
        stdout = capsys.readouterr().out
        assert "P^NA" in stdout or "MATRIX" in stdout  # the table itself
        snapshots = snapshots_from_stdout(stdout)
        assert len(snapshots) == 1
        validate_snapshot(snapshots[0])
        counters = snapshots[0]["counters"]
        assert counters["penalty/switches"] > 0
        assert counters["penalty/cache_misses"] > 0

    def test_fig6_metrics_prints_one_snapshot_per_policy(self, capsys):
        assert main(["fig6", "--mix", "1", "-r", "2", "--metrics"]) == 0
        snapshots = snapshots_from_stdout(capsys.readouterr().out)
        assert len(snapshots) == 2  # Equipartition + Dyn-Aff-NoPri
        for snapshot in snapshots:
            validate_snapshot(snapshot)

    def test_table4_metrics_snapshot(self, capsys):
        assert main(["table4", "-r", "1", "--metrics"]) == 0
        snapshots = snapshots_from_stdout(capsys.readouterr().out)
        assert len(snapshots) == 1
        validate_snapshot(snapshots[0])

    def test_no_metrics_flag_prints_no_marker(self, capsys):
        assert main(["table4", "-r", "1"]) == 0
        assert METRICS_MARKER not in capsys.readouterr().out
