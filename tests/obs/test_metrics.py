"""Counters, gauges, histograms, snapshots, and deterministic merges."""

import pytest

from repro.obs.metrics import (
    SNAPSHOT_SCHEMA,
    Histogram,
    MetricsRegistry,
    validate_snapshot,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2.5)
        assert registry.counter("a").value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(-4.0)
        assert registry.gauge("g").value == -4.0

    def test_histogram_buckets_and_stats(self):
        h = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 2.0, 5.0, 100.0):
            h.observe(value)
        assert h.counts == [1, 2, 1]  # <=1, <=10, overflow
        assert h.count == 4
        assert h.sum == pytest.approx(107.5)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean() == pytest.approx(107.5 / 4)

    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestSnapshot:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7.0)
        registry.histogram("h").observe(0.005)
        return registry

    def test_snapshot_is_schema_tagged_and_valid(self):
        snapshot = self.make_registry().snapshot()
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        validate_snapshot(snapshot)  # must not raise

    def test_snapshot_sections_are_key_sorted(self):
        registry = MetricsRegistry()
        for name in ("z", "a", "m"):
            registry.counter(name).inc()
        assert list(registry.snapshot()["counters"]) == ["a", "m", "z"]

    def test_validate_rejects_wrong_schema(self):
        snapshot = self.make_registry().snapshot()
        snapshot["schema"] = "bogus/9"
        with pytest.raises(ValueError):
            validate_snapshot(snapshot)

    def test_validate_rejects_negative_counter(self):
        snapshot = self.make_registry().snapshot()
        snapshot["counters"]["c"] = -1
        with pytest.raises(ValueError):
            validate_snapshot(snapshot)

    def test_validate_rejects_inconsistent_histogram(self):
        snapshot = self.make_registry().snapshot()
        snapshot["histograms"]["h"]["count"] += 1
        with pytest.raises(ValueError):
            validate_snapshot(snapshot)


class TestMerge:
    def snap(self, c, g, h_value):
        registry = MetricsRegistry()
        registry.counter("c").inc(c)
        registry.gauge("g").set(g)
        registry.histogram("h").observe(h_value)
        return registry.snapshot()

    def test_merge_semantics(self):
        merged = MetricsRegistry.merged(
            [self.snap(1, 10.0, 0.5), self.snap(2, 20.0, 5.0)]
        )
        assert merged["counters"]["c"] == 3
        assert merged["gauges"]["g"] == 20.0  # last wins
        h = merged["histograms"]["h"]
        assert h["count"] == 2
        assert h["min"] == 0.5 and h["max"] == 5.0

    def test_merge_order_only_affects_gauges(self):
        a, b = self.snap(1, 10.0, 0.5), self.snap(2, 20.0, 5.0)
        ab = MetricsRegistry.merged([a, b])
        ba = MetricsRegistry.merged([b, a])
        assert ab["counters"] == ba["counters"]
        assert ab["histograms"] == ba["histograms"]
        assert ab["gauges"]["g"] == 20.0 and ba["gauges"]["g"] == 10.0

    def test_merge_rejects_incompatible_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        other = MetricsRegistry()
        other.histogram("h", bounds=(5.0,)).observe(1.5)
        with pytest.raises(ValueError):
            registry.merge_snapshot(other.snapshot())

    def test_merged_snapshot_validates(self):
        validate_snapshot(
            MetricsRegistry.merged([self.snap(1, 1.0, 1.0), self.snap(2, 2.0, 2.0)])
        )
