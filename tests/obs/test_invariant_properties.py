"""Property-style sweep: every policy honors the invariants on random mixes.

Each case runs a randomized workload (structure and sizes drawn from the
seed) under one of the five policies with full tracing, then replays the
record stream through the oracle.  Zero violations and exact aggregate
replay are required for every combination.
"""

import random

import pytest

from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
)
from repro.core.system import SchedulingSystem
from repro.obs import MetricsRegistry, Tracer
from repro.obs.invariants import check_trace
from repro.obs.replay import verify_replay
from tests.core.helpers import chain_job, flat_job, phased_job

ALL_POLICIES = (EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_DELAY, DYN_AFF_NOPRI)


def random_mix(seed: int):
    """A small random job mix: 2-3 jobs of random structure and size."""
    rng = random.Random(seed)
    jobs = []
    for i in range(rng.randint(2, 3)):
        name = f"J{i}"
        shape = rng.choice(("flat", "chain", "phased"))
        workers = rng.randint(2, 4)
        service = rng.uniform(0.1, 0.6)
        if shape == "flat":
            jobs.append(flat_job(name, rng.randint(4, 10), service, workers))
        elif shape == "chain":
            jobs.append(chain_job(name, rng.randint(3, 6), service))
        else:
            jobs.append(phased_job(name, rng.randint(2, 4), rng.randint(3, 6),
                                   service, workers))
    return jobs


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
@pytest.mark.parametrize("mix_seed", [11, 22, 33])
@pytest.mark.parametrize("run_seed", [0, 1, 2])
def test_policy_trace_honors_all_invariants(policy, mix_seed, run_seed):
    tracer = Tracer()
    metrics = MetricsRegistry()
    system = SchedulingSystem(
        random_mix(mix_seed), policy, n_processors=8, seed=run_seed,
        tracer=tracer, metrics=metrics,
    )
    result = system.run()

    found = check_trace(tracer.records)
    assert found == [], f"{policy.name} mix={mix_seed} seed={run_seed}: {found[:3]}"

    replay_errors = verify_replay(tracer.records, result)
    assert replay_errors == [], replay_errors[:3]

    # The metrics agree with the aggregates, not just the trace.
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["jobs/completed"] == len(result.jobs)
    total_reallocs = sum(m.n_reallocations for m in result.jobs.values())
    assert snapshot["counters"]["dispatch/reallocations"] == total_reallocs
