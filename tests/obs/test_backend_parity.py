"""Observability parity across cache backends (satellite of the
multi-backend core).

A trace captured with the numpy backend must be indistinguishable from
the scalar reference: zero invariant violations, exact response-time
reconstruction under replay, and ``repro diff`` of scalar-vs-numpy
traces of the *same* run reporting zero divergence.  Because the
backends produce identical hits on identical chunkings, every timestamp
and record must be bit-identical — which these tests assert.
"""

import pytest

from repro.apps import MATRIX, MVA
from repro.apps.gravity import GravityParams, GravityPhase, GravitySpec
from repro.apps.mva import MvaParams, MvaSpec
from repro.core.policies import DYN_AFF
from repro.core.system import SchedulingSystem
from repro.engine.rng import RngRegistry
from repro.machine.backends import numpy_available
from repro.machine.cache_oracle import SimulatedCacheFootprint
from repro.measure.penalty import PenaltyExperiment
from repro.obs import Tracer
from repro.obs.analysis import diff_traces
from repro.obs.invariants import check_trace
from repro.obs.records import record_to_dict
from repro.obs.replay import verify_replay

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="backend parity needs the numpy backend"
)

#: Scaled-down applications so the simulated-cache runs stay fast
#: (mirrors tests/core/test_oracle_validation.py).
MINI_MVA = MvaSpec(MvaParams(customers=10, stations=10, mean_service_s=0.12))
MINI_GRAVITY = GravitySpec(
    GravityParams(
        n_timesteps=6,
        sequential_service_s=0.15,
        phases=(
            GravityPhase("partition", n_threads=16, mean_service_s=0.03),
            GravityPhase("force", n_threads=24, mean_service_s=0.025),
            GravityPhase("update", n_threads=24, mean_service_s=0.025),
            GravityPhase("collect", n_threads=12, mean_service_s=0.02),
        ),
    )
)


def run_traced(backend, seed=3):
    """One scheduling run against the simulated-cache oracle on ``backend``."""
    rng = RngRegistry(seed)
    jobs = [
        MINI_MVA.make_job(rng.stream("mva"), n_processors=8),
        MINI_GRAVITY.make_job(rng.stream("grav"), n_processors=8),
    ]
    oracle = SimulatedCacheFootprint(
        {"MVA": MINI_MVA.reference, "GRAVITY": MINI_GRAVITY.reference},
        scale=64,
        seed=seed,
        backend=backend,
    )
    tracer = Tracer()
    result = SchedulingSystem(
        jobs,
        DYN_AFF,
        n_processors=8,
        seed=seed,
        rng=rng.spawn("system"),
        footprint_model=oracle,
        tracer=tracer,
    ).run()
    return tracer.records, result


@pytest.fixture(scope="module")
def traced_pair():
    scalar = run_traced("scalar")
    vector = run_traced("numpy")
    return scalar, vector


class TestSchedulingTraceParity:
    def test_numpy_trace_passes_invariants(self, traced_pair):
        _, (records, _) = traced_pair
        assert check_trace(records) == []

    def test_numpy_trace_replays_exactly(self, traced_pair):
        _, (records, result) = traced_pair
        assert verify_replay(records, result) == []

    def test_diff_reports_zero_divergence(self, traced_pair):
        (rec_a, _), (rec_b, _) = traced_pair
        diff = diff_traces(rec_a, rec_b, label_a="scalar", label_b="numpy")
        assert diff.identical
        assert diff.first_divergence is None
        assert diff.first_divergent_decision is None
        assert diff.mean_response_delta == 0.0
        assert diff.makespan_delta == 0.0
        for deltas in diff.job_deltas.values():
            assert deltas["response_time_delta"] == 0.0

    def test_response_times_bit_identical(self, traced_pair):
        (_, res_a), (_, res_b) = traced_pair
        assert set(res_a.jobs) == set(res_b.jobs)
        for name in res_a.jobs:
            assert res_a.jobs[name].response_time == res_b.jobs[name].response_time


class TestPenaltyTraceParity:
    """Cache-level records (CacheBatch / CacheFlush) compared directly."""

    @staticmethod
    def _penalty_records(backend):
        tracer = Tracer()
        exp = PenaltyExperiment(
            scale=64,
            n_switches_target=8,
            min_run_s=0.3,
            tracer=tracer,
            backend=backend,
        )
        exp.measure(MVA, 0.05, partners=(MATRIX,))
        return tracer.records

    def test_cache_batch_streams_bit_identical(self):
        rec_a = self._penalty_records("scalar")
        rec_b = self._penalty_records("numpy")
        assert len(rec_a) > 0
        assert len(rec_a) == len(rec_b)
        for a, b in zip(rec_a, rec_b):
            assert record_to_dict(a) == record_to_dict(b)
