"""Columnar trace store: round-trip fidelity, indexing, and integrity.

The store's contract is threefold: (1) JSONL <-> columnar conversion is
lossless down to the byte, for any record stream the tracer can emit —
including every open-system disruption kind; (2) the footer index lets a
reader pull one record kind or time range without decoding everything;
(3) any corruption — a flipped byte, a truncated tail — is refused
loudly, never returned as quietly wrong data.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import DYN_AFF
from repro.core.system import SchedulingSystem
from repro.obs import Tracer
from repro.obs.records import (
    RECORD_KINDS,
    AllocationChange,
    CacheBatch,
    CacheFlush,
    CpuFailure,
    CpuRecovery,
    Dispatch,
    EngineEvent,
    JobArrival,
    JobCancelled,
    JobDeparture,
    PolicyDecision,
    RunConfig,
    RunEnd,
    Undispatch,
    record_to_dict,
)
from repro.obs.store import (
    ColumnarFormatError,
    columnar_to_jsonl,
    iter_columnar,
    iter_jsonl_records,
    jsonl_to_columnar,
    read_columnar,
    read_footer,
    sniff_format,
    write_columnar,
)
from repro.reporting.obs_export import trace_to_jsonl
from tests.core.helpers import flat_job

# --- hypothesis strategies: one per record kind, all finite-JSON-safe ---

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)
names = st.text(alphabet="ABCJob0123456789_", min_size=1, max_size=8)
cpus = st.integers(min_value=0, max_value=63)
counts = st.integers(min_value=0, max_value=10**6)

record_strategies = (
    st.builds(RunConfig, time=times, policy=names, n_processors=cpus,
              seed=counts, jobs=st.tuples(names, names), machine=names,
              cache_lines=counts, miss_time_s=finite,
              context_switch_s=finite, respect_priority=st.booleans(),
              use_affinity=st.booleans()),
    st.builds(JobArrival, time=times, job=names),
    st.builds(JobDeparture, time=times, job=names, response_time=finite,
              n_reallocations=counts),
    st.builds(JobCancelled, time=times, job=names, work_done=finite),
    st.builds(CpuFailure, time=times, cpu=cpus),
    st.builds(CpuRecovery, time=times, cpu=cpus),
    st.builds(AllocationChange, time=times, cpu=cpus,
              job=st.none() | names, prev=st.none() | names),
    st.builds(Dispatch, time=times, cpu=cpus, job=names, worker=counts,
              affine=st.booleans(), cheap=st.booleans(), penalty_s=finite,
              switch_s=finite, ready_depth=counts),
    st.builds(Undispatch, time=times, cpu=cpus, job=names, worker=counts,
              reason=st.sampled_from(("preempt", "idle", "done"))),
    st.builds(PolicyDecision, time=times,
              rule=st.sampled_from(("A.1", "D.1", "D.2", "D.3", "EQ")),
              job=st.none() | names, cpu=st.none() | cpus, reason=names,
              credits=st.dictionaries(names, finite, max_size=3),
              allocations=st.dictionaries(names, cpus, max_size=3)),
    st.builds(CacheFlush, time=times, cpu=cpus, lines=counts),
    st.builds(CacheBatch, time=times, cpu=cpus, owner=names, n=counts,
              hits=counts),
    st.builds(EngineEvent, time=times, label=names),
    st.builds(RunEnd, time=times, makespan=finite, events_fired=counts),
)
any_record = st.one_of(*record_strategies)
record_streams = st.lists(any_record, min_size=0, max_size=60)


@settings(max_examples=60, deadline=None)
@given(records=record_streams, chunk=st.integers(min_value=1, max_value=16))
def test_round_trip_any_record_stream(tmp_path_factory, records, chunk):
    """Arbitrary interleavings of every record kind survive the store."""
    path = tmp_path_factory.mktemp("col") / "t.col"
    write_columnar(str(path), records, chunk_records=chunk)
    back = read_columnar(str(path))
    assert back == records


@settings(max_examples=30, deadline=None)
@given(records=record_streams)
def test_jsonl_round_trip_is_byte_identical(tmp_path_factory, records):
    """JSONL -> columnar -> JSONL reproduces the original bytes exactly."""
    base = tmp_path_factory.mktemp("rt")
    jsonl, col, back = base / "a.jsonl", base / "a.col", base / "b.jsonl"
    jsonl.write_text(trace_to_jsonl(records), encoding="utf-8")
    jsonl_to_columnar(str(jsonl), str(col), chunk_records=7)
    columnar_to_jsonl(str(col), str(back))
    assert back.read_bytes() == jsonl.read_bytes()


def _real_trace():
    tracer = Tracer()
    system = SchedulingSystem(
        [flat_job("A", 6, 0.2, 3), flat_job("B", 6, 0.2, 3)],
        DYN_AFF, n_processors=4, seed=0, tracer=tracer,
    )
    system.run()
    return tracer.records


@pytest.fixture(scope="module")
def real_trace():
    return _real_trace()


def test_every_kind_has_a_strategy():
    covered = {
        cls.kind for cls in (
            RunConfig, JobArrival, JobDeparture, JobCancelled, CpuFailure,
            CpuRecovery, AllocationChange, Dispatch, Undispatch,
            PolicyDecision, CacheFlush, CacheBatch, EngineEvent, RunEnd,
        )
    }
    assert covered == set(RECORD_KINDS)
    assert len(record_strategies) == len(RECORD_KINDS)


def test_footer_index_and_kind_filter(tmp_path, real_trace):
    path = tmp_path / "t.col"
    write_columnar(str(path), real_trace, chunk_records=256)
    footer = read_footer(str(path))
    assert footer.n_records == len(real_trace)
    assert sum(footer.kind_counts.values()) == len(real_trace)
    for kind, count in footer.kind_counts.items():
        got = list(iter_columnar(str(path), kinds={kind}))
        assert len(got) == count
        assert all(r.kind == kind for r in got)


def test_time_range_filter(tmp_path, real_trace):
    path = tmp_path / "t.col"
    write_columnar(str(path), real_trace, chunk_records=128)
    t_lo = real_trace[len(real_trace) // 3].time
    t_hi = real_trace[2 * len(real_trace) // 3].time
    got = list(iter_columnar(str(path), time_range=(t_lo, t_hi)))
    want = [r for r in real_trace if t_lo <= r.time <= t_hi]
    assert got == want


def test_sniff_format(tmp_path, real_trace):
    col, jsonl = tmp_path / "t.col", tmp_path / "t.jsonl"
    write_columnar(str(col), real_trace)
    jsonl.write_text(trace_to_jsonl(real_trace), encoding="utf-8")
    assert sniff_format(str(col)) == "columnar"
    assert sniff_format(str(jsonl)) == "jsonl"


def test_flipped_byte_fails_digest(tmp_path, real_trace):
    """Every corrupted body byte must be caught by the content digest."""
    path = tmp_path / "t.col"
    write_columnar(str(path), real_trace, chunk_records=512)
    blob = bytearray(path.read_bytes())
    # Flip bytes at seeded offsets through the chunk region (skip the
    # 8-byte magic so we exercise the digest, not the magic check).
    for offset in (9, len(blob) // 3, len(blob) // 2, len(blob) - 60):
        corrupt = bytearray(blob)
        corrupt[offset] ^= 0x40
        bad = tmp_path / f"bad{offset}.col"
        bad.write_bytes(bytes(corrupt))
        with pytest.raises(ColumnarFormatError):
            list(iter_columnar(str(bad)))


def test_truncated_footer_is_refused(tmp_path, real_trace):
    path = tmp_path / "t.col"
    write_columnar(str(path), real_trace)
    blob = path.read_bytes()
    for cut in (1, 20, 48, len(blob) // 2):
        bad = tmp_path / f"cut{cut}.col"
        bad.write_bytes(blob[:-cut])
        with pytest.raises(ColumnarFormatError):
            read_footer(str(bad))
        with pytest.raises(ColumnarFormatError):
            list(iter_columnar(str(bad)))


def test_not_a_columnar_file_is_refused(tmp_path):
    bad = tmp_path / "nope.col"
    bad.write_bytes(b"this is not a columnar trace at all, not even close")
    with pytest.raises(ColumnarFormatError):
        read_footer(str(bad))


def test_jsonl_truncation_refused(tmp_path, real_trace):
    """A JSONL file whose final line lost its newline is refused."""
    path = tmp_path / "t.jsonl"
    text = trace_to_jsonl(real_trace)
    path.write_text(text[:-1], encoding="utf-8")  # drop trailing newline
    with pytest.raises(ValueError, match="truncated"):
        list(iter_jsonl_records(str(path)))


def test_jsonl_stream_matches_batch(tmp_path, real_trace):
    path = tmp_path / "t.jsonl"
    path.write_text(trace_to_jsonl(real_trace), encoding="utf-8")
    assert list(iter_jsonl_records(str(path))) == list(real_trace)


def test_compression_ratio_on_real_trace(tmp_path):
    """The acceptance gate: columnar must be <= 25% of JSONL bytes.

    Uses a run big enough (a few thousand records) for the chunked
    compression to amortize, matching the CI sample trace's scale.
    """
    tracer = Tracer()
    system = SchedulingSystem(
        [flat_job(f"J{i}", 24, 0.2, 4) for i in range(4)],
        DYN_AFF, n_processors=8, seed=0, tracer=tracer,
    )
    system.run()
    jsonl, col = tmp_path / "t.jsonl", tmp_path / "t.col"
    jsonl.write_text(trace_to_jsonl(tracer.records), encoding="utf-8")
    jsonl_to_columnar(str(jsonl), str(col))
    ratio = col.stat().st_size / jsonl.stat().st_size
    assert ratio <= 0.25, f"columnar/jsonl ratio {ratio:.3f} exceeds 0.25"


def test_record_dicts_survive_canonical_json(real_trace):
    """Sanity: every live record is JSON-canonicalizable (the store's
    chunk payloads depend on it)."""
    for record in real_trace[:200]:
        payload = json.dumps(record_to_dict(record), sort_keys=True)
        assert json.loads(payload)["kind"] == record.kind
