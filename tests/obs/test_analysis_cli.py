"""The analysis CLI surface: ``repro analyze``, ``repro diff``, ``--profile``.

Also the satellite acceptance: truncated or mid-record artifacts are
refused with a clear error and a non-zero exit, at both the library
(``validate_stream``/``load_trace``) and CLI layers.
"""

import json

import pytest

from repro.cli import ANALYSIS_MARKER, PROFILE_MARKER, main
from repro.obs.analysis import DIFF_SCHEMA, INTERVALS_SCHEMA
from repro.reporting.obs_export import (
    ATTRIBUTION_SCHEMA,
    TraceStreamError,
    load_trace,
    trace_from_jsonl,
    validate_stream,
)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "dynaff.jsonl"
    assert main(["trace", "--mix", "1", "--policy", "Dyn-Aff",
                 "--out", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def equi_trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "equi.jsonl"
    assert main(["trace", "--mix", "1", "--policy", "Equipartition",
                 "--out", str(path)]) == 0
    return path


class TestAnalyzeCommand:
    def test_analyze_prints_attribution_and_conservation(self, trace_path, capsys):
        assert main(["analyze", str(trace_path)]) == 0
        stdout = capsys.readouterr().out
        assert "time attribution" in stdout
        assert "per-job decomposition" in stdout
        assert "conservation: exact" in stdout
        assert "interval series" in stdout

    def test_analyze_timeline_flag(self, trace_path, capsys):
        assert main(["analyze", str(trace_path), "--timeline",
                     "--timeline-width", "60"]) == 0
        stdout = capsys.readouterr().out
        assert "cpu timeline" in stdout
        assert "legend:" in stdout
        # One row per processor, each exactly 60 columns wide.
        rows = [line for line in stdout.splitlines()
                if line.startswith("cpu ") and line.endswith("|")]
        assert len(rows) == 16
        for row in rows:
            assert len(row.split("|")[1]) == 60

    def test_analyze_writes_schema_tagged_outputs(self, trace_path, tmp_path, capsys):
        json_out = tmp_path / "attr.json"
        csv_out = tmp_path / "attr.csv"
        ivals_json = tmp_path / "intervals.json"
        ivals_csv = tmp_path / "intervals.csv"
        assert main([
            "analyze", str(trace_path),
            "--json", str(json_out), "--csv", str(csv_out),
            "--intervals-json", str(ivals_json),
            "--intervals-csv", str(ivals_csv),
        ]) == 0
        capsys.readouterr()
        attribution = json.loads(json_out.read_text(encoding="utf-8"))
        assert attribution["schema"] == ATTRIBUTION_SCHEMA
        assert attribution["policy"] == "Dyn-Aff"
        intervals = json.loads(ivals_json.read_text(encoding="utf-8"))
        assert intervals["schema"] == INTERVALS_SCHEMA
        assert csv_out.read_text(encoding="utf-8").startswith(
            "view,entity,bucket,seconds"
        )
        assert ivals_csv.read_text(encoding="utf-8").startswith("index,start,end")

    def test_analyze_custom_window(self, trace_path, capsys):
        assert main(["analyze", str(trace_path), "--window", "0.5"]) == 0
        assert "window=0.5s" in capsys.readouterr().out


class TestTruncationRefusal:
    """Satellite (a): corrupt artifacts fail loudly, never analyze."""

    def test_truncated_file_exits_nonzero_with_clear_error(
        self, trace_path, tmp_path, capsys
    ):
        text = trace_path.read_text(encoding="utf-8")
        bad = tmp_path / "truncated.jsonl"
        bad.write_text(text[:-30], encoding="utf-8")  # cut mid-record
        with pytest.raises(SystemExit) as exc_info:
            main(["analyze", str(bad)])
        assert exc_info.value.code == 1
        err = capsys.readouterr().err
        assert "truncated" in err
        assert str(bad) in err

    def test_missing_run_end_exits_nonzero(self, trace_path, tmp_path, capsys):
        lines = trace_path.read_text(encoding="utf-8").splitlines()
        bad = tmp_path / "no-end.jsonl"
        bad.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        with pytest.raises(SystemExit) as exc_info:
            main(["analyze", str(bad)])
        assert exc_info.value.code == 1
        assert "run_end" in capsys.readouterr().err

    def test_diff_refuses_corrupt_inputs_too(self, trace_path, tmp_path, capsys):
        bad = tmp_path / "garbage.jsonl"
        bad.write_text('{"kind": "dispatch", "time": not-json}\n', encoding="utf-8")
        with pytest.raises(SystemExit) as exc_info:
            main(["diff", str(trace_path), str(bad)])
        assert exc_info.value.code == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_load_trace_names_missing_file(self, tmp_path):
        with pytest.raises(TraceStreamError, match="cannot read trace"):
            load_trace(str(tmp_path / "nope.jsonl"))

    def test_validate_stream_rejects_bad_framing(self, trace_path):
        records = load_trace(str(trace_path))
        with pytest.raises(TraceStreamError, match="run_config"):
            validate_stream(records[1:])
        with pytest.raises(TraceStreamError, match="cut off"):
            validate_stream(records[:-1])
        with pytest.raises(TraceStreamError, match="second run_config"):
            validate_stream(records[:-1] + [records[0], records[-1]])
        with pytest.raises(TraceStreamError, match="empty"):
            validate_stream([])

    def test_trace_from_jsonl_rejects_missing_final_newline(self, trace_path):
        text = trace_path.read_text(encoding="utf-8")
        with pytest.raises(TraceStreamError, match="truncated"):
            trace_from_jsonl(text.rstrip("\n"))


class TestDiffCommand:
    def test_self_diff_reports_identical(self, trace_path, capsys):
        assert main(["diff", str(trace_path), str(trace_path)]) == 0
        stdout = capsys.readouterr().out
        assert "identical: True" in stdout
        assert "record-for-record identical" in stdout

    def test_policy_diff_reports_divergence_and_buckets(
        self, equi_trace_path, trace_path, tmp_path, capsys
    ):
        json_out = tmp_path / "diff.json"
        assert main([
            "diff", str(equi_trace_path), str(trace_path),
            "--label-a", "Equi", "--label-b", "Dyn-Aff",
            "--json", str(json_out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "identical: False" in stdout
        assert "mean response-time delta" in stdout
        assert "machine totals" in stdout
        assert "first divergent record" in stdout
        payload = json.loads(json_out.read_text(encoding="utf-8"))
        assert payload["schema"] == DIFF_SCHEMA
        assert payload["label_a"] == "Equi"
        assert payload["first_divergence"] is not None


class TestProfileFlag:
    def test_table1_profile_prints_span_table(self, capsys):
        assert main(["table1", "--scale", "16", "--profile"]) == 0
        stdout = capsys.readouterr().out
        assert PROFILE_MARKER in stdout
        assert "simulator self-profile" in stdout
        assert "cache/access_batch" in stdout
        assert "penalty/" in stdout

    def test_fig6_analyze_prints_attribution(self, capsys):
        assert main(["fig6", "--replications", "1", "--analyze",
                     "--profile"]) == 0
        stdout = capsys.readouterr().out
        assert ANALYSIS_MARKER in stdout
        assert "conservation: exact" in stdout
        assert PROFILE_MARKER in stdout
        assert "engine/run" in stdout
