"""Typed trace records: construction, serialization, round-tripping."""

import pytest

from repro.obs.records import (
    AllocationChange,
    CacheBatch,
    CacheFlush,
    CpuFailure,
    CpuRecovery,
    Dispatch,
    EngineEvent,
    JobArrival,
    JobCancelled,
    JobDeparture,
    PolicyDecision,
    RECORD_KINDS,
    RunConfig,
    RunEnd,
    Undispatch,
    record_from_dict,
    record_to_dict,
)

SAMPLES = [
    RunConfig(
        time=0.0, policy="Dyn-Aff", n_processors=4, seed=7,
        jobs=("A", "B"), machine="test", cache_lines=64,
        miss_time_s=1e-6, context_switch_s=1e-4,
        respect_priority=True, use_affinity=True,
    ),
    JobArrival(time=0.0, job="A"),
    JobDeparture(time=3.5, job="A", response_time=3.5, n_reallocations=2),
    JobCancelled(time=2.0, job="B", work_done=1.25),
    CpuFailure(time=4.0, cpu=3),
    CpuRecovery(time=5.0, cpu=3),
    AllocationChange(time=1.0, cpu=2, job="A", prev=None),
    Dispatch(
        time=1.0, cpu=2, job="A", worker=0, affine=True, cheap=False,
        penalty_s=1e-5, switch_s=1e-4, ready_depth=3,
    ),
    Undispatch(time=2.0, cpu=2, job="A", worker=0, reason="preempt"),
    PolicyDecision(
        time=1.0, rule="priority", job="A", cpu=2, reason="test",
        credits={"A": 1.0, "B": -0.5}, allocations={"A": 1, "B": 3},
    ),
    CacheFlush(time=2.0, cpu=2, lines=64),
    CacheBatch(time=2.5, cpu=2, owner="('A', 0)", n=256, hits=200),
    EngineEvent(time=0.5, label="arrival/A"),
    RunEnd(time=9.0, makespan=9.0, events_fired=123),
]


class TestRoundTrip:
    @pytest.mark.parametrize("record", SAMPLES, ids=lambda r: r.kind)
    def test_dict_round_trip(self, record):
        payload = record_to_dict(record)
        assert payload["kind"] == record.kind
        assert record_from_dict(payload) == record

    def test_every_kind_is_registered(self):
        kinds = {record.kind for record in SAMPLES}
        assert kinds == set(RECORD_KINDS)

    def test_records_are_immutable(self):
        with pytest.raises(Exception):
            SAMPLES[1].time = 99.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"kind": "no_such_record", "time": 0.0})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"time": 0.0})

    def test_malformed_fields_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"kind": "job_arrival", "time": 0.0, "bogus": 1})

    def test_float_times_survive_exactly(self):
        """JSON floats round-trip bit-exactly (repr serialization)."""
        time = 74.45978109507048
        record = JobArrival(time=time, job="A")
        assert record_from_dict(record_to_dict(record)).time == time
