"""Streaming pipeline differential: single-pass == batch, bit for bit.

The streaming invariant checker and metrics aggregator must be
indistinguishable from their batch counterparts: same violation lists,
and metric snapshots that are *bit-identical* (JSON-equal with exact
floats) to the live run's registry.  The differential runs over the
full open-system oracle matrix — 5 policies x 4 scenarios x 3 seeds —
so every disruption kind (cancellations, failures, recoveries, flushes)
flows through the streaming path under test.
"""

import json

import pytest

from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
)
from repro.core.system import SchedulingSystem
from repro.obs import MetricsRegistry, Tracer
from repro.obs.invariants import StreamingChecker, check_trace
from repro.obs.records import CacheBatch, EngineEvent, JobCancelled
from repro.obs.store import ColumnarTraceWriter, read_columnar
from repro.obs.streaming import StreamingMetrics, StreamingTracer, derive_metrics
from repro.workloads.opensys import built_in_scenarios, run_scenario
from tests.core.helpers import flat_job

ALL_POLICIES = [EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_DELAY, DYN_AFF_NOPRI]
SCENARIO_NAMES = ("steady", "bursty", "cancellations", "failures")
SEEDS = (0, 1, 2)
P = 8


def _traced_run(scenario_name, policy, seed):
    scenario = built_in_scenarios(lite=True, n_processors=P)[scenario_name]
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = run_scenario(
        scenario, policy, seed=seed, n_processors=P,
        tracer=tracer, metrics=metrics,
    )
    return tracer.records, metrics, result


class TestStreamingDifferential:
    """Batch and streaming must agree on every oracle-matrix cell."""

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    @pytest.mark.parametrize("scenario_name", SCENARIO_NAMES)
    def test_cell_streaming_matches_batch(self, scenario_name, policy):
        for seed in SEEDS:
            records, live_metrics, _ = _traced_run(scenario_name, policy, seed)
            cell = (scenario_name, policy.name, seed)

            # invariant checker: incremental feed == one-shot batch walk
            checker = StreamingChecker()
            for record in records:
                checker.feed(record)
            assert checker.violations == check_trace(records), cell

            # metrics: the derived registry snapshot is bit-identical to
            # the live run's (exact float equality via canonical JSON)
            derived = derive_metrics(records)
            assert (
                json.dumps(derived.snapshot(), sort_keys=True)
                == json.dumps(live_metrics.snapshot(), sort_keys=True)
            ), cell

    def test_matrix_exercises_disruption_records(self):
        """The differential isn't vacuous: disruption kinds do stream."""
        records, _, result = _traced_run("cancellations", DYN_AFF, 0)
        assert any(isinstance(r, JobCancelled) for r in records)
        assert result.n_cancelled > 0


class TestStreamingTracer:
    def _run(self, tracer):
        system = SchedulingSystem(
            [flat_job("A", 6, 0.2, 3), flat_job("B", 6, 0.2, 3)],
            DYN_AFF, n_processors=4, seed=0, tracer=tracer,
        )
        return system.run()

    def test_retains_nothing_but_feeds_everything(self):
        batch = Tracer()
        self._run(batch)

        seen = []
        streaming = StreamingTracer([type("C", (), {"feed": staticmethod(seen.append)})()])
        self._run(streaming)

        assert streaming.records == []        # bounded memory: keeps nothing
        assert len(streaming) == len(seen)
        assert seen == list(batch.records)    # same stream, same order

    def test_single_pass_check_and_metrics_and_store(self, tmp_path):
        """One run, one pass: oracle + metrics + columnar persist together."""
        path = tmp_path / "cell.col"
        checker = StreamingChecker()
        metrics = StreamingMetrics()
        writer = ColumnarTraceWriter(str(path))
        with StreamingTracer([checker, metrics, writer]) as tracer:
            self._run(tracer)
        assert checker.violations == []
        assert metrics.snapshot()["counters"]["jobs/completed"] == 2.0

        batch = Tracer()
        self._run(batch)
        assert read_columnar(str(path)) == list(batch.records)

    def test_iteration_is_refused(self):
        with pytest.raises(TypeError, match="retains no records"):
            iter(StreamingTracer())

    def test_engine_events_flow_through_consumers(self):
        seen = []
        tracer = StreamingTracer(capture_engine_events=True)
        tracer.add_consumer(type("C", (), {"feed": staticmethod(seen.append)})())
        tracer.engine_hook(1.5, "tick")
        assert seen == [EngineEvent(time=1.5, label="tick")]
        assert len(tracer) == 1

    def test_consumer_close_is_propagated_once(self):
        closes = []

        class Closing:
            def feed(self, record):
                pass

            def close(self):
                closes.append(1)

        tracer = StreamingTracer([Closing()])
        tracer.close()
        tracer.close()
        assert closes == [1]


class TestStreamingMetricsScope:
    def test_cache_batches_carry_no_metrics(self):
        """CacheBatch is a measurement record; streaming must ignore it."""
        streaming = StreamingMetrics()
        streaming.feed(CacheBatch(time=0.0, cpu=0, owner="A", n=8, hits=4))
        snap = streaming.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
