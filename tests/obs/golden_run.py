"""The tiny deterministic run behind the golden-file tests.

Regenerate the committed goldens after an intentional behavior change::

    PYTHONPATH=src python tests/obs/golden_run.py

The run is small on purpose (two 2-thread jobs on 2 processors) so the
golden trace stays reviewable in a diff.
"""

from repro.core.policies import DYN_AFF
from repro.core.system import SchedulingSystem
from repro.obs import MetricsRegistry, Tracer
from tests.core.helpers import chain_job, flat_job


def golden_run():
    """Returns (trace records, metrics snapshot) of the canonical tiny run."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    jobs = [flat_job("A", 2, 0.5, 2), chain_job("B", 2, 0.5)]
    SchedulingSystem(
        jobs, DYN_AFF, n_processors=2, seed=0, tracer=tracer, metrics=metrics
    ).run()
    return tracer.records, metrics.snapshot()


if __name__ == "__main__":
    import pathlib

    from repro.reporting.obs_export import (
        snapshot_to_csv,
        snapshot_to_json,
        trace_to_jsonl,
    )

    here = pathlib.Path(__file__).parent / "golden"
    records, snapshot = golden_run()
    (here / "trace.jsonl").write_text(trace_to_jsonl(records), encoding="utf-8")
    (here / "metrics.json").write_text(snapshot_to_json(snapshot), encoding="utf-8")
    (here / "metrics.csv").write_text(snapshot_to_csv(snapshot), encoding="utf-8")
    print(f"wrote {len(records)} records and the metrics snapshot to {here}")
