"""Time attribution: exact conservation and bucket semantics.

The tentpole property, checked as a sweep: for every policy on random
mixes, ``attribute_time`` charges every simulated second to exactly one
bucket, and the buckets conserve *exactly* (Fraction equality, not
closeness) — per CPU to the makespan, machine-wide to makespan x P, and
per job to the response time.  The attribution is also cross-checked
against the system's own float aggregates, so the replayed decomposition
agrees with what the simulator thinks it did.
"""

from fractions import Fraction

import pytest

from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
)
from repro.core.system import SchedulingSystem
from repro.obs import Tracer
from repro.obs.analysis import (
    BUCKETS,
    CPU_STATES,
    attribute_time,
    cpu_state_segments,
    sweep,
)
from tests.core.helpers import flat_job
from tests.obs.test_invariant_properties import ALL_POLICIES, random_mix


def traced_run(jobs, policy, n_processors=8, seed=0):
    tracer = Tracer()
    system = SchedulingSystem(
        jobs, policy, n_processors=n_processors, seed=seed, tracer=tracer
    )
    result = system.run()
    return tracer.records, result


class TestConservationSweep:
    """Satellite (c): conservation holds across 5 policies x 3 mixes."""

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    @pytest.mark.parametrize("mix_seed", [11, 22, 33])
    def test_buckets_conserve_exactly(self, policy, mix_seed):
        records, result = traced_run(random_mix(mix_seed), policy)
        attribution = attribute_time(records)
        errors = attribution.conservation_errors()
        assert errors == [], f"{policy.name} mix={mix_seed}: {errors[:3]}"
        # Every traced job got both views.
        assert set(attribution.response_times) == set(result.jobs)
        assert set(attribution.per_job) == set(result.jobs)

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_attribution_matches_system_aggregates(self, policy):
        """The replayed buckets agree with the simulator's own totals.

        The system accumulates work/switch/penalty in float arithmetic,
        so this comparison is approximate; conservation above is exact.
        """
        records, result = traced_run(random_mix(11), policy)
        attribution = attribute_time(records)
        totals = attribution.totals()
        assert totals["compute"] == pytest.approx(
            sum(m.work for m in result.jobs.values()), rel=1e-9, abs=1e-9
        )
        assert totals["switch"] == pytest.approx(
            sum(m.switch_overhead_total for m in result.jobs.values()),
            rel=1e-9, abs=1e-9,
        )
        assert totals["reload"] == pytest.approx(
            sum(m.cache_penalty_total for m in result.jobs.values()),
            rel=1e-9, abs=1e-9,
        )
        for job, metrics in result.jobs.items():
            assert float(attribution.response_times[job]) == pytest.approx(
                metrics.response_time, rel=1e-12
            )


class TestBucketSemantics:
    def test_wait_bucket_charges_jobs_holding_no_processor(self):
        """More jobs than processors: someone must processor-wait."""
        jobs = [flat_job(f"J{i}", 2, 0.3, 1) for i in range(5)]
        records, _ = traced_run(jobs, DYN_AFF, n_processors=2)
        attribution = attribute_time(records)
        assert attribution.conservation_errors() == []
        total_wait = sum(
            attribution.job_buckets(job)["wait"] for job in attribution.per_job
        )
        assert total_wait > 0

    def test_cpu_view_never_uses_wait(self):
        """``wait`` is a job-side notion; processors are busy or idle."""
        records, _ = traced_run(random_mix(22), DYN_AFF)
        attribution = attribute_time(records)
        for cpu in attribution.per_cpu:
            assert attribution.cpu_buckets(cpu)["wait"] == 0.0

    def test_bucket_values_are_nonnegative(self):
        records, _ = traced_run(random_mix(33), DYN_AFF_NOPRI)
        attribution = attribute_time(records)
        for job in attribution.per_job:
            for bucket in BUCKETS:
                assert attribution.job_buckets(job)[bucket] >= 0.0
        for cpu in attribution.per_cpu:
            for bucket in BUCKETS:
                assert attribution.cpu_buckets(cpu)[bucket] >= 0.0

    def test_requires_run_config_and_run_end_framing(self):
        records, _ = traced_run(random_mix(11), EQUIPARTITION)
        with pytest.raises(ValueError):
            attribute_time(records[1:])
        with pytest.raises(ValueError):
            attribute_time(records[:-1])


class TestSweep:
    def test_slices_tile_the_run_without_gaps(self):
        records, _ = traced_run(random_mix(11), DYN_AFF)
        slices = sweep(records)
        assert slices, "a real run must produce slices"
        assert slices[0].start == Fraction(records[0].time)
        assert slices[-1].end == Fraction(records[-1].time)
        for prev, cur in zip(slices, slices[1:]):
            assert prev.end == cur.start
            assert cur.duration > 0

    def test_running_processors_are_always_owned(self):
        records, _ = traced_run(random_mix(22), DYN_AFF_DELAY)
        for piece in sweep(records):
            for cpu, (job, _worker, phase) in piece.running.items():
                assert piece.owners.get(cpu) == job
                assert phase in ("switch", "reload", "compute")

    def test_empty_trace_yields_no_slices(self):
        assert sweep([]) == []


class TestCpuStateSegments:
    def test_segments_use_known_states_and_are_coalesced(self):
        records, _ = traced_run(random_mix(11), DYNAMIC)
        segments = cpu_state_segments(records)
        assert set(segments) == set(range(8))
        for runs in segments.values():
            for start, end, state in runs:
                assert state in CPU_STATES
                assert end > start
            for prev, cur in zip(runs, runs[1:]):
                # Adjacent runs never share a state (they would have merged).
                assert not (prev[2] == cur[2] and prev[1] == cur[0])
