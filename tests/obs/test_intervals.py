"""Interval series: windows tile the run and counts reconcile with the trace."""

import pytest

from repro.core.policies import DYN_AFF, EQUIPARTITION
from repro.obs import MetricsRegistry, Tracer
from repro.obs.analysis import WINDOW_FIELDS, interval_series
from repro.obs.records import CacheBatch, Dispatch
from repro.core.system import SchedulingSystem
from tests.obs.test_invariant_properties import random_mix


@pytest.fixture(scope="module")
def traced():
    tracer = Tracer()
    metrics = MetricsRegistry()
    system = SchedulingSystem(
        random_mix(11), DYN_AFF, n_processors=8, seed=0,
        tracer=tracer, metrics=metrics,
    )
    system.run()
    return tracer.records, metrics.snapshot()


class TestWindowGeometry:
    def test_windows_tile_t0_to_makespan(self, traced):
        records, _ = traced
        series = interval_series(records, window_s=0.25)
        assert series.windows, "a real run must produce windows"
        assert series.windows[0]["start"] == series.t0
        assert series.windows[-1]["end"] == series.makespan
        for prev, cur in zip(series.windows, series.windows[1:]):
            assert prev["end"] == cur["start"]
        # All but the (clamped) final window are exactly window_s wide.
        for w in series.windows[:-1]:
            assert w["end"] - w["start"] == pytest.approx(0.25)

    def test_every_window_has_every_field(self, traced):
        records, _ = traced
        series = interval_series(records, window_s=0.5)
        for w in series.windows:
            assert tuple(w) == WINDOW_FIELDS

    def test_rejects_non_positive_window(self, traced):
        records, _ = traced
        for bad in (0, -1.0):
            with pytest.raises(ValueError):
                interval_series(records, window_s=bad)

    def test_rejects_unframed_trace(self, traced):
        records, _ = traced
        with pytest.raises(ValueError):
            interval_series(records[1:], window_s=0.5)
        with pytest.raises(ValueError):
            interval_series(records[:-1], window_s=0.5)


class TestCountsReconcile:
    """Window sums must equal whole-trace counts — nothing double-binned."""

    def test_dispatch_counts_sum_to_trace_totals(self, traced):
        records, _ = traced
        series = interval_series(records, window_s=0.3)
        dispatches = [r for r in records if isinstance(r, Dispatch)]
        reallocs = [r for r in dispatches if not r.cheap]
        assert sum(w["dispatches"] for w in series.windows) == len(dispatches)
        assert sum(w["reallocations"] for w in series.windows) == len(reallocs)
        assert sum(w["affine_reallocations"] for w in series.windows) == sum(
            1 for r in reallocs if r.affine
        )

    def test_reallocations_match_metrics_counter(self, traced):
        records, snapshot = traced
        series = interval_series(records, window_s=0.3)
        assert sum(w["reallocations"] for w in series.windows) == \
            snapshot["counters"]["dispatch/reallocations"]

    def test_cache_counts_sum_to_batch_records(self, traced):
        records, _ = traced
        series = interval_series(records, window_s=0.2)
        batches = [r for r in records if isinstance(r, CacheBatch)]
        assert sum(w["accesses"] for w in series.windows) == \
            sum(r.n for r in batches)
        assert sum(w["misses"] for w in series.windows) == \
            sum(r.n - r.hits for r in batches)


class TestRatios:
    def test_ratios_stay_in_unit_range(self, traced):
        records, _ = traced
        series = interval_series(records, window_s=0.25)
        for w in series.windows:
            assert 0.0 <= w["utilization"] <= 1.0
            assert 0.0 <= w["miss_rate"] <= 1.0
            assert 0.0 <= w["affinity_hit_ratio"] <= 1.0
            assert 0.0 <= w["fragmentation"] <= 1.0
            assert w["realloc_rate"] >= 0.0

    def test_single_window_collapses_to_run_aggregate(self, traced):
        """One huge window must reproduce the whole-run ratios."""
        records, _ = traced
        series = interval_series(records, window_s=1e9)
        assert len(series.windows) == 1
        w = series.windows[0]
        dispatches = [r for r in records if isinstance(r, Dispatch)]
        reallocs = [r for r in dispatches if not r.cheap]
        assert w["dispatches"] == len(dispatches)
        assert w["reallocations"] == len(reallocs)

    def test_equipartition_has_perfect_affinity_hit_ratio(self):
        """Equipartition never migrates a worker once placed, so every
        non-cheap dispatch (the initial placements) is at worst neutral;
        windows with reallocations report a well-defined ratio."""
        tracer = Tracer()
        SchedulingSystem(
            random_mix(22), EQUIPARTITION, n_processors=8, seed=0,
            tracer=tracer,
        ).run()
        series = interval_series(tracer.records, window_s=0.5)
        for w in series.windows:
            if w["reallocations"]:
                assert w["affinity_hit_ratio"] == \
                    w["affine_reallocations"] / w["reallocations"]
