"""The invariant checker: unit violations and a seeded conservation bug.

Two layers of evidence that the oracle has teeth:

* hand-crafted record streams that each violate exactly one invariant
  and must be flagged;
* a real Dyn-Aff trace with its release records surgically removed —
  the classic double-allocation bug — which the checker must catch even
  though the stream came from a correct run.
"""

import dataclasses

import pytest

from repro.core.policies import DYN_AFF
from repro.measure.runner import run_mix
from repro.obs import Tracer
from repro.obs.invariants import assert_trace_ok, check_trace
from repro.obs.records import (
    AllocationChange,
    Dispatch,
    JobArrival,
    JobDeparture,
    PolicyDecision,
    RunConfig,
    RunEnd,
    Undispatch,
)

CONFIG = RunConfig(
    time=0.0, policy="Dyn-Aff", n_processors=4, seed=0,
    jobs=("A", "B"), machine="test", cache_lines=64,
    miss_time_s=1e-6, context_switch_s=1e-4,
    respect_priority=True, use_affinity=True,
)


def violations(*records):
    return check_trace([CONFIG, *records])


class TestClockAndLifecycle:
    def test_clean_minimal_trace(self):
        assert_trace_ok(
            [
                CONFIG,
                JobArrival(time=0.0, job="A"),
                AllocationChange(time=0.0, cpu=0, job="A", prev=None),
                Dispatch(time=0.0, cpu=0, job="A", worker=0, affine=False,
                         cheap=False, penalty_s=0.0, switch_s=1e-4, ready_depth=1),
                Undispatch(time=1.0, cpu=0, job="A", worker=0, reason="done"),
                JobDeparture(time=1.0, job="A", response_time=1.0, n_reallocations=1),
                AllocationChange(time=1.0, cpu=0, job=None, prev="A"),
                RunEnd(time=1.0, makespan=1.0, events_fired=4),
            ]
        )

    def test_clock_must_be_monotone(self):
        found = violations(
            JobArrival(time=5.0, job="A"),
            JobArrival(time=1.0, job="B"),
        )
        assert any("clock" in v or "backward" in v for v in found)

    def test_departure_requires_arrival(self):
        found = violations(
            JobDeparture(time=1.0, job="A", response_time=1.0, n_reallocations=0)
        )
        assert found

    def test_departure_response_time_must_match_timestamps(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            JobDeparture(time=2.0, job="A", response_time=1.5, n_reallocations=0),
        )
        assert any("response" in v for v in found)

    def test_grant_to_departed_job_flagged(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            JobDeparture(time=1.0, job="A", response_time=1.0, n_reallocations=0),
            AllocationChange(time=2.0, cpu=0, job="A", prev=None),
        )
        assert any("departed" in v for v in found)


class TestAllocationConservation:
    def test_double_allocation_flagged(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            JobArrival(time=0.0, job="B"),
            AllocationChange(time=0.0, cpu=0, job="A", prev=None),
            AllocationChange(time=1.0, cpu=0, job="B", prev=None),
        )
        assert any("cpu 0" in v for v in found)

    def test_cpu_out_of_range_flagged(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            AllocationChange(time=0.0, cpu=99, job="A", prev=None),
        )
        assert any("99" in v for v in found)

    def test_over_allocation_flagged(self):
        records = [JobArrival(time=0.0, job="A"), JobArrival(time=0.0, job="B")]
        # 4-processor machine; grant 4 to A legally, then force a 5th
        # ownership by double-granting cpu 3 (prev lies to dodge the
        # conservation check and hit the ceiling check instead).
        for cpu in range(4):
            records.append(AllocationChange(time=0.0, cpu=cpu, job="A", prev=None))
        found = violations(*records, AllocationChange(time=0.0, cpu=3, job="A", prev=None))
        assert found

    def test_run_must_end_with_all_processors_free(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            AllocationChange(time=0.0, cpu=0, job="A", prev=None),
            RunEnd(time=1.0, makespan=1.0, events_fired=1),
        )
        assert any("end" in v for v in found)


class TestDispatchInvariants:
    def grant(self, job="A", cpu=0):
        return [
            JobArrival(time=0.0, job=job),
            AllocationChange(time=0.0, cpu=cpu, job=job, prev=None),
        ]

    def test_dispatch_on_unowned_cpu_flagged(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            Dispatch(time=0.0, cpu=2, job="A", worker=0, affine=False,
                     cheap=False, penalty_s=0.0, switch_s=1e-4, ready_depth=1),
        )
        assert any("own" in v for v in found)

    def test_worker_on_two_processors_flagged(self):
        found = violations(
            *self.grant(cpu=0),
            AllocationChange(time=0.0, cpu=1, job="A", prev=None),
            Dispatch(time=0.0, cpu=0, job="A", worker=0, affine=False,
                     cheap=False, penalty_s=0.0, switch_s=1e-4, ready_depth=1),
            Dispatch(time=0.0, cpu=1, job="A", worker=0, affine=False,
                     cheap=False, penalty_s=0.0, switch_s=1e-4, ready_depth=1),
        )
        assert any("worker" in v for v in found)

    def test_penalty_above_full_reload_flagged(self):
        found = violations(
            *self.grant(),
            Dispatch(time=0.0, cpu=0, job="A", worker=0, affine=False,
                     cheap=False,
                     penalty_s=CONFIG.cache_lines * CONFIG.miss_time_s * 2,
                     switch_s=1e-4, ready_depth=1),
        )
        assert any("penalty" in v for v in found)

    def test_cheap_dispatch_must_charge_nothing(self):
        found = violations(
            *self.grant(),
            Dispatch(time=0.0, cpu=0, job="A", worker=0, affine=True,
                     cheap=True, penalty_s=1e-5, switch_s=0.0, ready_depth=1),
        )
        assert any("cheap" in v for v in found)

    def test_undispatch_requires_presence(self):
        found = violations(
            *self.grant(),
            Undispatch(time=0.0, cpu=0, job="A", worker=0, reason="idle"),
        )
        assert found


class TestDecisionInvariants:
    def test_priority_dispatch_must_pick_most_deserving(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            JobArrival(time=0.0, job="B"),
            PolicyDecision(time=0.0, rule="priority", job="B", cpu=0,
                           reason="test", credits={"A": 2.0, "B": -1.0}),
        )
        assert any("most deserving" in v for v in found)

    def test_a1_grant_must_pass_credit_gate(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            JobArrival(time=0.0, job="B"),
            PolicyDecision(time=0.0, rule="A.1", job="A", cpu=0,
                           reason="test", credits={"A": -5.0, "B": 5.0}),
        )
        assert any("A.1" in v for v in found)

    def test_d3_needs_victim_with_multiple_processors(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            JobArrival(time=0.0, job="B"),
            PolicyDecision(time=0.0, rule="D.3", job="A", cpu=0, reason="test",
                           credits={"A": 0.0, "B": 0.0},
                           allocations={"A": 3, "B": 1}),
        )
        assert any("D.3" in v for v in found)

    def test_d3_beyond_parity_needs_credit(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            JobArrival(time=0.0, job="B"),
            PolicyDecision(time=0.0, rule="D.3", job="A", cpu=0, reason="test",
                           credits={"A": 0.0, "B": 0.0},
                           allocations={"A": 2, "B": 2}),
        )
        assert any("parity" in v for v in found)

    def test_equipartition_targets_bounded_by_machine(self):
        found = violations(
            JobArrival(time=0.0, job="A"),
            PolicyDecision(time=0.0, rule="EQ", job=None, cpu=None,
                           reason="test", allocations={"A": 3, "B": 3}),
        )
        assert any("equipartition" in v for v in found)


class TestSeededConservationBug:
    """The ISSUE's acceptance demo: break a real trace, the oracle objects."""

    def test_dropping_releases_triggers_conservation_failure(self):
        tracer = Tracer()
        run_mix(5, DYN_AFF, seed=0, tracer=tracer)
        assert check_trace(tracer.records) == []
        # Seed the bug: a scheduler that forgets to release processors.
        # Every AllocationChange with job=None (a release) disappears, so
        # the next grant of that processor looks like a double allocation.
        buggy = [
            r for r in tracer.records
            if not (isinstance(r, AllocationChange) and r.job is None)
        ]
        found = check_trace(buggy)
        assert found, "the oracle must flag the seeded conservation bug"
        assert any("owned by" in v or "cpu" in v for v in found)

    def test_corrupting_response_time_is_flagged(self):
        tracer = Tracer()
        run_mix(5, DYN_AFF, seed=0, tracer=tracer)
        corrupted = [
            dataclasses.replace(r, response_time=r.response_time * 1.001)
            if isinstance(r, JobDeparture) else r
            for r in tracer.records
        ]
        assert any("response" in v for v in check_trace(corrupted))
