"""Trace diffing: self-diffs are clean, parallel runs diverge nowhere,
and the Equipartition vs Dyn-Aff gap lands in the affinity buckets.
"""

import pytest

from repro.core.policies import DYN_AFF, EQUIPARTITION
from repro.engine.parallel import map_replications
from repro.measure.runner import run_mix
from repro.obs import Tracer
from repro.obs.analysis import BUCKETS, diff_traces
from repro.reporting.obs_export import trace_from_jsonl, trace_to_jsonl


def _traced_jsonl(mix, policy, seed):
    tracer = Tracer()
    run_mix(mix, policy, seed=seed, tracer=tracer)
    return trace_to_jsonl(tracer.records)


def _replicated_trace(replication):
    """Module-level so it pickles into ProcessPoolExecutor workers."""
    return _traced_jsonl(1, DYN_AFF, seed=replication)


class TestSelfDiff:
    def test_identical_traces_diff_clean(self):
        records = trace_from_jsonl(_traced_jsonl(1, DYN_AFF, seed=0))
        diff = diff_traces(records, records, label_a="x", label_b="y")
        assert diff.identical
        assert diff.first_divergence is None
        assert diff.first_divergent_decision is None
        assert diff.credit_differences == {}
        assert diff.mean_response_delta == 0.0
        assert diff.makespan_delta == 0.0
        for entry in diff.job_deltas.values():
            assert entry["response_time_delta"] == 0.0
            assert all(entry["buckets"][b] == 0.0 for b in BUCKETS)
        assert diff.decision_rule_counts_a == diff.decision_rule_counts_b

    def test_seed_change_diverges(self):
        trace_a = trace_from_jsonl(_traced_jsonl(1, DYN_AFF, seed=0))
        trace_b = trace_from_jsonl(_traced_jsonl(1, DYN_AFF, seed=1))
        diff = diff_traces(trace_a, trace_b)
        assert not diff.identical
        assert diff.first_divergence is not None


class TestParallelDeterminism:
    """Satellite (d): serial and workers=2 runs diverge nowhere."""

    def test_worker_count_never_changes_the_trace(self):
        serial = map_replications(_replicated_trace, 2, workers=1)
        parallel = map_replications(_replicated_trace, 2, workers=2)
        for r, (text_a, text_b) in enumerate(zip(serial, parallel)):
            diff = diff_traces(
                trace_from_jsonl(text_a),
                trace_from_jsonl(text_b),
                label_a=f"serial r{r}",
                label_b=f"workers=2 r{r}",
            )
            assert diff.identical, (
                f"replication {r} diverged at record "
                f"{diff.first_divergence.index if diff.first_divergence else '?'}"
            )
            assert diff.first_divergence is None


class TestPolicyGapAttribution:
    """Acceptance: the Equi vs Dyn-Aff gap is *explained*, not just stated."""

    @pytest.fixture(scope="class")
    def diff(self):
        trace_a = trace_from_jsonl(_traced_jsonl(5, EQUIPARTITION, seed=0))
        trace_b = trace_from_jsonl(_traced_jsonl(5, DYN_AFF, seed=0))
        return diff_traces(trace_a, trace_b, label_a="Equipartition", label_b="Dyn-Aff")

    def test_per_job_buckets_sum_to_response_delta(self, diff):
        assert not diff.identical
        for job, entry in diff.job_deltas.items():
            total = sum(entry["buckets"][b] for b in BUCKETS)
            assert total == pytest.approx(entry["response_time_delta"], abs=1e-9), job

    def test_compute_is_policy_invariant_in_machine_totals(self, diff):
        """Both policies execute the same service demand; the CPU-second
        compute totals must agree to float-replay precision while the
        response-time gap lands in the affinity buckets."""
        compute_delta = diff.totals_b["compute"] - diff.totals_a["compute"]
        assert abs(compute_delta) < 1e-6

    def test_gap_lands_in_reload_and_idle(self, diff):
        """Dyn-Aff pays reload penalty for its migrations but reclaims far
        more held-idle time — the paper's Section 6 story in buckets.  (On
        Table 2 mixes every job always holds a processor, so processor-wait
        is zero and the gap is carried by reload/switch/idle.)"""
        reload_delta = diff.totals_b["reload"] - diff.totals_a["reload"]
        idle_delta = diff.totals_b["idle"] - diff.totals_a["idle"]
        assert reload_delta > 0
        assert idle_delta < 0
        assert abs(idle_delta) > reload_delta  # the trade pays off

    def test_bucket_deltas_account_for_the_whole_gap(self, diff):
        """Conservation across the diff: the totals deltas sum to the
        makespan delta times P (16 processors on Table 2 mixes)."""
        total_delta = sum(
            diff.totals_b[b] - diff.totals_a[b] for b in BUCKETS
        )
        assert total_delta == pytest.approx(diff.makespan_delta * 16, rel=1e-9)

    def test_first_divergent_decision_reported(self, diff):
        assert diff.first_divergent_decision is not None
        assert diff.decision_rule_counts_a != diff.decision_rule_counts_b
