"""The span profiler: fake-clock arithmetic, merging, and live wiring."""

import pytest

from repro.apps import APPLICATIONS
from repro.core.policies import DYN_AFF, EQUIPARTITION
from repro.measure.penalty import PenaltyExperiment
from repro.measure.runner import compare_policies, run_mix
from repro.obs.profiling import (
    PROFILE_SCHEMA,
    NullSpanProfiler,
    SpanProfiler,
    validate_profile,
)


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSpanArithmetic:
    def test_flat_span_inclusive_equals_exclusive(self):
        clock = FakeClock()
        prof = SpanProfiler(clock=clock)
        prof.push("stage")
        clock.advance(2.0)
        prof.pop()
        data = prof.snapshot()["spans"]["stage"]
        assert data == {
            "calls": 1, "inclusive_s": 2.0, "exclusive_s": 2.0, "max_s": 2.0,
        }

    def test_nested_child_time_is_subtracted_from_exclusive(self):
        clock = FakeClock()
        prof = SpanProfiler(clock=clock)
        prof.push("outer")
        clock.advance(1.0)
        prof.push("inner")
        clock.advance(3.0)
        prof.pop()
        clock.advance(0.5)
        prof.pop()
        spans = prof.snapshot()["spans"]
        assert spans["outer"]["inclusive_s"] == 4.5
        assert spans["outer"]["exclusive_s"] == 1.5
        assert spans["inner"]["inclusive_s"] == 3.0
        assert spans["inner"]["exclusive_s"] == 3.0

    def test_repeat_calls_accumulate_and_max_tracks_longest(self):
        clock = FakeClock()
        prof = SpanProfiler(clock=clock)
        for duration in (1.0, 4.0, 2.0):
            prof.push("stage")
            clock.advance(duration)
            prof.pop()
        data = prof.snapshot()["spans"]["stage"]
        assert data["calls"] == 3
        assert data["inclusive_s"] == 7.0
        assert data["max_s"] == 4.0

    def test_span_context_manager(self):
        clock = FakeClock()
        prof = SpanProfiler(clock=clock)
        with prof.span("stage"):
            clock.advance(1.5)
        assert prof.snapshot()["spans"]["stage"]["inclusive_s"] == 1.5

    def test_snapshot_with_open_spans_refuses(self):
        prof = SpanProfiler(clock=FakeClock())
        prof.push("left-open")
        with pytest.raises(RuntimeError, match="left-open"):
            prof.snapshot()


class TestSnapshotsAndMerging:
    def _snapshot(self, durations):
        clock = FakeClock()
        prof = SpanProfiler(clock=clock)
        for name, duration in durations:
            prof.push(name)
            clock.advance(duration)
            prof.pop()
        return prof.snapshot()

    def test_snapshot_validates(self):
        snapshot = self._snapshot([("a", 1.0), ("b", 2.0)])
        assert snapshot["schema"] == PROFILE_SCHEMA
        validate_profile(snapshot)

    def test_merge_adds_times_and_combines_max(self):
        merged = SpanProfiler.merged([
            self._snapshot([("a", 1.0), ("b", 5.0)]),
            self._snapshot([("a", 3.0)]),
        ])
        assert merged["spans"]["a"] == {
            "calls": 2, "inclusive_s": 4.0, "exclusive_s": 4.0, "max_s": 3.0,
        }
        assert merged["spans"]["b"]["calls"] == 1

    def test_validate_rejects_wrong_schema_and_missing_keys(self):
        with pytest.raises(ValueError, match="schema"):
            validate_profile({"schema": "bogus/9", "spans": {}})
        with pytest.raises(ValueError, match="missing"):
            validate_profile({
                "schema": PROFILE_SCHEMA,
                "spans": {"a": {"calls": 1}},
            })
        with pytest.raises(ValueError, match="negative"):
            validate_profile({
                "schema": PROFILE_SCHEMA,
                "spans": {"a": {"calls": -1, "inclusive_s": 0.0,
                                "exclusive_s": 0.0, "max_s": 0.0}},
            })

    def test_null_profiler_measures_nothing(self):
        prof = NullSpanProfiler()
        assert prof.enabled is False
        prof.push("ignored")
        prof.pop()
        snapshot = prof.snapshot()  # no open spans: push was a no-op
        assert snapshot["spans"] == {}
        validate_profile(snapshot)


class TestLiveWiring:
    """The instrumented call sites actually produce their spans."""

    def test_run_mix_profiles_engine_and_policy_spans(self):
        prof = SpanProfiler()
        run_mix(1, DYN_AFF, seed=0, profiler=prof)
        spans = prof.snapshot()["spans"]
        assert spans["engine/run"]["calls"] == 1
        assert spans["policy/new_work"]["calls"] > 0
        assert spans["policy/processor_available"]["calls"] > 0
        # Event spans are labeled by their prefix before the colon.
        assert any(name.startswith("engine/") and name != "engine/run"
                   for name in spans)
        # The run loop's inclusive time bounds everything inside it.
        assert spans["engine/run"]["inclusive_s"] >= \
            spans["policy/new_work"]["inclusive_s"]

    def test_equipartition_profiles_rebalance(self):
        prof = SpanProfiler()
        run_mix(1, EQUIPARTITION, seed=0, profiler=prof)
        spans = prof.snapshot()["spans"]
        assert spans["policy/rebalance"]["calls"] > 0

    def test_penalty_experiment_profiles_cache_and_regimes(self):
        prof = SpanProfiler()
        experiment = PenaltyExperiment(
            scale=16, n_switches_target=3, min_run_s=0.05, profiler=prof
        )
        experiment.measure(APPLICATIONS["MVA"], 0.05, partners=())
        spans = prof.snapshot()["spans"]
        assert spans["cache/access_batch"]["calls"] > 0
        assert any(name.startswith("penalty/") for name in spans)

    def test_comparison_merges_per_replication_profiles(self):
        comparison = compare_policies(
            1, [EQUIPARTITION, DYN_AFF], replications=2, collect_profile=True
        )
        assert set(comparison.profiles) == {"Equipartition", "Dyn-Aff"}
        for snapshot in comparison.profiles.values():
            validate_profile(snapshot)
            assert snapshot["spans"]["engine/run"]["calls"] == 2

    def test_profiles_survive_the_process_pool(self):
        serial = compare_policies(
            1, [DYN_AFF], replications=2, collect_profile=True, workers=1
        )
        parallel = compare_policies(
            1, [DYN_AFF], replications=2, collect_profile=True, workers=2
        )
        # Wall-clock values differ; the deterministic shape must not.
        assert set(serial.profiles["Dyn-Aff"]["spans"]) == \
            set(parallel.profiles["Dyn-Aff"]["spans"])
        for name, data in serial.profiles["Dyn-Aff"]["spans"].items():
            assert parallel.profiles["Dyn-Aff"]["spans"][name]["calls"] == \
                data["calls"]

    def test_disabled_profiler_collects_no_spans(self):
        prof = NullSpanProfiler()
        run_mix(1, DYN_AFF, seed=0, profiler=prof)
        assert prof.snapshot()["spans"] == {}
