"""The Squillante & Lazowska affinity-queueing baseline model."""

import dataclasses

import pytest

from repro.model.affinity_queueing import (
    POLICIES,
    AffinityQueueingModel,
    QueueingConfig,
    compare_disciplines,
)

#: The configuration the benchmark uses: moderate multiprogramming, a
#: large footprint, decent survival — S&L's "pronounced effect" regime.
SL_CONFIG = QueueingConfig(
    n_processors=4,
    n_tasks=5,
    mean_service_s=0.002,
    mean_think_s=0.004,
    footprint_lines=3000,
    survival=0.7,
)


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            QueueingConfig(n_processors=0)
        with pytest.raises(ValueError):
            QueueingConfig(n_tasks=0)

    def test_rejects_bad_times(self):
        with pytest.raises(ValueError):
            QueueingConfig(mean_service_s=0.0)
        with pytest.raises(ValueError):
            QueueingConfig(mean_think_s=-1.0)

    def test_rejects_bad_survival(self):
        with pytest.raises(ValueError):
            QueueingConfig(survival=1.0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            QueueingConfig(policy="LIFO")

    def test_rejects_zero_completions(self):
        with pytest.raises(ValueError):
            AffinityQueueingModel(SL_CONFIG).run(0)


class TestMechanics:
    def test_completions_counted(self):
        stats = AffinityQueueingModel(SL_CONFIG, seed=1).run(500)
        assert stats.completions == 500
        assert stats.dispatches >= stats.completions

    def test_deterministic_given_seed(self):
        a = AffinityQueueingModel(SL_CONFIG, seed=7).run(300)
        b = AffinityQueueingModel(SL_CONFIG, seed=7).run(300)
        assert a.mean_cycle_s == b.mean_cycle_s
        assert a.affine_dispatches == b.affine_dispatches

    def test_zero_footprint_means_zero_reload(self):
        config = dataclasses.replace(SL_CONFIG, footprint_lines=0.0)
        stats = AffinityQueueingModel(config, seed=1).run(300)
        assert stats.total_reload_s == 0.0

    def test_mean_cycle_covers_components(self):
        stats = AffinityQueueingModel(SL_CONFIG, seed=1).run(300)
        assert stats.mean_cycle_s >= stats.mean_wait_s

    def test_single_processor_single_task_always_affine_after_first(self):
        config = QueueingConfig(
            n_processors=1, n_tasks=1, mean_service_s=0.01, mean_think_s=0.01,
            footprint_lines=1000, survival=0.5,
        )
        stats = AffinityQueueingModel(config, seed=2).run(200)
        # Every dispatch after the first returns to processor 0.
        assert stats.affine_dispatches == stats.dispatches - 1
        # ... and with no intervening tasks, reload happens only once.
        assert stats.total_reload_s == pytest.approx(1000 * 0.75e-6, rel=1e-6)


class TestDisciplines:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_disciplines(SL_CONFIG, n_completions=8000, seed=1)

    def test_all_policies_present(self, results):
        assert set(results) == set(POLICIES)

    def test_fixed_processor_is_perfectly_affine(self, results):
        stats = results["FP"]
        assert stats.affine_dispatches >= stats.dispatches - SL_CONFIG.n_tasks

    def test_affinity_ordering(self, results):
        """FP = 100% > LP/MI > FCFS in affinity hits."""
        assert results["FP"].pct_affinity > results["LP"].pct_affinity
        assert results["LP"].pct_affinity > results["FCFS"].pct_affinity + 20
        assert results["MI"].pct_affinity > results["FCFS"].pct_affinity + 20

    def test_reload_ordering(self, results):
        """More affinity, less reload."""
        assert results["FP"].mean_reload_s < results["LP"].mean_reload_s
        assert results["LP"].mean_reload_s < results["FCFS"].mean_reload_s
        assert results["MI"].mean_reload_s < results["FCFS"].mean_reload_s

    def test_affinity_helps_at_short_intervals(self, results):
        """S&L's conclusion: pronounced effect at time-sharing intervals."""
        fcfs = results["FCFS"].mean_cycle_s
        assert results["LP"].mean_cycle_s < 0.9 * fcfs
        assert results["MI"].mean_cycle_s < 0.9 * fcfs

    def test_effect_vanishes_at_space_sharing_intervals(self):
        """This paper's rebuttal: at ~400 ms run intervals the same
        disciplines are within a percent of FCFS."""
        config = dataclasses.replace(
            SL_CONFIG, mean_service_s=0.400, mean_think_s=0.800
        )
        results = compare_disciplines(config, n_completions=4000, seed=1)
        fcfs = results["FCFS"].mean_cycle_s
        for policy in ("LP", "MI"):
            assert results[policy].mean_cycle_s == pytest.approx(fcfs, rel=0.02)

    def test_fixed_binding_sacrifices_utilization_at_long_intervals(self):
        """FP's perfect affinity cannot save it from load imbalance —
        the queueing-model analog of Equipartition's waste."""
        config = dataclasses.replace(
            SL_CONFIG, mean_service_s=0.400, mean_think_s=0.800
        )
        results = compare_disciplines(config, n_completions=4000, seed=1)
        assert results["FP"].mean_cycle_s > 1.05 * results["FCFS"].mean_cycle_s
