"""Equations (1) and (2)."""

import pytest

from repro.model.response_time import cache_penalty, response_time


class TestCachePenalty:
    def test_pure_affinity(self):
        assert cache_penalty(100.0, 1e-3, 2e-3) == pytest.approx(1e-3)

    def test_pure_no_affinity(self):
        assert cache_penalty(0.0, 1e-3, 2e-3) == pytest.approx(2e-3)

    def test_mixture(self):
        assert cache_penalty(50.0, 1e-3, 3e-3) == pytest.approx(2e-3)

    def test_higher_affinity_lower_penalty(self):
        """When P^A < P^NA, raising %affinity lowers the penalty."""
        penalties = [cache_penalty(pct, 1e-4, 2e-3) for pct in (0, 25, 50, 75, 100)]
        assert penalties == sorted(penalties, reverse=True)

    def test_percentage_validation(self):
        with pytest.raises(ValueError):
            cache_penalty(101.0, 1e-3, 1e-3)
        with pytest.raises(ValueError):
            cache_penalty(-1.0, 1e-3, 1e-3)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            cache_penalty(50.0, -1e-3, 1e-3)


class TestResponseTime:
    def test_work_only(self):
        assert response_time(100.0, 0.0, 0, 0.0, 0.0, 10.0) == pytest.approx(10.0)

    def test_full_equation(self):
        # (100 + 20 + 1000 * (750us + 1250us)) / 8 = (120 + 2) / 8
        rt = response_time(100.0, 20.0, 1000, 750e-6, 1250e-6, 8.0)
        assert rt == pytest.approx(122.0 / 8.0)

    def test_waste_increases_response_time(self):
        lean = response_time(100.0, 0.0, 0, 0.0, 0.0, 8.0)
        wasteful = response_time(100.0, 30.0, 0, 0.0, 0.0, 8.0)
        assert wasteful > lean

    def test_reallocations_increase_response_time(self):
        few = response_time(100.0, 0.0, 10, 750e-6, 1e-3, 8.0)
        many = response_time(100.0, 0.0, 10000, 750e-6, 1e-3, 8.0)
        assert many > few

    def test_more_processors_reduce_response_time(self):
        narrow = response_time(100.0, 0.0, 0, 0.0, 0.0, 4.0)
        wide = response_time(100.0, 0.0, 0, 0.0, 0.0, 16.0)
        assert wide < narrow

    def test_zero_allocation_rejected(self):
        with pytest.raises(ValueError):
            response_time(100.0, 0.0, 0, 0.0, 0.0, 0.0)

    def test_negative_terms_rejected(self):
        with pytest.raises(ValueError):
            response_time(-1.0, 0.0, 0, 0.0, 0.0, 8.0)
