"""The Figure 7 future-machine model."""

import math

import pytest

from repro.model.future import (
    DEFAULT_PRODUCTS,
    FutureMachineModel,
    RelativeSeries,
    sweep_relative,
)
from repro.model.params import DEFAULT_PENALTIES, PenaltyParameters, PolicyObservation


def obs(policy="Dynamic", pct_affinity=20.0, n_reallocations=2000.0, waste=0.0):
    return PolicyObservation(
        job="MATRIX",
        app="MATRIX",
        policy=policy,
        work=800.0,
        waste=waste,
        n_reallocations=n_reallocations,
        pct_affinity=pct_affinity,
        average_allocation=8.0,
    )


@pytest.fixture
def model():
    return FutureMachineModel(DEFAULT_PENALTIES)


class TestBaseline:
    def test_unit_factors_recover_equation_one(self, model):
        """speed = cache = 1 reduces to the base model."""
        observation = obs()
        rt = model.response_time(observation)
        penalty = model.penalty_future(observation, cache_size=1.0)
        expected = (
            observation.work
            + observation.waste
            + observation.n_reallocations * (750e-6 + penalty)
        ) / observation.average_allocation
        assert rt == pytest.approx(expected)

    def test_penalty_mixes_pa_and_pna(self, model):
        p = DEFAULT_PENALTIES["MATRIX"]
        penalty = model.penalty_future(obs(pct_affinity=50.0), cache_size=1.0)
        assert penalty == pytest.approx(0.5 * p.p_a + 0.5 * p.p_na)

    def test_unknown_app_rejected(self, model):
        bad = PolicyObservation(
            job="X", app="UNKNOWN", policy="Dynamic",
            work=1.0, waste=0.0, n_reallocations=0.0,
            pct_affinity=0.0, average_allocation=1.0,
        )
        with pytest.raises(KeyError):
            model.response_time(bad)


class TestScalingAssumptions:
    def test_compute_term_scales_linearly(self, model):
        quiet = obs(n_reallocations=0.0)
        assert model.response_time(quiet, processor_speed=4.0) == pytest.approx(
            model.response_time(quiet) / 4.0
        )

    def test_penalty_term_scales_as_sqrt_speed(self, model):
        """Cache penalties shrink only as sqrt(speed): they grow in
        relative importance on faster machines."""
        observation = obs(n_reallocations=10000.0)
        rt1 = model.response_time(observation, processor_speed=1.0)
        rt100 = model.response_time(observation, processor_speed=100.0)
        # If everything scaled linearly rt100 would be rt1/100; the sqrt
        # term keeps it strictly above that.
        assert rt100 > rt1 / 100.0

    def test_larger_cache_helps_affinity_resumes(self, model):
        affine = obs(pct_affinity=100.0)
        small = model.penalty_future(affine, cache_size=1.0)
        large = model.penalty_future(affine, cache_size=16.0)
        assert large == pytest.approx(small / 16.0)

    def test_larger_cache_hurts_no_affinity_resumes(self, model):
        oblivious = obs(pct_affinity=0.0)
        small = model.penalty_future(oblivious, cache_size=1.0)
        large = model.penalty_future(oblivious, cache_size=16.0)
        assert large == pytest.approx(small * 4.0)

    def test_invalid_factors(self, model):
        with pytest.raises(ValueError):
            model.response_time(obs(), processor_speed=0.0)
        with pytest.raises(ValueError):
            model.penalty_future(obs(), cache_size=-1.0)


class TestPaperConclusions:
    """Section 7.3's qualitative findings, direct from the model."""

    def equi_obs(self):
        return PolicyObservation(
            job="MATRIX", app="MATRIX", policy="Equipartition",
            work=800.0, waste=120.0, n_reallocations=20.0,
            pct_affinity=30.0, average_allocation=8.0,
        )

    def test_oblivious_dynamic_eventually_loses(self, model):
        """Dynamic's curve rises and crosses 1 as machines get faster."""
        series = sweep_relative(model, obs(pct_affinity=10.0), self.equi_obs())
        assert series.ratios[0] < 1.0
        assert series.ratios[-1] > 1.0
        assert series.crossover_product() is not None

    def test_affinity_pushes_crossover_out(self, model):
        """Dyn-Aff (high %affinity) diverges later than Dynamic."""
        oblivious = sweep_relative(model, obs(pct_affinity=10.0), self.equi_obs())
        aware = sweep_relative(
            model, obs(policy="Dyn-Aff", pct_affinity=95.0), self.equi_obs()
        )
        cross_obl = oblivious.crossover_product() or math.inf
        cross_aware = aware.crossover_product() or math.inf
        assert cross_aware > cross_obl

    def test_fewer_reallocations_push_crossover_out(self, model):
        """Yield-delay (fewer reallocations) diverges later still."""
        aware = sweep_relative(
            model, obs(policy="Dyn-Aff", pct_affinity=95.0), self.equi_obs()
        )
        delayed = sweep_relative(
            model,
            obs(policy="Dyn-Aff-Delay", pct_affinity=95.0, n_reallocations=600.0),
            self.equi_obs(),
        )
        cross_aware = aware.crossover_product() or math.inf
        cross_delayed = delayed.crossover_product() or math.inf
        assert cross_delayed >= cross_aware

    def test_ratio_monotone_along_trajectory_for_oblivious(self, model):
        series = sweep_relative(model, obs(pct_affinity=10.0), self.equi_obs())
        assert list(series.ratios) == sorted(series.ratios)


class TestRelativeSeries:
    def test_crossover_none_when_always_below_one(self):
        series = RelativeSeries("p", "j", (1.0, 10.0), (0.8, 0.9))
        assert series.crossover_product() is None

    def test_crossover_first_product_at_or_above_one(self):
        series = RelativeSeries("p", "j", (1.0, 10.0, 100.0), (0.8, 1.0, 1.5))
        assert series.crossover_product() == 10.0

    def test_sweep_rejects_bad_products(self, model):
        with pytest.raises(ValueError):
            sweep_relative(model, obs(), obs(policy="Equipartition"), products=(0.0,))

    def test_default_products_span_six_decades(self):
        assert DEFAULT_PRODUCTS[0] == 1.0
        assert DEFAULT_PRODUCTS[-1] == pytest.approx(1e6)


class TestPenaltyParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            PenaltyParameters(p_a=-1.0, p_na=0.0)

    def test_defaults_have_all_apps(self):
        assert set(DEFAULT_PENALTIES) == {"MVA", "MATRIX", "GRAVITY"}

    def test_defaults_pa_below_pna(self):
        """Affinity resumes are always cheaper than migrations."""
        for params in DEFAULT_PENALTIES.values():
            assert params.p_a < params.p_na
