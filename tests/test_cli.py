"""Command line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_apps_defaults(self):
        args = build_parser().parse_args(["apps"])
        assert args.processors == 16
        assert args.seed == 0

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "7", "apps"])
        assert args.seed == 7

    def test_fig5_mix_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--mix", "9"])

    def test_table1_scale(self):
        args = build_parser().parse_args(["table1", "--scale", "32"])
        assert args.scale == 32

    def test_table1_full_fidelity_scale_accepted(self):
        args = build_parser().parse_args(["table1", "--scale", "1"])
        assert args.scale == 1

    @pytest.mark.parametrize("bad", ["0", "-4"])
    def test_scale_must_be_positive(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", bad])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["all", "--scale", bad])


class TestCommands:
    def test_apps_output(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "MVA" in out and "MATRIX" in out and "GRAVITY" in out
        assert "average processor demand" in out

    def test_fig5_single_mix(self, capsys):
        assert main(["fig5", "--mix", "1", "-r", "2"]) == 0
        out = capsys.readouterr().out
        assert "Workload #1" in out
        assert "Dyn-Aff" in out

    def test_table4_output(self, capsys):
        assert main(["table4", "-r", "1"]) == 0
        out = capsys.readouterr().out
        assert "#1" in out and "#4" in out
        assert "Dyn-Aff-NoPri" in out

    def test_future_single_mix(self, capsys):
        assert main(["future", "--mix", "1", "-r", "2"]) == 0
        out = capsys.readouterr().out
        assert "processor-speed x cache-size" in out

    def test_table1_fast_scale(self, capsys):
        assert main(["table1", "--scale", "128"]) == 0
        out = capsys.readouterr().out
        assert "Q = 25 msec." in out
        assert "P^NA" in out
