"""Crash-safe artifact writes: all-or-nothing at the destination path."""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.ioutil import (
    TMP_PREFIX,
    atomic_open,
    atomic_write_bytes,
    atomic_write_text,
)

SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


class TestAtomicWrite:
    def test_text_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "hello\n")
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == "hello\n"

    def test_bytes_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"\x00\x01\xff")
        with open(path, "rb") as fh:
            assert fh.read() == b"\x00\x01\xff"

    def test_overwrites_existing(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == "new"

    def test_no_temp_debris_after_success(self, tmp_path):
        atomic_write_text(str(tmp_path / "out.txt"), "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_exact_newlines_preserved(self, tmp_path):
        # newline="" in text mode: what you write is what lands.
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "a\r\nb\n")
        with open(path, "rb") as fh:
            assert fh.read() == b"a\r\nb\n"


class TestAtomicOpen:
    def test_read_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="write mode"):
            with atomic_open(str(tmp_path / "x"), "r"):
                pass

    def test_exception_leaves_destination_and_no_debris(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "original")
        with pytest.raises(RuntimeError):
            with atomic_open(path) as fh:
                fh.write("half-finished")
                raise RuntimeError("abort")
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == "original"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_destination_absent_until_exit(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with atomic_open(path) as fh:
            fh.write("data")
            fh.flush()
            assert not os.path.exists(path)
        assert os.path.exists(path)


VICTIM = """\
import os, signal, sys

from repro.ioutil import atomic_open

path, ready = sys.argv[1], sys.argv[2]
with atomic_open(path) as fh:
    fh.write("NEW CONTENT " * 4096)
    fh.flush()
    # Signal the parent that bytes are in flight, then wait to be killed.
    with open(ready, "w") as marker:
        marker.write("ready")
    signal.pause()
"""


def test_sigkill_mid_write_leaves_destination_untouched(tmp_path):
    """The regression this module exists for: a process killed between
    opening the temp file and the final rename must leave the previous
    artifact intact — never a truncated hybrid at the destination."""
    path = tmp_path / "artifact.json"
    path.write_text("OLD CONTENT", encoding="utf-8")
    ready = tmp_path / "ready"

    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-c", VICTIM, str(path), str(ready)], env=env
    )
    try:
        deadline = time.monotonic() + 60
        while not ready.exists():
            assert proc.poll() is None, "victim died before writing"
            assert time.monotonic() < deadline, "victim never became ready"
            time.sleep(0.01)
        proc.kill()
    finally:
        proc.wait(timeout=60)
    assert proc.returncode == -signal.SIGKILL

    # Destination: exactly the old bytes.  In-flight temp file: orphaned
    # next to it under the greppable prefix, never *at* the destination.
    assert path.read_text(encoding="utf-8") == "OLD CONTENT"
    debris = [name for name in os.listdir(tmp_path)
              if name not in ("artifact.json", "ready")]
    assert all(name.startswith(TMP_PREFIX) for name in debris)
