"""CLI subcommands added beyond the paper's figures."""

import pytest

from repro.cli import build_parser, main


class TestGantt:
    def test_renders_timelines(self, capsys):
        assert main(["gantt", "--mix", "1"]) == 0
        out = capsys.readouterr().out
        assert "Equipartition" in out
        assert "cpu  0" in out
        assert "legend:" in out

    def test_mix_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gantt", "--mix", "42"])


class TestSection8:
    def test_prints_all_four_schedulers(self, capsys):
        assert main(["section8", "--mix", "1"]) == 0
        out = capsys.readouterr().out
        for name in ("TimeSharing", "TimeSharing-Aff", "Dynamic", "Dyn-Aff"):
            assert name in out
        assert "reallocs" in out


class TestHierarchy:
    def test_prints_sqrt_law_table(self, capsys):
        assert main(["hierarchy"]) == 0
        out = capsys.readouterr().out
        assert "required L2 hit rate" in out
        assert "sqrt(speed)" in out
        # Feasibility flips within the table.
        assert "True" in out and "False" in out


class TestFig5Csv:
    def test_csv_file_written(self, tmp_path, capsys):
        target = tmp_path / "fig5.csv"
        assert main(["fig5", "--mix", "1", "-r", "2", "--csv", str(target)]) == 0
        content = target.read_text()
        header = content.splitlines()[0]
        assert header.startswith("mix,policy,job,response_time_s")
        # 4 policies x 2 jobs = 8 data rows.
        assert len(content.strip().splitlines()) == 9
        assert "wrote 8 rows" in capsys.readouterr().out
