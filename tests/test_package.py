"""Top-level package surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_policies_exported(self):
        assert repro.POLICIES["Dynamic"] is repro.DYNAMIC
        assert repro.POLICIES["Equipartition"] is repro.EQUIPARTITION

    def test_quickstart_snippet_runs(self):
        """The README/docstring quickstart must keep working."""
        result = repro.run_mix(1, repro.DYN_AFF, seed=1)
        assert result.mean_response_time() > 0

    def test_applications_registry(self):
        assert set(repro.APPLICATIONS) == {"MVA", "MATRIX", "GRAVITY"}

    def test_machine_constants(self):
        assert repro.SEQUENT_SYMMETRY.n_processors == 20
        fast = repro.future_machine(4.0, 2.0)
        assert fast.processor_speed == 4.0
