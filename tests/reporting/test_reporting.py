"""Table/figure rendering and CSV export."""

import pytest

from repro.measure.penalty import PenaltyResult, PenaltyTable, RegimeRun
from repro.reporting.export import rows_to_csv
from repro.reporting.figures import ascii_chart, parallelism_histogram
from repro.reporting.tables import format_table, render_table1, render_table4
from repro.threads.graph import ParallelismProfile


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "a" in lines[3]
        assert "2.5" in lines[4]

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159265]])
        assert "3.142" in text


class TestRenderTable1:
    def make_table(self):
        def run(rt, switches):
            return RegimeRun(response_time=rt, n_switches=switches, hit_rate=0.9)

        result = PenaltyResult(
            app="MVA",
            q_s=0.025,
            stationary=run(10.0, 100),
            migrating=run(10.1, 100),
            multiprog={"MVA": run(10.05, 100)},
        )
        return PenaltyTable(results={("MVA", 0.025): result}, partner_names=("MVA",))

    def test_renders_us_values(self):
        text = render_table1(self.make_table())
        assert "Q = 25 msec." in text
        assert "P^NA" in text
        # (10.1 - 10.0) / 100 switches = 1 ms = 1000 us
        assert "1000" in text

    def test_penalty_properties(self):
        table = self.make_table()
        result = table.result("MVA", 0.025)
        assert result.p_na_us == pytest.approx(1000.0)
        assert result.p_a_us("MVA") == pytest.approx(500.0)


class TestRenderTable4:
    def test_rows_per_mix(self):
        text = render_table4({1: {"Dyn-Aff": 12.3, "Dyn-Aff-NoPri": 12.5}})
        assert "#1" in text
        assert "12.3" in text and "12.5" in text


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"a": [(1, 1.0), (10, 2.0)], "b": [(1, 2.0), (10, 1.0)]},
            title="demo",
        )
        assert "demo" in chart
        assert "* = a" in chart and "o = b" in chart
        assert "*" in chart

    def test_log_axis_labels(self):
        chart = ascii_chart({"a": [(1, 1.0), (1e6, 2.0)]}, log_x=True)
        assert "1e+06" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"a": [(1, 1.0), (2, 1.0)]})
        assert "*" in chart


class TestParallelismHistogram:
    def test_shows_levels_and_summary(self):
        profile = ParallelismProfile(
            time_at_level={1: 0.25, 4: 0.75},
            execution_time=12.5,
            average_demand=3.25,
            n_processors=16,
        )
        text = parallelism_histogram(profile, "MVA")
        assert "MVA" in text
        assert "25.0%" in text and "75.0%" in text
        assert "12.50 s" in text
        assert "3.25" in text


class TestCsvExport:
    def test_round_trip(self):
        csv_text = rows_to_csv(["a", "b"], [[1, "x"], [2, "y,z"]])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[2] == '2,"y,z"'

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            rows_to_csv(["a"], [[1, 2]])
