"""Benchmark-regression gate: fresh pytest-benchmark JSON vs baseline."""

import json

import pytest

from repro.reporting.bench_report import (
    DEFAULT_THRESHOLD,
    BenchDelta,
    compare_benchmarks,
    load_benchmark_means,
    render_bench_report,
)


def write_bench(path, means):
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestLoad:
    def test_loads_means(self, tmp_path):
        path = write_bench(tmp_path / "b.json", {"t_a": 0.5, "t_b": 1.25})
        assert load_benchmark_means(path) == {"t_a": 0.5, "t_b": 1.25}

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_benchmark_means(str(tmp_path / "nope.json"))

    def test_not_json(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_benchmark_means(str(path))

    def test_not_pytest_benchmark_output(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"results": []}), encoding="utf-8")
        with pytest.raises(ValueError, match="benchmarks"):
            load_benchmark_means(str(path))

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"benchmarks": [{"name": "x"}]}), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="malformed"):
            load_benchmark_means(str(path))


class TestCompare:
    def test_within_threshold_passes(self, tmp_path):
        base = write_bench(tmp_path / "base.json", {"t_a": 1.0, "t_b": 2.0})
        fresh = write_bench(tmp_path / "fresh.json", {"t_a": 1.2, "t_b": 1.9})
        report = compare_benchmarks(fresh, base)
        assert report.threshold == DEFAULT_THRESHOLD
        assert report.regressions == ()
        assert "OK:" in render_bench_report(report)

    def test_regression_is_flagged_worst_first(self, tmp_path):
        base = write_bench(tmp_path / "base.json",
                           {"t_a": 1.0, "t_b": 1.0, "t_c": 1.0})
        fresh = write_bench(tmp_path / "fresh.json",
                            {"t_a": 1.5, "t_b": 3.0, "t_c": 1.0})
        report = compare_benchmarks(fresh, base)
        assert [d.name for d in report.regressions] == ["t_b", "t_a"]
        rendered = render_bench_report(report)
        assert "REGRESSION" in rendered
        assert "FAIL: 2 benchmark(s)" in rendered

    def test_new_and_missing_never_fail(self, tmp_path):
        base = write_bench(tmp_path / "base.json", {"t_old": 1.0})
        fresh = write_bench(tmp_path / "fresh.json", {"t_new": 9.0})
        report = compare_benchmarks(fresh, base)
        assert report.new == ("t_new",)
        assert report.missing == ("t_old",)
        assert report.regressions == ()
        assert "OK:" in render_bench_report(report)

    def test_threshold_is_configurable(self, tmp_path):
        base = write_bench(tmp_path / "base.json", {"t_a": 1.0})
        fresh = write_bench(tmp_path / "fresh.json", {"t_a": 1.1})
        assert compare_benchmarks(fresh, base, threshold=1.05).regressions
        assert not compare_benchmarks(fresh, base, threshold=1.2).regressions

    def test_bad_threshold(self, tmp_path):
        base = write_bench(tmp_path / "b.json", {"t": 1.0})
        with pytest.raises(ValueError, match="positive"):
            compare_benchmarks(base, base, threshold=0)


class TestMoreLoadFailures:
    def test_top_level_list_is_not_benchmark_output(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps([{"name": "t"}]), encoding="utf-8")
        with pytest.raises(ValueError, match="not pytest-benchmark output"):
            load_benchmark_means(str(path))

    def test_non_string_name(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"benchmarks": [{"name": 7, "stats": {"mean": 1.0}}]}),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="non-string name"):
            load_benchmark_means(str(path))

    def test_non_numeric_mean_is_malformed(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"benchmarks": [
                {"name": "t", "stats": {"mean": "fast"}}
            ]}),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="malformed benchmark entry #0"):
            load_benchmark_means(str(path))


class TestCli:
    """`repro bench-report` turns every load failure into a diagnostic on
    stderr and exit 1 — never a raw traceback."""

    def run(self, argv, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        captured = capsys.readouterr()
        assert excinfo.value.code == 1
        return captured.err

    def test_missing_fresh_file(self, tmp_path, capsys):
        base = write_bench(tmp_path / "base.json", {"t": 1.0})
        err = self.run(
            ["bench-report", str(tmp_path / "nope.json"), "--baseline", base],
            capsys,
        )
        assert "error:" in err and "cannot read" in err

    def test_invalid_json_in_fresh(self, tmp_path, capsys):
        base = write_bench(tmp_path / "base.json", {"t": 1.0})
        bad = tmp_path / "fresh.json"
        bad.write_text("{broken", encoding="utf-8")
        err = self.run(
            ["bench-report", str(bad), "--baseline", base], capsys
        )
        assert "error:" in err and "not valid JSON" in err

    def test_malformed_baseline(self, tmp_path, capsys):
        fresh = write_bench(tmp_path / "fresh.json", {"t": 1.0})
        bad = tmp_path / "base.json"
        bad.write_text(json.dumps({"benchmarks": [{}]}), encoding="utf-8")
        err = self.run(
            ["bench-report", fresh, "--baseline", str(bad)], capsys
        )
        assert "error:" in err and "malformed" in err

    def test_missing_baseline(self, tmp_path, capsys):
        fresh = write_bench(tmp_path / "fresh.json", {"t": 1.0})
        err = self.run(
            ["bench-report", fresh,
             "--baseline", str(tmp_path / "gone.json")],
            capsys,
        )
        assert "error:" in err and "cannot read" in err

    def test_clean_comparison_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        fresh = write_bench(tmp_path / "fresh.json", {"t": 1.0})
        assert main(["bench-report", fresh, "--baseline", fresh]) == 0
        assert "OK:" in capsys.readouterr().out


class TestRatio:
    def test_zero_baseline_nonzero_fresh_is_infinite(self):
        assert BenchDelta("t", 0.0, 0.5).ratio == float("inf")

    def test_both_zero_is_flat(self):
        assert BenchDelta("t", 0.0, 0.0).ratio == 1.0


def test_committed_baseline_compares_clean_against_itself():
    """The repo's own BENCH_simulator.json is valid input and self-equal."""
    import pathlib

    baseline = str(
        pathlib.Path(__file__).resolve().parents[2] / "BENCH_simulator.json"
    )
    report = compare_benchmarks(baseline, baseline)
    assert report.deltas, "committed baseline has no benchmarks?"
    assert report.regressions == ()
    assert all(d.ratio == 1.0 for d in report.deltas)
