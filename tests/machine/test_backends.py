"""The differential backend harness: numpy must equal the scalar spec.

The scalar backend is the executable reference specification; every
test here drives it and the vectorized numpy backend over the same
inputs — random geometries, owner churn, arbitrary chunkings — and
asserts *exact* agreement: hits per chunk, final way-by-way tag state,
query results, regime-driver switch counts, and response times.

Also covers backend selection (CLI > ``REPRO_BACKEND`` env var >
default) and the 2**40 block-range validation added alongside the
backend split (a block ≥ 2**40 used to alias silently into another
owner's id bits).
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import MATRIX, MVA
from repro.machine.backends import (
    BACKEND_ENV_VAR,
    BLOCK_MASK,
    make_backend,
    numpy_available,
    resolve_backend_name,
)
from repro.machine.cache import SetAssociativeCache
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.machine.processor import Processor
from repro.measure.penalty import PenaltyExperiment

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend requires numpy"
)


def tiny_spec(sets: int = 8, assoc: int = 2) -> MachineSpec:
    line = 16
    return dataclasses.replace(
        SEQUENT_SYMMETRY, cache_size_bytes=sets * assoc * line, associativity=assoc
    )


class TestSelection:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend_name() == "scalar"
        assert SetAssociativeCache(tiny_spec()).backend_name == "scalar"

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
        assert resolve_backend_name() == "scalar"

    @needs_numpy
    def test_env_var_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert SetAssociativeCache(tiny_spec()).backend_name == "numpy"

    @needs_numpy
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        cache = SetAssociativeCache(tiny_spec(), backend="scalar")
        assert cache.backend_name == "scalar"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend_name("fortran")
        with pytest.raises(ValueError):
            SetAssociativeCache(tiny_spec(), backend="fortran")

    def test_unknown_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(ValueError):
            SetAssociativeCache(tiny_spec())

    @needs_numpy
    @pytest.mark.parametrize("sets,assoc", [(8, 4), (5, 2), (6, 4)])
    def test_numpy_falls_back_on_unsupported_geometry(self, sets, assoc):
        """The vectorized kernel covers only 2-way power-of-two sets."""
        cache = SetAssociativeCache(tiny_spec(sets, assoc), backend="numpy")
        assert cache.backend_name == "scalar"

    def test_make_backend_reports_name(self):
        backend = make_backend("scalar", tiny_spec())
        assert backend.name == "scalar"


class TestBlockRangeValidation:
    """Satellite regression: packed tags reserve 40 bits for the block."""

    @pytest.fixture(params=["scalar"] + (["numpy"] if numpy_available() else []))
    def cache(self, request):
        return SetAssociativeCache(tiny_spec(), backend=request.param)

    def test_boundary_block_accepted(self, cache):
        assert cache.access("t", BLOCK_MASK) is False
        assert cache.access("t", BLOCK_MASK) is True
        assert cache.contains("t", BLOCK_MASK)

    def test_block_at_2_40_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.access("t", 1 << 40)
        with pytest.raises(ValueError):
            cache.access_batch("t", [0, 1, 1 << 40])

    def test_negative_block_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.access_batch("t", [3, -1])

    def test_rejected_chunk_leaves_state_untouched(self, cache):
        """Validation is whole-chunk and up-front, not mid-loop."""
        cache.access_batch("a", [0, 1, 2])
        before = cache._backend.snapshot()
        with pytest.raises(ValueError):
            cache.access_batch("a", [3, 4, 1 << 40])
        assert cache._backend.snapshot() == before
        assert cache.stats.accesses == 3

    def test_contains_rejects_out_of_range(self, cache):
        """Pre-fix, contains() aliased block 2**40 into owner_id + 1."""
        cache.access("a", 0)
        cache.access("b", 0)  # owner id 1: tag (1 << 40) + 0
        with pytest.raises(ValueError):
            cache.contains("a", 1 << 40)

    def test_dict_fallback_validates_too(self):
        cache = SetAssociativeCache(tiny_spec(5, 4))
        with pytest.raises(ValueError):
            cache.access_batch("t", [1 << 40])


@needs_numpy
class TestDifferentialParity:
    """Scalar vs numpy over random geometries, owner churn, chunkings."""

    def _pair(self, sets):
        spec = tiny_spec(sets)
        return (
            SetAssociativeCache(spec, backend="scalar"),
            SetAssociativeCache(spec, backend="numpy"),
        )

    @settings(max_examples=60, deadline=None)
    @given(
        sets=st.sampled_from([1, 2, 8, 64, 512]),
        seed=st.integers(0, 10_000),
        n_steps=st.integers(1, 12),
    )
    def test_property_hits_state_and_queries_agree(self, sets, seed, n_steps):
        scalar, vector = self._pair(sets)
        rng = random.Random(seed)
        owners = ["a", "b", "c", "d"]
        for _ in range(n_steps):
            owner = rng.choice(owners)
            blocks = [
                rng.randrange(0, sets * 4) for _ in range(rng.randint(1, 300))
            ]
            assert scalar.access_batch(owner, blocks) == vector.access_batch(
                owner, blocks
            )
            if rng.random() < 0.25:
                victim = rng.choice(owners)
                assert scalar.evict_owner(victim) == vector.evict_owner(victim)
            if rng.random() < 0.1:
                assert scalar.flush() == vector.flush()
        assert scalar._backend.snapshot() == vector._backend.snapshot()
        assert scalar.resident_lines() == vector.resident_lines()
        for owner in owners:
            assert scalar.footprint(owner) == vector.footprint(owner)
            for block in range(min(sets * 4, 64)):
                assert scalar.contains(owner, block) == vector.contains(
                    owner, block
                )
        for index in range(min(sets, 64)):
            assert scalar.set_occupancy(index) == vector.set_occupancy(index)

    @settings(max_examples=30, deadline=None)
    @given(
        blocks=st.lists(st.integers(0, 99), min_size=1, max_size=400),
        data=st.data(),
    )
    def test_property_chunking_invariance(self, blocks, data):
        """Any split of the same stream yields identical hits and state."""
        scalar, vector = self._pair(16)
        i = 0
        while i < len(blocks):
            j = data.draw(st.integers(i + 1, len(blocks)), label="chunk end")
            assert scalar.access_batch("t", blocks[i:j]) == vector.access_batch(
                "t", blocks[i:j]
            )
            i = j
        assert scalar._backend.snapshot() == vector._backend.snapshot()

    def test_owner_id_recycling_keeps_parity(self):
        """Churn far past the gc limit so ids recycle on both backends."""
        spec = tiny_spec(8)
        scalar = SetAssociativeCache(spec, backend="scalar")
        vector = SetAssociativeCache(spec, backend="numpy")
        rng = random.Random(5)
        for step in range(300):
            owner = f"task-{step}"
            blocks = [rng.randrange(0, 32) for _ in range(rng.randint(1, 40))]
            assert scalar.access_batch(owner, blocks) == vector.access_batch(
                owner, blocks
            )
        assert scalar._backend.snapshot() == vector._backend.snapshot()
        assert scalar.owner_lines() == vector.owner_lines()

    def test_big_blocks_do_not_alias_after_narrowing(self):
        """Regression: stale wide tags must never alias under int32 math."""
        scalar, vector = self._pair(8)
        big = [(1 << 30) + 3, BLOCK_MASK, 5, (1 << 30) + 3, BLOCK_MASK, 5]
        assert scalar.access_batch("t", big) == vector.access_batch("t", big)
        # Follow-up small-block chunks would be int32-eligible; the
        # sticky wide flag must keep them exact anyway.
        for _ in range(3):
            small = [3, 11, 3, (1 << 30) + 3 & 0x7, 19]
            assert scalar.access_batch("t", small) == vector.access_batch(
                "t", small
            )
        assert scalar._backend.snapshot() == vector._backend.snapshot()

    def test_stats_and_hit_rate_agree(self):
        scalar, vector = self._pair(8)
        blocks = [(i * 7) % 48 for i in range(5000)]
        scalar.access_batch("t", blocks)
        vector.access_batch("t", blocks)
        assert scalar.stats.hits == vector.stats.hits
        assert scalar.stats.misses == vector.stats.misses
        assert scalar.stats.hit_rate == vector.stats.hit_rate


@needs_numpy
class TestDriverParity:
    """Backend choice must not move a single scheduling decision."""

    def test_touch_batch_costs_bit_identical(self):
        spec = tiny_spec(64)
        a = Processor(0, spec, backend="scalar")
        b = Processor(0, spec, backend="numpy")
        rng = random.Random(9)
        for _ in range(50):
            blocks = [rng.randrange(0, 256) for _ in range(rng.randint(1, 500))]
            assert a.touch_batch("t", blocks, 4) == b.touch_batch("t", blocks, 4)
        assert a.busy_time == b.busy_time

    def test_penalty_regimes_identical(self):
        """Switch counts exactly equal, response times to 1e-12 (here: exact)."""
        results = {}
        for backend in ("scalar", "numpy"):
            exp = PenaltyExperiment(
                scale=64, n_switches_target=10, min_run_s=0.4, backend=backend
            )
            results[backend] = exp.measure(MVA, 0.05, partners=(MATRIX,))
        a, b = results["scalar"], results["numpy"]
        for run_a, run_b in (
            (a.stationary, b.stationary),
            (a.migrating, b.migrating),
            (a.multiprog["MATRIX"], b.multiprog["MATRIX"]),
        ):
            assert run_a.n_switches == run_b.n_switches
            assert run_a.response_time == run_b.response_time
            assert run_a.hit_rate == run_b.hit_rate
        assert a.p_na_s == b.p_na_s
        assert a.p_a_s("MATRIX") == b.p_a_s("MATRIX")
