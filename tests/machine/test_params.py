"""Machine spec arithmetic and scaling."""

import pytest

from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec, future_machine


class TestSequentSymmetry:
    """The constants the paper states for its testbed."""

    def test_twenty_processors(self):
        assert SEQUENT_SYMMETRY.n_processors == 20

    def test_cache_geometry(self):
        assert SEQUENT_SYMMETRY.cache_size_bytes == 64 * 1024
        assert SEQUENT_SYMMETRY.associativity == 2
        assert SEQUENT_SYMMETRY.line_size_bytes == 16

    def test_4096_lines_2048_sets(self):
        assert SEQUENT_SYMMETRY.cache_lines == 4096
        assert SEQUENT_SYMMETRY.cache_sets == 2048

    def test_full_fill_time_is_3072_usec(self):
        """The paper: 3.072 msec to fill the whole cache."""
        assert SEQUENT_SYMMETRY.full_fill_time_s == pytest.approx(3.072e-3)

    def test_context_switch_is_750_usec(self):
        assert SEQUENT_SYMMETRY.context_switch_s == pytest.approx(750e-6)

    def test_miss_time_is_750_nsec(self):
        assert SEQUENT_SYMMETRY.miss_time_s == pytest.approx(0.75e-6)


class TestValidation:
    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", 0, 16.0, 1024, 2, 16, 1e-6, 1e-7, 1e-4)

    def test_rejects_ragged_cache(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", 1, 16.0, 1000, 3, 16, 1e-6, 1e-7, 1e-4)

    def test_rejects_miss_cheaper_than_hit(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", 1, 16.0, 1024, 2, 16, 1e-8, 1e-7, 1e-4)


class TestFutureScaling:
    """Section 7.1's assumptions."""

    def test_compute_scales_linearly(self):
        fast = future_machine(processor_speed=4.0, cache_size_factor=1.0)
        assert fast.hit_time_s == pytest.approx(SEQUENT_SYMMETRY.hit_time_s / 4)
        assert fast.context_switch_s == pytest.approx(SEQUENT_SYMMETRY.context_switch_s / 4)

    def test_miss_resolution_scales_as_sqrt(self):
        fast = future_machine(processor_speed=4.0, cache_size_factor=1.0)
        assert fast.miss_time_s == pytest.approx(SEQUENT_SYMMETRY.miss_time_s / 2)

    def test_cache_grows_linearly(self):
        big = future_machine(processor_speed=1.0, cache_size_factor=4.0)
        assert big.cache_lines == 4 * SEQUENT_SYMMETRY.cache_lines

    def test_scale_factors_compose(self):
        machine = future_machine(2.0, 2.0).scaled(3.0, 4.0)
        assert machine.processor_speed == pytest.approx(6.0)
        assert machine.cache_size_factor == pytest.approx(8.0)

    def test_rejects_non_positive_factors(self):
        with pytest.raises(ValueError):
            future_machine(0.0, 1.0)
        with pytest.raises(ValueError):
            future_machine(1.0, -2.0)
