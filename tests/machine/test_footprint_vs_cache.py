"""Agreement between the analytic footprint model and the stateful cache.

The scheduling simulations trust :class:`FootprintModel`; these tests
cross-validate its two central approximations against the real
set-associative simulator:

1. working-set growth — the curve derived from a ``ReferenceSpec``
   predicts the distinct-line footprint the trace actually builds;
2. survival decay — the exponential survival law predicts how much of a
   departed footprint an intervening task's activity leaves behind.
"""

import pytest

from repro.apps.reference import ReferenceGenerator, ReferenceSpec, reduced_machine
from repro.engine.rng import RngRegistry
from repro.machine.cache import SetAssociativeCache
from repro.machine.footprint import FootprintModel
from repro.machine.params import SEQUENT_SYMMETRY

SCALE = 16


def run_trace(cache, spec, owner, seconds, machine, rng):
    """Drive ``owner``'s reference stream for ``seconds`` of virtual time."""
    gen = ReferenceGenerator(spec, rng)
    elapsed = 0.0
    while elapsed < seconds:
        hit = cache.access(owner, gen.next_block())
        if hit:
            elapsed += spec.refs_per_touch * machine.hit_time_s
        else:
            elapsed += machine.miss_time_s + (spec.refs_per_touch - 1) * machine.hit_time_s
    return elapsed


@pytest.fixture
def machine():
    return reduced_machine(SEQUENT_SYMMETRY, SCALE)


@pytest.fixture
def spec():
    # A mid-sized uniform stream (MVA-like constants).
    return ReferenceSpec(
        data_blocks=3500, p_reuse=0.95, refs_per_touch=20, reuse_window=512
    ).reduced(SCALE)


class TestWorkingSetGrowth:
    @pytest.mark.parametrize("seconds", [0.025, 0.1, 0.4])
    def test_curve_predicts_footprint(self, machine, spec, seconds):
        """Measured distinct lines within 30% of the derived curve."""
        cache = SetAssociativeCache(machine)
        rng = RngRegistry(1).stream("trace")
        run_trace(cache, spec, "t", seconds, machine, rng)
        measured = cache.footprint("t")
        predicted = min(
            spec.footprint_curve(machine).distinct_blocks(seconds),
            machine.cache_lines,
        )
        assert measured == pytest.approx(predicted, rel=0.30)

    def test_sequential_curve_predicts_post_warmup_reload(self, machine):
        """The linear curve models a *warmed-up* task's reload footprint.

        Cold starts build only the scan component; once the hot window is
        populated, a flushed task re-touches hot + rate x d lines in its
        next stint — which is what the reload penalty prices.
        """
        seq = ReferenceSpec(
            data_blocks=3500,
            p_reuse=0.9875,
            refs_per_touch=20,
            reuse_window=1100,
            cold_pattern="sequential",
        ).reduced(SCALE)
        cache = SetAssociativeCache(machine)
        rng = RngRegistry(1).stream("trace")
        gen = ReferenceGenerator(seq, rng)
        # Warm up well past the window-fill time, then flush (migration).
        elapsed = 0.0
        while elapsed < 0.5:
            hit = cache.access("t", gen.next_block())
            elapsed += (
                seq.refs_per_touch * machine.hit_time_s
                if hit
                else machine.miss_time_s + (seq.refs_per_touch - 1) * machine.hit_time_s
            )
        cache.flush()
        elapsed = 0.0
        while elapsed < 0.2:
            hit = cache.access("t", gen.next_block())
            elapsed += (
                seq.refs_per_touch * machine.hit_time_s
                if hit
                else machine.miss_time_s + (seq.refs_per_touch - 1) * machine.hit_time_s
            )
        measured = cache.footprint("t")
        predicted = min(
            seq.footprint_curve(machine).distinct_blocks(0.2), machine.cache_lines
        )
        assert measured == pytest.approx(predicted, rel=0.30)


class TestSurvivalDecay:
    def test_exponential_survival_matches_cache(self, machine, spec):
        """Survival after an intervening task within 12 points of the model."""
        cache = SetAssociativeCache(machine)
        rng = RngRegistry(2)
        run_trace(cache, spec, "victim", 0.2, machine, rng.stream("victim"))
        footprint_before = cache.footprint("victim")
        usage_before = cache.resident_lines()

        model = FootprintModel(machine)
        curve = spec.footprint_curve(machine)
        model.note_run("victim", 0, 0.2, curve)
        model.state_of("victim").footprint = float(footprint_before)

        run_trace(cache, spec, "intruder", 0.2, machine, rng.stream("intruder"))
        model.note_run("intruder", 0, 0.2, curve)

        measured_fraction = cache.footprint("victim") / footprint_before
        predicted_fraction = (
            model.surviving_footprint("victim", 0) / footprint_before
        )
        del usage_before
        assert measured_fraction == pytest.approx(predicted_fraction, abs=0.12)

    def test_more_interference_means_less_survival_in_both(self, machine, spec):
        fractions = []
        for interference in (0.05, 0.4):
            cache = SetAssociativeCache(machine)
            rng = RngRegistry(3)
            run_trace(cache, spec, "victim", 0.2, machine, rng.stream("victim"))
            before = cache.footprint("victim")
            run_trace(cache, spec, "intruder", interference, machine, rng.stream("x"))
            fractions.append(cache.footprint("victim") / before)
        assert fractions[1] < fractions[0]
