"""Set-associative cache simulator: geometry, LRU, owner accounting."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import SetAssociativeCache
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec


def tiny_spec(sets: int = 4, assoc: int = 2) -> MachineSpec:
    """A small cache whose evictions are easy to reason about."""
    line = 16
    return dataclasses.replace(
        SEQUENT_SYMMETRY, cache_size_bytes=sets * assoc * line
    )


class TestBasics:
    def test_first_access_misses(self):
        cache = SetAssociativeCache(tiny_spec())
        assert cache.access("t", 0) is False

    def test_second_access_hits(self):
        cache = SetAssociativeCache(tiny_spec())
        cache.access("t", 0)
        assert cache.access("t", 0) is True

    def test_different_owners_do_not_share_lines(self):
        cache = SetAssociativeCache(tiny_spec())
        cache.access("a", 0)
        assert cache.access("b", 0) is False

    def test_stats_count_hits_and_misses(self):
        cache = SetAssociativeCache(tiny_spec())
        cache.access("t", 0)
        cache.access("t", 0)
        cache.access("t", 1)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_contains_does_not_disturb_lru(self):
        cache = SetAssociativeCache(tiny_spec(sets=1, assoc=2))
        cache.access("t", 0)
        cache.access("t", 1)
        # Peek at 0 (LRU), then insert a conflicting block: 0 must still
        # be the victim because contains() must not refresh recency.
        assert cache.contains("t", 0)
        cache.access("t", 2)
        assert not cache.contains("t", 0)
        assert cache.contains("t", 1)


class TestLru:
    def test_lru_eviction_in_one_set(self):
        cache = SetAssociativeCache(tiny_spec(sets=1, assoc=2))
        cache.access("t", 0)
        cache.access("t", 1)
        cache.access("t", 0)  # 1 becomes LRU
        cache.access("t", 2)  # evicts 1
        assert cache.contains("t", 0)
        assert not cache.contains("t", 1)

    def test_set_indexing_by_modulo(self):
        cache = SetAssociativeCache(tiny_spec(sets=4, assoc=2))
        cache.access("t", 0)
        cache.access("t", 4)  # same set as 0
        cache.access("t", 1)  # different set
        assert cache.set_occupancy(0) == 2
        assert cache.set_occupancy(1) == 1

    def test_capacity_bounded_by_associativity(self):
        cache = SetAssociativeCache(tiny_spec(sets=2, assoc=2))
        for block in range(0, 12, 2):  # all map to set 0
            cache.access("t", block)
        assert cache.set_occupancy(0) == 2


class TestFlushAndEvict:
    def test_flush_empties_cache(self):
        cache = SetAssociativeCache(tiny_spec())
        for block in range(5):
            cache.access("t", block)
        dropped = cache.flush()
        assert dropped == 5
        assert cache.resident_lines() == 0
        assert cache.footprint("t") == 0

    def test_all_miss_after_flush(self):
        cache = SetAssociativeCache(tiny_spec())
        cache.access("t", 0)
        cache.flush()
        assert cache.access("t", 0) is False

    def test_evict_owner_leaves_others(self):
        cache = SetAssociativeCache(tiny_spec())
        cache.access("a", 0)
        cache.access("b", 1)
        dropped = cache.evict_owner("a")
        assert dropped == 1
        assert not cache.contains("a", 0)
        assert cache.contains("b", 1)
        assert cache.footprint("a") == 0
        assert cache.footprint("b") == 1


class TestFootprint:
    def test_footprint_counts_distinct_lines(self):
        cache = SetAssociativeCache(tiny_spec())
        for block in (0, 1, 2, 0, 1):
            cache.access("t", block)
        assert cache.footprint("t") == 3

    def test_footprint_decreases_on_eviction_by_other_owner(self):
        cache = SetAssociativeCache(tiny_spec(sets=1, assoc=2))
        cache.access("a", 0)
        cache.access("a", 1)
        cache.access("b", 2)
        cache.access("b", 3)
        assert cache.footprint("a") == 0
        assert cache.footprint("b") == 2

    def test_owner_table_drops_zero_count_owners(self):
        """Regression: owners fully evicted by others stayed in the owner
        table forever, growing it without bound across long runs."""
        cache = SetAssociativeCache(tiny_spec(sets=1, assoc=2))
        for i in range(1000):
            cache.access(f"owner-{i}", i)  # each access evicts a prior owner
        assert len(cache.owner_lines()) <= 2
        # The interning tables are bounded too, even though the lazy index
        # only garbage-collects them at rebuild points.
        assert len(cache._owner_ids) <= cache._owner_gc_limit + 1

    def test_evict_owner_drops_owner_key(self):
        cache = SetAssociativeCache(tiny_spec())
        cache.access("a", 0)
        cache.evict_owner("a")
        assert "a" not in cache.owner_lines()
        assert cache.footprint("a") == 0

    def test_owner_lines_reports_live_owners(self):
        cache = SetAssociativeCache(tiny_spec())
        cache.access("a", 0)
        cache.access("a", 1)
        cache.access("b", 2)
        assert cache.owner_lines() == {"a": 2, "b": 1}


class TestAccessBatch:
    def test_batch_hit_count_matches_scalar(self):
        blocks = [0, 1, 0, 2, 1, 0, 5, 5]
        scalar = SetAssociativeCache(tiny_spec())
        hits_scalar = sum(scalar.access("t", b) for b in blocks)
        batch = SetAssociativeCache(tiny_spec())
        assert batch.access_batch("t", blocks) == hits_scalar

    def test_batch_rejects_nothing_and_counts_misses(self):
        cache = SetAssociativeCache(tiny_spec())
        assert cache.access_batch("t", []) == 0
        assert cache.stats.accesses == 0
        cache.access_batch("t", [0, 1, 0])
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1

    def test_scalar_rejects_negative_blocks(self):
        cache = SetAssociativeCache(tiny_spec())
        with pytest.raises(ValueError):
            cache.access("t", -1)

    @pytest.mark.parametrize("sets,assoc", [(8, 2), (8, 4), (3, 2), (5, 1)])
    def test_batch_equals_scalar_loop_any_geometry(self, sets, assoc):
        """Both storage layouts: flat 2-way fast path and dict fallback."""
        line = 16
        spec = dataclasses.replace(
            SEQUENT_SYMMETRY,
            cache_size_bytes=sets * assoc * line,
            associativity=assoc,
        )
        blocks = [(i * 7 + i * i) % (sets * assoc * 3) for i in range(200)]
        a = SetAssociativeCache(spec)
        for b in blocks:
            a.access("t", b)
        c = SetAssociativeCache(spec)
        c.access_batch("t", blocks)
        assert a.stats.hits == c.stats.hits
        assert a.stats.misses == c.stats.misses
        for b in range(sets * assoc * 3):
            assert a.contains("t", b) == c.contains("t", b)


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b"]), st.integers(0, 63)),
        max_size=300,
    ),
    st.data(),
)
def test_property_batch_equals_scalar(accesses, data):
    """Any chunking of an access trace leaves identical state and stats."""
    spec = tiny_spec(sets=8, assoc=2)
    scalar = SetAssociativeCache(spec)
    results = [scalar.access(owner, block) for owner, block in accesses]
    batched = SetAssociativeCache(spec)
    i = 0
    while i < len(accesses):
        # A batch call covers a run of consecutive same-owner accesses.
        owner = accesses[i][0]
        j_max = data.draw(st.integers(i + 1, len(accesses)), label="chunk end")
        j = i + 1
        while j < j_max and accesses[j][0] == owner:
            j += 1
        hits = batched.access_batch(owner, [b for _, b in accesses[i:j]])
        assert hits == sum(results[i:j])
        i = j
    assert batched.stats.hits == scalar.stats.hits
    assert batched.stats.misses == scalar.stats.misses
    for owner in ("a", "b"):
        assert batched.footprint(owner) == scalar.footprint(owner)
        for block in range(64):
            assert batched.contains(owner, block) == scalar.contains(owner, block)


@settings(max_examples=50)
@given(st.lists(st.tuples(st.sampled_from(["a", "b"]), st.integers(0, 63)), max_size=300))
def test_property_invariants(accesses):
    """Occupancy, footprint and stats invariants under arbitrary access mixes."""
    spec = tiny_spec(sets=8, assoc=2)
    cache = SetAssociativeCache(spec)
    for owner, block in accesses:
        cache.access(owner, block)
    # Per-set occupancy never exceeds associativity.
    assert all(cache.set_occupancy(i) <= 2 for i in range(8))
    # Footprints sum to resident lines.
    assert cache.footprint("a") + cache.footprint("b") == cache.resident_lines()
    # Accesses are conserved.
    assert cache.stats.accesses == len(accesses)


@settings(max_examples=30)
@given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
def test_property_rerun_after_flush_rebuilds_same_footprint(blocks):
    """Replaying a single-owner trace after a flush rebuilds the identical set."""
    cache = SetAssociativeCache(tiny_spec(sets=8, assoc=2))
    for block in blocks:
        cache.access("t", block)
    before = {b for b in range(32) if cache.contains("t", b)}
    cache.flush()
    for block in blocks:
        cache.access("t", block)
    after = {b for b in range(32) if cache.contains("t", b)}
    assert before == after
