"""The two-level cache analysis of Section 7.2."""

import math

import pytest

from repro.machine.hierarchy import TwoLevelCache, sqrt_memory_law_table


class TestEffectiveAccessTime:
    def test_base_machine_formula(self):
        cache = TwoLevelCache(
            l1_time_s=1.0, l2_time_s=4.0, memory_time_s=20.0,
            l1_hit_rate=0.9, l2_hit_rate=0.5,
        )
        expected = 0.9 * 1.0 + 0.1 * (0.5 * 4.0 + 0.5 * 20.0)
        assert cache.effective_access_time() == pytest.approx(expected)

    def test_combined_miss_fraction(self):
        cache = TwoLevelCache(l1_hit_rate=0.9, l2_hit_rate=0.5)
        assert cache.combined_miss_fraction == pytest.approx(0.05)

    def test_faster_processor_shrinks_on_chip_only(self):
        cache = TwoLevelCache()
        fast = cache.effective_access_time(processor_speed=10.0)
        # Memory term unchanged: time cannot drop by the full factor.
        assert fast > cache.effective_access_time() / 10.0

    def test_memory_speedup_attacks_the_residual(self):
        cache = TwoLevelCache()
        without = cache.effective_access_time(processor_speed=10.0)
        with_memory = cache.effective_access_time(10.0, memory_speedup=10.0)
        assert with_memory == pytest.approx(cache.effective_access_time() / 10.0)
        assert with_memory < without

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoLevelCache(l1_hit_rate=1.5)
        with pytest.raises(ValueError):
            TwoLevelCache(l1_time_s=2.0, l2_time_s=1.0)
        with pytest.raises(ValueError):
            TwoLevelCache().effective_access_time(processor_speed=0.0)


class TestMemoryWall:
    def test_speedup_saturates_with_constant_memory(self):
        """The memory wall: delivered speedup is bounded regardless of clock."""
        cache = TwoLevelCache()
        s100 = cache.effective_speedup(100.0)
        s10000 = cache.effective_speedup(10000.0)
        wall = cache.effective_access_time() / (
            cache.combined_miss_fraction * cache.memory_time_s
        )
        assert s100 < wall
        assert s10000 < wall
        assert s10000 - s100 < 0.2 * wall  # deep saturation

    def test_full_speedup_with_matching_memory(self):
        cache = TwoLevelCache()
        assert cache.effective_speedup(50.0, memory_speedup=50.0) == pytest.approx(50.0)


class TestRequiredHitRate:
    def test_modest_speedup_is_achievable(self):
        """At 2x, raising the L2 hit rate alone still works."""
        cache = TwoLevelCache()
        required = cache.required_l2_hit_rate(2.0)
        assert cache.l2_hit_rate < required <= cache.PRACTICAL_L2_CEILING

    def test_requirement_grows_with_speed(self):
        cache = TwoLevelCache()
        values = [cache.required_l2_hit_rate(s) for s in (2, 5, 10, 100)]
        assert values == sorted(values)

    def test_little_room_for_improvement(self):
        """The paper's finding: hit rates cannot be increased enough to
        obviate faster miss resolution (constant memory, 10x CPU)."""
        cache = TwoLevelCache()
        assert not cache.is_full_speedup_feasible(10.0, memory_speedup=1.0)

    def test_sqrt_law_extends_feasibility(self):
        """With memory improving as sqrt(speed), required rates stay
        achievable roughly an order of magnitude further out."""
        cache = TwoLevelCache()
        speed = 10.0
        constant = cache.required_l2_hit_rate(speed, 1.0)
        sqrt = cache.required_l2_hit_rate(speed, math.sqrt(speed))
        assert sqrt < constant
        assert cache.is_full_speedup_feasible(speed, math.sqrt(speed))

    def test_perfect_l1_needs_no_l2(self):
        cache = TwoLevelCache(l1_hit_rate=1.0)
        assert cache.required_l2_hit_rate(100.0) == 0.0

    def test_table_shape(self):
        rows = sqrt_memory_law_table()
        assert [row[0] for row in rows] == [2, 4, 10, 100, 1000]
        for speed, constant, sqrt, feasible in rows:
            assert sqrt <= constant
        # Constant-memory requirements blow through the ceiling early;
        # the sqrt law stays feasible at 10x.
        by_speed = {row[0]: row for row in rows}
        assert by_speed[10][1] > TwoLevelCache.PRACTICAL_L2_CEILING
        assert by_speed[10][3] is True
