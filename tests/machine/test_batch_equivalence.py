"""Batched touch processing is behaviour-equivalent to scalar loops.

The chunked Section 4 drivers rest on two facts proven here:

* ``Processor.touch_batch`` produces the identical hit/miss outcome and
  cache state as the equivalent ``touch`` loop (time costs agree to
  floating-point summation order);
* ``batch_limit`` sizes chunks so a budget can only be exhausted by a
  chunk's final touch, which pins rescheduling points to exactly where a
  touch-by-touch loop would have placed them.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.reference import ReferenceGenerator, ReferenceSpec
from repro.machine.batching import DEFAULT_CHUNK, batch_limit, worst_touch_cost
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.machine.processor import Processor


def tiny_spec(sets: int = 8, assoc: int = 2) -> MachineSpec:
    line = 16
    return dataclasses.replace(
        SEQUENT_SYMMETRY, cache_size_bytes=sets * assoc * line, associativity=assoc
    )


class TestBatchLimit:
    def test_budget_crossable_only_by_final_touch(self):
        worst = 0.75e-6
        for budget in (1e-6, 2.25e-6, 0.1, 0.75e-6):
            n = batch_limit(budget, worst, cap=10**9)
            assert (n - 1) * worst < budget

    def test_non_positive_budget_yields_one(self):
        assert batch_limit(0.0, 1e-6) == 1
        assert batch_limit(-1.0, 1e-6) == 1

    def test_cap_applies(self):
        assert batch_limit(1.0, 1e-9) == DEFAULT_CHUNK
        assert batch_limit(1.0, 1e-9, cap=7) == 7

    def test_worst_touch_cost_matches_processor_miss(self):
        proc = Processor(0, tiny_spec())
        cost = proc.touch("t", 0, refs_per_touch=5)  # first access misses
        assert cost == worst_touch_cost(
            proc.spec.miss_time_s, proc.spec.hit_time_s, 5
        )


class TestTouchBatch:
    def test_rejects_bad_refs(self):
        proc = Processor(0, tiny_spec())
        with pytest.raises(ValueError):
            proc.touch_batch("t", [0], refs_per_touch=0)

    def test_empty_batch_is_free(self):
        proc = Processor(0, tiny_spec())
        assert proc.touch_batch("t", []) == 0.0
        assert proc.busy_time == 0.0

    def test_cost_matches_scalar_loop(self):
        blocks = [(i * 3) % 40 for i in range(100)]
        scalar = Processor(0, tiny_spec())
        total = sum(scalar.touch("t", b, refs_per_touch=4) for b in blocks)
        batched = Processor(0, tiny_spec())
        cost = batched.touch_batch("t", blocks, refs_per_touch=4)
        assert cost == pytest.approx(total, rel=1e-12)
        assert batched.busy_time == pytest.approx(scalar.busy_time, rel=1e-12)
        assert batched.cache.stats.hits == scalar.cache.stats.hits
        assert batched.cache.stats.misses == scalar.cache.stats.misses


@settings(max_examples=40, deadline=None)
@given(
    blocks=st.lists(st.integers(0, 99), min_size=1, max_size=300),
    refs=st.integers(1, 20),
    data=st.data(),
)
def test_property_touch_batch_equals_touch_loop(blocks, refs, data):
    """Arbitrary traces, arbitrary chunkings: same cache state, same cost."""
    scalar = Processor(0, tiny_spec())
    costs = [scalar.touch("t", b, refs) for b in blocks]
    batched = Processor(0, tiny_spec())
    i = 0
    while i < len(blocks):
        j = data.draw(st.integers(i + 1, len(blocks)), label="chunk end")
        cost = batched.touch_batch("t", blocks[i:j], refs)
        assert cost == pytest.approx(sum(costs[i:j]), rel=1e-9)
        i = j
    assert batched.cache.stats.hits == scalar.cache.stats.hits
    assert batched.cache.stats.misses == scalar.cache.stats.misses
    assert batched.busy_time == pytest.approx(scalar.busy_time, rel=1e-9)
    for b in range(100):
        assert batched.cache.contains("t", b) == scalar.cache.contains("t", b)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), q_us=st.integers(50, 400))
def test_property_chunked_slice_loop_matches_scalar(seed, q_us):
    """The regime-driver shape: chunking never moves a slice boundary.

    Runs the same reference stream through a scalar touch loop and a
    batch_limit-chunked loop and asserts bit-identical switch points.
    The quantum is offset to 0.3 us past a whole microsecond: touch
    costs here are multiples of 0.125 us, so no sum of costs can land
    *exactly* on the budget, which is the one (measure-zero) case where
    floating-point summation order could shift a switch by a touch (see
    repro.machine.batching).  Away from ties, equality is exact.
    """
    ref = ReferenceSpec(
        data_blocks=120, p_reuse=0.8, refs_per_touch=4, reuse_window=20
    )
    machine = tiny_spec(sets=16, assoc=2)
    q_s = (q_us + 0.3) * 1e-6
    n_touches = 2000

    scalar_proc = Processor(0, machine)
    scalar_gen = ReferenceGenerator(ref, random.Random(seed))
    rt_scalar = 0.0
    slice_left = q_s
    scalar_switch_touches = []
    for touch_index in range(n_touches):
        cost = scalar_proc.touch("t", scalar_gen.next_block(), ref.refs_per_touch)
        rt_scalar += cost
        slice_left -= cost
        if slice_left <= 0.0:
            scalar_switch_touches.append(touch_index)
            slice_left = q_s

    chunk_proc = Processor(0, machine)
    chunk_gen = ReferenceGenerator(ref, random.Random(seed))
    worst = worst_touch_cost(machine.miss_time_s, machine.hit_time_s, ref.refs_per_touch)
    rt_chunk = 0.0
    slice_left = q_s
    chunk_switch_touches = []
    done = 0
    while done < n_touches:
        n = min(n_touches - done, batch_limit(slice_left, worst))
        cost = chunk_proc.touch_batch(
            "t", chunk_gen.next_blocks(n), ref.refs_per_touch
        )
        rt_chunk += cost
        slice_left -= cost
        done += n
        if slice_left <= 0.0:
            chunk_switch_touches.append(done - 1)
            slice_left = q_s

    assert chunk_switch_touches == scalar_switch_touches
    assert rt_chunk == pytest.approx(rt_scalar, rel=1e-9)
    assert chunk_proc.cache.stats.hits == scalar_proc.cache.stats.hits
    assert chunk_proc.cache.stats.misses == scalar_proc.cache.stats.misses
