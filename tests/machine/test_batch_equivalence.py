"""Batched touch processing is behaviour-equivalent to scalar loops.

The chunked Section 4 drivers rest on two facts proven here:

* ``Processor.touch_batch`` produces the identical hit/miss outcome and
  cache state as the equivalent ``touch`` loop (time costs agree to
  floating-point summation order);
* ``batch_limit`` sizes chunks so a budget can only be exhausted by a
  chunk's final touch, which pins rescheduling points to exactly where a
  touch-by-touch loop would have placed them.
"""

import dataclasses
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.reference import ReferenceGenerator, ReferenceSpec
from repro.machine.batching import DEFAULT_CHUNK, batch_limit, worst_touch_cost
from repro.machine.cache import SetAssociativeCache
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.machine.processor import Processor


def tiny_spec(sets: int = 8, assoc: int = 2) -> MachineSpec:
    line = 16
    return dataclasses.replace(
        SEQUENT_SYMMETRY, cache_size_bytes=sets * assoc * line, associativity=assoc
    )


class TestBatchLimit:
    def test_budget_crossable_only_by_final_touch(self):
        worst = 0.75e-6
        for budget in (1e-6, 2.25e-6, 0.1, 0.75e-6):
            n = batch_limit(budget, worst, cap=10**9)
            assert (n - 1) * worst < budget

    def test_non_positive_budget_yields_one(self):
        assert batch_limit(0.0, 1e-6) == 1
        assert batch_limit(-1.0, 1e-6) == 1

    def test_cap_applies(self):
        assert batch_limit(1.0, 1e-9) == DEFAULT_CHUNK
        assert batch_limit(1.0, 1e-9, cap=7) == 7

    def test_worst_touch_cost_matches_processor_miss(self):
        proc = Processor(0, tiny_spec())
        cost = proc.touch("t", 0, refs_per_touch=5)  # first access misses
        assert cost == worst_touch_cost(
            proc.spec.miss_time_s, proc.spec.hit_time_s, 5
        )

    def test_regression_exact_multiple_budget(self):
        """0.1+0.1+0.1 over 0.1: float ceil() said 4, but (4-1)*0.1 equals
        the budget instead of staying strictly below it — the clamp must
        bring n back to 3."""
        worst = 0.1
        budget = 0.1 + 0.1 + 0.1  # 0.30000000000000004 > 3 * 0.1 in float
        n = batch_limit(budget, worst, cap=10**9)
        assert (n - 1) * worst < budget
        assert n == 3


@settings(max_examples=400, deadline=None)
@given(
    worst=st.one_of(
        st.floats(min_value=1e-12, max_value=1e-3, allow_nan=False),
        # subnormal-adjacent costs: the quotient budget/worst is huge and
        # maximally rounding-prone
        st.floats(min_value=5e-324, max_value=1e-300, allow_nan=False),
    ),
    k=st.integers(1, 100_000),
    nudge=st.sampled_from(["exact", "up", "down"]),
)
def test_property_batch_limit_never_crosses_budget_early(worst, k, nudge):
    """Adversarial budgets: exact multiples of the cost and their float
    neighbours.  The driver contract is the strict inequality
    ``(n - 1) * worst < budget`` evaluated in float — exactly what the
    chunked regime loops rely on to keep rescheduling points in place."""
    budget = worst * k
    if nudge == "up":
        budget = math.nextafter(budget, math.inf)
    elif nudge == "down":
        budget = math.nextafter(budget, 0.0)
    if not (budget > 0.0 and math.isfinite(budget)):
        return
    n = batch_limit(budget, worst, cap=10**9)
    assert n >= 1
    assert (n - 1) * worst < budget
    # No gross under-sizing either: at most one touch short of the budget
    # (the documented one-touch tolerance of float chunk sizing).  Skip
    # the check for subnormal costs, whose products have no relative
    # rounding guarantee to reason with.
    if worst >= 1e-12:
        assert n == 10**9 or (n + 1) * worst > budget * (1.0 - 1e-9)


class TestTouchBatch:
    def test_rejects_bad_refs(self):
        proc = Processor(0, tiny_spec())
        with pytest.raises(ValueError):
            proc.touch_batch("t", [0], refs_per_touch=0)

    def test_empty_batch_is_free(self):
        proc = Processor(0, tiny_spec())
        assert proc.touch_batch("t", []) == 0.0
        assert proc.busy_time == 0.0

    def test_cost_matches_scalar_loop(self):
        blocks = [(i * 3) % 40 for i in range(100)]
        scalar = Processor(0, tiny_spec())
        total = sum(scalar.touch("t", b, refs_per_touch=4) for b in blocks)
        batched = Processor(0, tiny_spec())
        cost = batched.touch_batch("t", blocks, refs_per_touch=4)
        assert cost == pytest.approx(total, rel=1e-12)
        assert batched.busy_time == pytest.approx(scalar.busy_time, rel=1e-12)
        assert batched.cache.stats.hits == scalar.cache.stats.hits
        assert batched.cache.stats.misses == scalar.cache.stats.misses


@settings(max_examples=40, deadline=None)
@given(
    blocks=st.lists(st.integers(0, 99), min_size=1, max_size=300),
    refs=st.integers(1, 20),
    data=st.data(),
)
def test_property_touch_batch_equals_touch_loop(blocks, refs, data):
    """Arbitrary traces, arbitrary chunkings: same cache state, same cost."""
    scalar = Processor(0, tiny_spec())
    costs = [scalar.touch("t", b, refs) for b in blocks]
    batched = Processor(0, tiny_spec())
    i = 0
    while i < len(blocks):
        j = data.draw(st.integers(i + 1, len(blocks)), label="chunk end")
        cost = batched.touch_batch("t", blocks[i:j], refs)
        assert cost == pytest.approx(sum(costs[i:j]), rel=1e-9)
        i = j
    assert batched.cache.stats.hits == scalar.cache.stats.hits
    assert batched.cache.stats.misses == scalar.cache.stats.misses
    assert batched.busy_time == pytest.approx(scalar.busy_time, rel=1e-9)
    for b in range(100):
        assert batched.cache.contains("t", b) == scalar.cache.contains("t", b)


@settings(max_examples=60, deadline=None)
@given(
    geometry=st.sampled_from(
        # flat 2-way fast path; 4-way, non-power-of-two sets, direct
        # mapped, and both-at-once exercise the dict fallback
        [(8, 2), (8, 4), (5, 2), (6, 4), (16, 1), (7, 3)]
    ),
    blocks=st.lists(st.integers(0, 99), min_size=1, max_size=300),
    refs=st.integers(1, 8),
    data=st.data(),
)
def test_property_batch_equals_loop_all_geometries(geometry, blocks, refs, data):
    """The touch_batch contract holds on every storage layout, including
    duplicate blocks within one chunk and arbitrary chunk splits."""
    sets, assoc = geometry
    scalar = Processor(0, tiny_spec(sets, assoc))
    costs = [scalar.touch("t", b, refs) for b in blocks]
    batched = Processor(0, tiny_spec(sets, assoc))
    i = 0
    while i < len(blocks):
        j = data.draw(st.integers(i + 1, len(blocks)), label="chunk end")
        cost = batched.touch_batch("t", blocks[i:j], refs)
        assert cost == pytest.approx(sum(costs[i:j]), rel=1e-9)
        i = j
    assert batched.cache.stats.hits == scalar.cache.stats.hits
    assert batched.cache.stats.misses == scalar.cache.stats.misses
    for b in range(100):
        assert batched.cache.contains("t", b) == scalar.cache.contains("t", b)


class NaiveLru:
    """Textbook N-way LRU: a list of (owner, block) per set, MRU at the end.

    A third, deliberately naive implementation of the cache's contract,
    used to referee the scalar backend's two storage layouts: if either
    the flat fast path or the dict fallback diverged from plain LRU
    semantics (eviction order, duplicate blocks in one chunk, state
    after owner eviction), this model would catch it.
    """

    def __init__(self, sets: int, assoc: int) -> None:
        self.n_sets = sets
        self.assoc = assoc
        self.sets = [[] for _ in range(sets)]

    def access(self, owner, block) -> bool:
        s = self.sets[block % self.n_sets]
        key = (owner, block)
        if key in s:
            s.remove(key)
            s.append(key)
            return True
        if len(s) >= self.assoc:
            s.pop(0)
        s.append(key)
        return False

    def contains(self, owner, block) -> bool:
        return (owner, block) in self.sets[block % self.n_sets]

    def footprint(self, owner) -> int:
        return sum(1 for s in self.sets for (o, _) in s if o == owner)

    def evict_owner(self, owner) -> int:
        dropped = 0
        for s in self.sets:
            kept = [kv for kv in s if kv[0] != owner]
            dropped += len(s) - len(kept)
            s[:] = kept
        return dropped

    def resident_lines(self) -> int:
        return sum(len(s) for s in self.sets)


@settings(max_examples=60, deadline=None)
@given(
    geometry=st.sampled_from([(8, 2), (8, 4), (5, 2), (6, 4), (16, 1), (3, 3)]),
    seed=st.integers(0, 10_000),
)
def test_property_cache_matches_naive_lru_model(geometry, seed):
    """Owner churn (past the id-recycling limit), duplicate-heavy chunks,
    and owner eviction all agree with the naive model on every layout."""
    sets, assoc = geometry
    cache = SetAssociativeCache(tiny_spec(sets, assoc))
    model = NaiveLru(sets, assoc)
    rng = random.Random(seed)
    # More distinct owners than the gc limit forces index rebuilds and
    # owner-id recycling along the way.
    owners = [f"o{i}" for i in range(cache._owner_gc_limit + 8)]
    for _ in range(60):
        owner = rng.choice(owners)
        blocks = [rng.randrange(0, sets * 3) for _ in range(rng.randint(1, 30))]
        hits = cache.access_batch(owner, blocks)
        expected = sum(model.access(owner, b) for b in blocks)
        assert hits == expected
        if rng.random() < 0.2:
            victim = rng.choice(owners)
            assert cache.evict_owner(victim) == model.evict_owner(victim)
        if rng.random() < 0.3:
            probe = rng.choice(owners)
            assert cache.footprint(probe) == model.footprint(probe)
            block = rng.randrange(0, sets * 3)
            assert cache.contains(probe, block) == model.contains(probe, block)
    assert cache.resident_lines() == model.resident_lines()
    for owner in owners:
        assert cache.footprint(owner) == model.footprint(owner)
        for block in range(sets * 3):
            assert cache.contains(owner, block) == model.contains(owner, block)


class TestSetOccupancyBounds:
    """Regression: the dict fallback accepted negative set indices (Python
    list wrap-around) where the fast path raised."""

    @pytest.mark.parametrize("sets,assoc", [(8, 2), (5, 4)])
    def test_out_of_range_raises_on_both_layouts(self, sets, assoc):
        cache = SetAssociativeCache(tiny_spec(sets, assoc))
        cache.access_batch("t", list(range(sets)))
        with pytest.raises(IndexError):
            cache.set_occupancy(-1)
        with pytest.raises(IndexError):
            cache.set_occupancy(sets)
        assert sum(cache.set_occupancy(i) for i in range(sets)) == sets


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), q_us=st.integers(50, 400))
def test_property_chunked_slice_loop_matches_scalar(seed, q_us):
    """The regime-driver shape: chunking never moves a slice boundary.

    Runs the same reference stream through a scalar touch loop and a
    batch_limit-chunked loop and asserts bit-identical switch points.
    The quantum is offset to 0.3 us past a whole microsecond: touch
    costs here are multiples of 0.125 us, so no sum of costs can land
    *exactly* on the budget, which is the one (measure-zero) case where
    floating-point summation order could shift a switch by a touch (see
    repro.machine.batching).  Away from ties, equality is exact.
    """
    ref = ReferenceSpec(
        data_blocks=120, p_reuse=0.8, refs_per_touch=4, reuse_window=20
    )
    machine = tiny_spec(sets=16, assoc=2)
    q_s = (q_us + 0.3) * 1e-6
    n_touches = 2000

    scalar_proc = Processor(0, machine)
    scalar_gen = ReferenceGenerator(ref, random.Random(seed))
    rt_scalar = 0.0
    slice_left = q_s
    scalar_switch_touches = []
    for touch_index in range(n_touches):
        cost = scalar_proc.touch("t", scalar_gen.next_block(), ref.refs_per_touch)
        rt_scalar += cost
        slice_left -= cost
        if slice_left <= 0.0:
            scalar_switch_touches.append(touch_index)
            slice_left = q_s

    chunk_proc = Processor(0, machine)
    chunk_gen = ReferenceGenerator(ref, random.Random(seed))
    worst = worst_touch_cost(machine.miss_time_s, machine.hit_time_s, ref.refs_per_touch)
    rt_chunk = 0.0
    slice_left = q_s
    chunk_switch_touches = []
    done = 0
    while done < n_touches:
        n = min(n_touches - done, batch_limit(slice_left, worst))
        cost = chunk_proc.touch_batch(
            "t", chunk_gen.next_blocks(n), ref.refs_per_touch
        )
        rt_chunk += cost
        slice_left -= cost
        done += n
        if slice_left <= 0.0:
            chunk_switch_touches.append(done - 1)
            slice_left = q_s

    assert chunk_switch_touches == scalar_switch_touches
    assert rt_chunk == pytest.approx(rt_scalar, rel=1e-9)
    assert chunk_proc.cache.stats.hits == scalar_proc.cache.stats.hits
    assert chunk_proc.cache.stats.misses == scalar_proc.cache.stats.misses
