"""Analytic footprint curves and the survival model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.machine.footprint import (
    FootprintCurve,
    FootprintModel,
    LinearFootprintCurve,
)
from repro.machine.params import SEQUENT_SYMMETRY


class TestFootprintCurve:
    def test_zero_duration_zero_blocks(self):
        assert FootprintCurve(1000, 0.1).distinct_blocks(0.0) == 0.0

    def test_saturates_at_w_max(self):
        curve = FootprintCurve(w_max=1000, tau=0.1)
        assert curve.distinct_blocks(100.0) == pytest.approx(1000, rel=1e-6)

    def test_monotone_in_duration(self):
        curve = FootprintCurve(w_max=1000, tau=0.1)
        values = [curve.distinct_blocks(d) for d in (0.01, 0.05, 0.2, 1.0)]
        assert values == sorted(values)

    def test_initial_rate_is_w_max_over_tau(self):
        curve = FootprintCurve(w_max=1000, tau=0.1)
        d = 1e-6
        assert curve.distinct_blocks(d) / d == pytest.approx(10000, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            FootprintCurve(0, 0.1)
        with pytest.raises(ValueError):
            FootprintCurve(100, 0)


class TestLinearFootprintCurve:
    def test_hot_set_loads_immediately(self):
        curve = LinearFootprintCurve(hot=500, rate=1000, cap=4000)
        assert curve.distinct_blocks(1e-9) == pytest.approx(500, rel=1e-3)

    def test_linear_growth(self):
        curve = LinearFootprintCurve(hot=500, rate=1000, cap=1e9)
        assert curve.distinct_blocks(2.0) == pytest.approx(2500)

    def test_caps_at_data_size(self):
        curve = LinearFootprintCurve(hot=500, rate=1000, cap=1500)
        assert curve.distinct_blocks(100.0) == 1500

    def test_zero_duration(self):
        assert LinearFootprintCurve(500, 1000, 4000).distinct_blocks(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearFootprintCurve(-1, 0, 100)
        with pytest.raises(ValueError):
            LinearFootprintCurve(0, 0, 0)


class TestFootprintModel:
    def setup_method(self):
        self.model = FootprintModel(SEQUENT_SYMMETRY)
        self.curve = FootprintCurve(w_max=2000, tau=0.05)

    def test_new_task_has_no_penalty(self):
        penalty, affine = self.model.reload_penalty("t", 0)
        assert penalty == 0.0
        assert affine is False

    def test_stationary_resume_is_free(self):
        """Same processor, no intervening task: zero penalty, affinity."""
        self.model.note_run("t", 0, 0.1, self.curve)
        penalty, affine = self.model.reload_penalty("t", 0)
        assert penalty == 0.0
        assert affine is True

    def test_migration_pays_full_footprint(self):
        """Moving to another processor costs footprint x miss time (P^NA)."""
        self.model.note_run("t", 0, 0.1, self.curve)
        footprint = self.model.state_of("t").footprint
        penalty, affine = self.model.reload_penalty("t", 1)
        assert affine is False
        assert penalty == pytest.approx(footprint * SEQUENT_SYMMETRY.miss_time_s)

    def test_intervening_task_partially_ejects(self):
        """P^A: affinity resume after an intervening task costs 0 < p < P^NA."""
        self.model.note_run("t", 0, 0.1, self.curve)
        self.model.note_run("intruder", 0, 0.1, self.curve)
        p_a, affine = self.model.reload_penalty("t", 0)
        p_na = self.model.state_of("t").footprint * SEQUENT_SYMMETRY.miss_time_s
        assert affine is True
        assert 0 < p_a < p_na

    def test_more_intervening_usage_ejects_more(self):
        self.model.note_run("t", 0, 0.1, self.curve)
        self.model.note_run("i1", 0, 0.05, self.curve)
        penalty_one, _ = self.model.reload_penalty("t", 0)
        self.model.note_run("i2", 0, 0.4, self.curve)
        penalty_two, _ = self.model.reload_penalty("t", 0)
        assert penalty_two > penalty_one

    def test_survival_is_exponential_in_intervening_fills(self):
        self.model.note_run("t", 0, 0.1, self.curve)
        footprint = self.model.state_of("t").footprint
        usage_before = self.model.processor_usage(0)
        self.model.note_run("intruder", 0, 0.2, self.curve)
        fills = self.model.processor_usage(0) - usage_before
        surviving = self.model.surviving_footprint("t", 0)
        expected = footprint * math.exp(-fills / SEQUENT_SYMMETRY.cache_lines)
        assert surviving == pytest.approx(expected)

    def test_footprint_capped_at_cache_lines(self):
        huge = FootprintCurve(w_max=1e7, tau=0.001)
        self.model.note_run("t", 0, 10.0, huge)
        assert self.model.state_of("t").footprint <= SEQUENT_SYMMETRY.cache_lines

    def test_longer_stints_build_bigger_footprints(self):
        self.model.note_run("a", 0, 0.01, self.curve)
        self.model.note_run("b", 1, 0.2, self.curve)
        assert self.model.state_of("b").footprint > self.model.state_of("a").footprint

    def test_forget_removes_state(self):
        self.model.note_run("t", 0, 0.1, self.curve)
        self.model.forget("t")
        penalty, affine = self.model.reload_penalty("t", 0)
        assert penalty == 0.0 and affine is False

    def test_reset_clears_everything(self):
        self.model.note_run("t", 0, 0.1, self.curve)
        self.model.reset()
        assert self.model.processor_usage(0) == 0.0
        assert self.model.state_of("t").processor is None

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            self.model.note_run("t", 0, -1.0, self.curve)

    def test_zero_duration_run_keeps_previous_footprint(self):
        self.model.note_run("t", 0, 0.1, self.curve)
        before = self.model.state_of("t").footprint
        self.model.note_run("t", 0, 0.0, self.curve)
        assert self.model.state_of("t").footprint == pytest.approx(before)


@given(
    durations=st.lists(st.floats(min_value=1e-4, max_value=1.0), min_size=1, max_size=20),
    processors=st.lists(st.integers(0, 3), min_size=1, max_size=20),
)
def test_property_penalty_never_negative_or_above_full_fill(durations, processors):
    """Penalties stay within [0, full cache fill] whatever the run history."""
    model = FootprintModel(SEQUENT_SYMMETRY)
    curve = FootprintCurve(w_max=3000, tau=0.02)
    for i, (duration, cpu) in enumerate(zip(durations, processors)):
        task = f"t{i % 3}"
        penalty, _ = model.reload_penalty(task, cpu)
        assert 0.0 <= penalty <= SEQUENT_SYMMETRY.full_fill_time_s + 1e-12
        model.note_run(task, cpu, duration, curve)
