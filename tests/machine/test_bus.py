"""Bus contention model."""

import pytest

from repro.machine.bus import BusModel
from repro.machine.params import SEQUENT_SYMMETRY


class TestBusModel:
    def setup_method(self):
        self.bus = BusModel(SEQUENT_SYMMETRY)

    def test_zero_load_no_inflation(self):
        assert self.bus.contention_factor(0.0) == pytest.approx(1.0)
        assert self.bus.effective_miss_time(0.0) == pytest.approx(
            SEQUENT_SYMMETRY.miss_time_s
        )

    def test_inflation_grows_with_load(self):
        light = self.bus.effective_miss_time(100_000)
        heavy = self.bus.effective_miss_time(1_000_000)
        assert heavy > light

    def test_utilization_formula(self):
        # 400k misses/s x 0.75us = 0.3 utilization
        assert self.bus.utilization(400_000) == pytest.approx(0.3)

    def test_utilization_clamped(self):
        assert self.bus.utilization(1e9) == BusModel.MAX_UTILIZATION

    def test_md1_waiting_time(self):
        # At rho = 0.5, M/D/1 waiting is s * 0.5 / (2 * 0.5) = s / 2.
        rho_half_rate = 0.5 / SEQUENT_SYMMETRY.miss_time_s
        expected = SEQUENT_SYMMETRY.miss_time_s * 1.5
        assert self.bus.effective_miss_time(rho_half_rate) == pytest.approx(expected)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            self.bus.utilization(-1.0)


class TestProcessorAndMachine:
    def test_processor_touch_costs(self):
        from repro.machine.processor import Processor

        cpu = Processor(0, SEQUENT_SYMMETRY)
        miss_cost = cpu.touch("t", 0, refs_per_touch=4)
        hit_cost = cpu.touch("t", 0, refs_per_touch=4)
        assert miss_cost == pytest.approx(
            SEQUENT_SYMMETRY.miss_time_s + 3 * SEQUENT_SYMMETRY.hit_time_s
        )
        assert hit_cost == pytest.approx(4 * SEQUENT_SYMMETRY.hit_time_s)
        assert cpu.busy_time == pytest.approx(miss_cost + hit_cost)

    def test_processor_context_switch(self):
        from repro.machine.processor import Processor

        cpu = Processor(0, SEQUENT_SYMMETRY)
        cost = cpu.context_switch("task")
        assert cost == pytest.approx(750e-6)
        assert cpu.current_task == "task"

    def test_processor_rejects_bad_refs(self):
        from repro.machine.processor import Processor

        with pytest.raises(ValueError):
            Processor(0, SEQUENT_SYMMETRY).touch("t", 0, refs_per_touch=0)

    def test_multiprocessor_sizes(self):
        from repro.machine.multiprocessor import Multiprocessor

        machine = Multiprocessor(SEQUENT_SYMMETRY, n_processors=16)
        assert len(machine) == 16
        assert machine[3].cpu_id == 3

    def test_multiprocessor_rejects_oversubscription(self):
        from repro.machine.multiprocessor import Multiprocessor

        with pytest.raises(ValueError):
            Multiprocessor(SEQUENT_SYMMETRY, n_processors=21)

    def test_aggregate_hit_rate(self):
        from repro.machine.multiprocessor import Multiprocessor

        machine = Multiprocessor(SEQUENT_SYMMETRY, n_processors=2)
        machine[0].touch("t", 0)
        machine[0].touch("t", 0)
        assert machine.aggregate_hit_rate() == pytest.approx(0.5)

    def test_aggregate_hit_rate_empty(self):
        from repro.machine.multiprocessor import Multiprocessor

        assert Multiprocessor(SEQUENT_SYMMETRY, 2).aggregate_hit_rate() == 0.0
