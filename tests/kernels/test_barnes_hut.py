"""Barnes-Hut N-body: accuracy against direct summation, conservation."""

import math
import random

import pytest

from repro.kernels.barnes_hut import (
    DEFAULT_SOFTENING,
    BarnesHutSimulation,
    Body,
    QuadTree,
)


def random_bodies(n, seed, spread=10.0):
    rng = random.Random(seed)
    return [
        Body(
            x=rng.uniform(-spread, spread),
            y=rng.uniform(-spread, spread),
            vx=rng.uniform(-1, 1),
            vy=rng.uniform(-1, 1),
            mass=rng.uniform(0.5, 2.0),
        )
        for _ in range(n)
    ]


def direct_force(bodies, target, g=1.0, softening=DEFAULT_SOFTENING):
    fx = fy = 0.0
    for other in bodies:
        if other is target:
            continue
        dx = other.x - target.x
        dy = other.y - target.y
        dist_sq = dx * dx + dy * dy + softening * softening
        dist = math.sqrt(dist_sq)
        strength = g * target.mass * other.mass / dist_sq
        fx += strength * dx / dist
        fy += strength * dy / dist
    return fx, fy


class TestQuadTree:
    def test_total_mass_preserved(self):
        bodies = random_bodies(50, 1)
        tree = QuadTree(bodies)
        assert tree.total_mass() == pytest.approx(sum(b.mass for b in bodies))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QuadTree([])

    def test_single_body_feels_no_force(self):
        body = Body(0.0, 0.0, mass=1.0)
        tree = QuadTree([body])
        assert tree.force_on(body) == (0.0, 0.0)

    def test_two_bodies_attract_symmetrically(self):
        a = Body(-1.0, 0.0, mass=2.0)
        b = Body(1.0, 0.0, mass=3.0)
        tree = QuadTree([a, b])
        fa = tree.force_on(a)
        fb = tree.force_on(b)
        assert fa[0] > 0 and fb[0] < 0
        assert fa[0] == pytest.approx(-fb[0], rel=1e-9)
        assert fa[1] == pytest.approx(0.0, abs=1e-12)

    def test_two_body_force_magnitude(self):
        a = Body(0.0, 0.0, mass=1.0)
        b = Body(3.0, 4.0, mass=2.0)  # distance 5
        tree = QuadTree([a, b])
        fx, fy = tree.force_on(a, softening=0.0)
        expected = 1.0 * 2.0 / 25.0
        assert math.hypot(fx, fy) == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize("theta", [0.3, 0.5, 0.8])
    def test_approximation_close_to_direct_sum(self, theta):
        bodies = random_bodies(60, 2)
        tree = QuadTree(bodies)
        for target in bodies[:10]:
            approx = tree.force_on(target, theta=theta)
            exact = direct_force(bodies, target)
            magnitude = math.hypot(*exact)
            error = math.hypot(approx[0] - exact[0], approx[1] - exact[1])
            assert error <= 0.15 * magnitude + 1e-9

    def test_smaller_theta_is_more_accurate(self):
        bodies = random_bodies(80, 3)
        tree = QuadTree(bodies)
        target = bodies[0]
        exact = direct_force(bodies, target)

        def error(theta):
            fx, fy = tree.force_on(target, theta=theta)
            return math.hypot(fx - exact[0], fy - exact[1])

        assert error(0.2) <= error(1.2) + 1e-12

    def test_coincident_bodies_do_not_recurse_forever(self):
        bodies = [Body(1.0, 1.0), Body(1.0, 1.0), Body(2.0, 2.0)]
        tree = QuadTree(bodies)
        assert tree.total_mass() == pytest.approx(3.0)

    def test_invalid_theta(self):
        tree = QuadTree([Body(0, 0)])
        with pytest.raises(ValueError):
            tree.force_on(Body(1, 1), theta=0.0)


class TestSimulation:
    def test_step_advances_counter(self):
        sim = BarnesHutSimulation(random_bodies(10, 4), dt=0.01)
        sim.run(3)
        assert sim.steps_run == 3

    def test_momentum_approximately_conserved(self):
        bodies = random_bodies(30, 5)
        sim = BarnesHutSimulation(bodies, dt=0.001, theta=0.3)
        px0, py0 = sim.total_momentum()
        sim.run(20)
        px1, py1 = sim.total_momentum()
        scale = sum(abs(b.mass * b.vx) + abs(b.mass * b.vy) for b in bodies)
        assert abs(px1 - px0) < 0.05 * scale
        assert abs(py1 - py0) < 0.05 * scale

    def test_two_body_orbit_stays_bound(self):
        """A circular two-body orbit must not fly apart over a few periods."""
        m = 1.0
        r = 1.0
        # Circular orbit: v^2 = G * m_other / (2 r) for equal masses about COM.
        v = math.sqrt(m / (4 * r))
        bodies = [
            Body(-r, 0.0, vx=0.0, vy=-v, mass=m),
            Body(r, 0.0, vx=0.0, vy=v, mass=m),
        ]
        sim = BarnesHutSimulation(bodies, dt=0.005, theta=0.1, softening=0.0)
        sim.run(400)
        separation = math.hypot(
            bodies[0].x - bodies[1].x, bodies[0].y - bodies[1].y
        )
        assert 1.0 < separation < 4.0

    def test_phases_can_run_individually(self):
        sim = BarnesHutSimulation(random_bodies(10, 6))
        sim.phase_build_tree()
        forces = sim.phase_forces()
        assert len(forces) == 10
        sim.phase_update(forces)
        box = sim.phase_collect()
        assert box[0] <= box[2] and box[1] <= box[3]

    def test_forces_require_tree(self):
        sim = BarnesHutSimulation(random_bodies(5, 7))
        with pytest.raises(RuntimeError):
            sim.phase_forces()

    def test_update_requires_matching_forces(self):
        sim = BarnesHutSimulation(random_bodies(5, 8))
        with pytest.raises(ValueError):
            sim.phase_update([(0.0, 0.0)])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BarnesHutSimulation(random_bodies(3, 9), dt=0.0)
        with pytest.raises(ValueError):
            BarnesHutSimulation(random_bodies(3, 9)).run(-1)

    def test_kinetic_energy(self):
        body = Body(0, 0, vx=3.0, vy=4.0, mass=2.0)
        assert body.kinetic_energy() == pytest.approx(25.0)
