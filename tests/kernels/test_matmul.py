"""Blocked matrix multiply: correctness against the naive algorithm."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.matmul import (
    blocked_matmul,
    choose_block_size,
    naive_matmul,
    output_blocks,
)


def random_matrix(rows, cols, seed):
    rng = random.Random(seed)
    return [[rng.uniform(-10, 10) for _ in range(cols)] for _ in range(rows)]


def assert_close(a, b):
    assert len(a) == len(b)
    for row_a, row_b in zip(a, b):
        assert row_a == pytest.approx(row_b, rel=1e-9, abs=1e-9)


class TestNaive:
    def test_identity(self):
        m = random_matrix(3, 3, 1)
        identity = [[1.0 if i == j else 0.0 for j in range(3)] for i in range(3)]
        assert_close(naive_matmul(m, identity), m)

    def test_known_product(self):
        a = [[1.0, 2.0], [3.0, 4.0]]
        b = [[5.0, 6.0], [7.0, 8.0]]
        assert_close(naive_matmul(a, b), [[19.0, 22.0], [43.0, 50.0]])

    def test_rectangular(self):
        a = random_matrix(2, 5, 2)
        b = random_matrix(5, 3, 3)
        result = naive_matmul(a, b)
        assert len(result) == 2 and len(result[0]) == 3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            naive_matmul(random_matrix(2, 3, 1), random_matrix(2, 3, 2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            naive_matmul([], [[1.0]])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            naive_matmul([[1.0, 2.0], [3.0]], [[1.0], [2.0]])


class TestBlocked:
    @pytest.mark.parametrize("block", [1, 2, 3, 7, 64])
    def test_matches_naive_for_any_block(self, block):
        a = random_matrix(7, 9, 10)
        b = random_matrix(9, 5, 11)
        assert_close(blocked_matmul(a, b, block=block), naive_matmul(a, b))

    def test_block_larger_than_matrix(self):
        a = random_matrix(3, 3, 12)
        b = random_matrix(3, 3, 13)
        assert_close(blocked_matmul(a, b, block=100), naive_matmul(a, b))

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            blocked_matmul([[1.0]], [[1.0]], block=0)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 8),
        k=st.integers(1, 8),
        m=st.integers(1, 8),
        block=st.integers(1, 10),
        seed=st.integers(0, 1000),
    )
    def test_property_blocked_equals_naive(self, n, k, m, block, seed):
        a = random_matrix(n, k, seed)
        b = random_matrix(k, m, seed + 1)
        assert_close(blocked_matmul(a, b, block=block), naive_matmul(a, b))


class TestBlockSizing:
    def test_symmetry_cache_block(self):
        """64 KB cache, 8-byte elements, 3 live blocks -> edge 52."""
        assert choose_block_size(64 * 1024) == 52

    def test_minimum_one(self):
        assert choose_block_size(8) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            choose_block_size(0)
        with pytest.raises(ValueError):
            choose_block_size(1024, element_bytes=0)

    def test_output_blocks_cover_matrix(self):
        blocks = output_blocks(10, 6, 4)
        assert (0, 0) in blocks and (8, 4) in blocks
        assert len(blocks) == 3 * 2

    def test_output_blocks_one_per_matrix_thread(self):
        """The MATRIX application default: 8x8 = 64 output blocks."""
        assert len(output_blocks(416, 416, 52)) == 64
