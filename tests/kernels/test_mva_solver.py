"""Exact MVA solver: known closed forms and limit behavior."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.mva_solver import (
    MvaResult,
    QueueingNetwork,
    solve_mva,
    wavefront_order,
)


class TestKnownSolutions:
    def test_single_station_single_customer(self):
        net = QueueingNetwork(demands=(2.0,))
        result = solve_mva(net, 1)[-1]
        assert result.response_time == pytest.approx(2.0)
        assert result.throughput == pytest.approx(0.5)
        assert result.queue_lengths[0] == pytest.approx(1.0)

    def test_single_station_queue_holds_everyone(self):
        """With one queueing station, all N customers queue there."""
        net = QueueingNetwork(demands=(1.0,))
        for n, result in enumerate(solve_mva(net, 10), start=1):
            assert result.queue_lengths[0] == pytest.approx(n)
            assert result.response_time == pytest.approx(n)
            assert result.throughput == pytest.approx(1.0)

    def test_two_balanced_stations(self):
        """Balanced network of 2 stations, N=2: known exact MVA numbers."""
        net = QueueingNetwork(demands=(1.0, 1.0))
        r1, r2 = solve_mva(net, 2)
        assert r1.response_time == pytest.approx(2.0)
        assert r1.queue_lengths == (pytest.approx(0.5), pytest.approx(0.5))
        # n=2: R_k = 1 * (1 + 0.5) = 1.5 each, X = 2/3, Q_k = 1.
        assert r2.response_time == pytest.approx(3.0)
        assert r2.throughput == pytest.approx(2 / 3)
        assert r2.queue_lengths == (pytest.approx(1.0), pytest.approx(1.0))

    def test_delay_station_adds_constant_time(self):
        think = QueueingNetwork(demands=(1.0, 5.0), delay_stations=frozenset({1}))
        result = solve_mva(think, 1)[-1]
        assert result.response_time == pytest.approx(6.0)

    def test_bottleneck_identification(self):
        net = QueueingNetwork(demands=(1.0, 3.0, 2.0))
        result = solve_mva(net, 5)[-1]
        assert result.bottleneck() == 1


class TestLimits:
    def test_throughput_bounded_by_bottleneck(self):
        net = QueueingNetwork(demands=(1.0, 4.0))
        for result in solve_mva(net, 30):
            assert result.throughput <= 1 / 4.0 + 1e-12

    def test_throughput_asymptotically_reaches_bottleneck(self):
        net = QueueingNetwork(demands=(1.0, 4.0))
        final = solve_mva(net, 100)[-1]
        assert final.throughput == pytest.approx(0.25, rel=1e-3)

    def test_littles_law_holds(self):
        """N = X * R at every population (Little's law)."""
        net = QueueingNetwork(demands=(0.5, 1.5, 1.0))
        for n, result in enumerate(solve_mva(net, 20), start=1):
            assert result.throughput * result.response_time == pytest.approx(n)

    def test_utilization_at_most_one(self):
        net = QueueingNetwork(demands=(2.0, 3.0))
        for result in solve_mva(net, 50):
            assert all(u <= 1.0 for u in result.utilizations)

    def test_response_time_monotone_in_population(self):
        net = QueueingNetwork(demands=(1.0, 2.0))
        times = [r.response_time for r in solve_mva(net, 20)]
        assert times == sorted(times)


class TestValidation:
    def test_rejects_empty_network(self):
        with pytest.raises(ValueError):
            QueueingNetwork(demands=())

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            QueueingNetwork(demands=(1.0, -0.5))

    def test_rejects_bad_delay_index(self):
        with pytest.raises(ValueError):
            QueueingNetwork(demands=(1.0,), delay_stations=frozenset({3}))

    def test_rejects_zero_population(self):
        with pytest.raises(ValueError):
            solve_mva(QueueingNetwork(demands=(1.0,)), 0)


class TestWavefront:
    def test_wave_count(self):
        assert len(wavefront_order(4, 3)) == 6

    def test_covers_every_cell_once(self):
        waves = wavefront_order(5, 4)
        cells = [cell for wave in waves for cell in wave]
        assert len(cells) == 20
        assert len(set(cells)) == 20

    def test_wave_widths_grow_then_shrink(self):
        widths = [len(w) for w in wavefront_order(6, 6)]
        peak = widths.index(max(widths))
        assert widths[: peak + 1] == sorted(widths[: peak + 1])
        assert widths[peak:] == sorted(widths[peak:], reverse=True)
        assert max(widths) == 6

    def test_cells_in_wave_share_diagonal(self):
        for wave_index, wave in enumerate(wavefront_order(4, 5)):
            assert all(n + k == wave_index for n, k in wave)


@settings(max_examples=30, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=6),
    population=st.integers(min_value=1, max_value=30),
)
def test_property_mva_invariants(demands, population):
    """Little's law, bottleneck bound, and queue conservation everywhere."""
    net = QueueingNetwork(demands=tuple(demands))
    bottleneck = max(demands)
    for n, result in enumerate(solve_mva(net, population), start=1):
        assert result.throughput <= 1 / bottleneck + 1e-9
        assert result.throughput * result.response_time == pytest.approx(n)
        assert sum(result.queue_lengths) == pytest.approx(n)
