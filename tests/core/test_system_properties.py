"""Property-based stress: random workloads through the full system.

Whatever the workload shape, policy, or seed, the scheduling system must
preserve a set of conservation and sanity invariants.  These tests
generate random job sets (graph shapes, service times, worker pools,
arrival times) and check every invariant after running to completion.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
)
from repro.core.system import SchedulingSystem
from repro.machine.footprint import FootprintCurve
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job

ALL_POLICIES = [EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_NOPRI, DYN_AFF_DELAY]

CURVE = FootprintCurve(w_max=800, tau=0.05)


@st.composite
def random_job(draw, name):
    """A random small job: fan, chain, or barrier-phased graph."""
    shape = draw(st.sampled_from(["fan", "chain", "phases"]))
    graph = ThreadGraph(name)
    service = lambda: draw(st.floats(min_value=0.01, max_value=1.0))
    if shape == "fan":
        for _ in range(draw(st.integers(1, 12))):
            graph.add_thread(service())
    elif shape == "chain":
        ids = [graph.add_thread(service()) for _ in range(draw(st.integers(1, 8)))]
        for a, b in zip(ids, ids[1:]):
            graph.add_dependency(a, b)
    else:
        previous = None
        for _ in range(draw(st.integers(1, 3))):
            tids = [graph.add_thread(service()) for _ in range(draw(st.integers(1, 6)))]
            if previous is not None:
                for tid in tids:
                    graph.add_dependency(previous, tid)
            barrier = graph.add_thread(0.0)
            for tid in tids:
                graph.add_dependency(tid, barrier)
            previous = barrier
    workers = draw(st.integers(1, 4))
    return Job(name, graph, CURVE, max_workers=workers)


@st.composite
def random_workload(draw):
    n_jobs = draw(st.integers(1, 4))
    jobs = [draw(random_job(f"J{i}")) for i in range(n_jobs)]
    arrivals = [
        draw(st.floats(min_value=0.0, max_value=2.0)) for _ in range(n_jobs)
    ]
    policy = draw(st.sampled_from(ALL_POLICIES))
    n_processors = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 1000))
    return jobs, arrivals, policy, n_processors, seed


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_workload())
def test_property_system_invariants(workload):
    jobs, arrivals, policy, n_processors, seed = workload
    expected_work = {job.name: job.graph.total_work() for job in jobs}
    system = SchedulingSystem(
        jobs,
        policy,
        n_processors=n_processors,
        seed=seed,
        arrival_times=arrivals,
    )
    result = system.run()

    assert set(result.jobs) == {job.name for job in jobs}, "every job completes"
    for job, arrival in zip(jobs, arrivals):
        metrics = result.jobs[job.name]
        # Work conservation: every thread ran exactly once.
        assert metrics.work == pytest.approx(expected_work[job.name], rel=1e-9)
        # Response time bounds: at least the critical path, at most the
        # whole machine-serialized workload plus overheads.
        assert metrics.response_time >= job.graph.critical_path() - 1e-9
        assert metrics.response_time <= result.makespan - arrival + 1e-9
        # Accounting sanity.
        assert metrics.waste >= 0.0
        assert metrics.cache_penalty_total >= 0.0
        assert 0.0 <= metrics.pct_affinity <= 100.0
        assert 0 < metrics.average_allocation <= n_processors + 1e-9
        # The held processor-time covers everything the job consumed.
        held = metrics.average_allocation * metrics.response_time
        used = (
            metrics.work
            + metrics.waste
            + metrics.switch_overhead_total
            + metrics.cache_penalty_total
        )
        assert held >= used - 1e-6

    # Machine capacity: total held processor-seconds cannot exceed the
    # machine's capacity over the makespan.
    total_held = sum(
        m.average_allocation * m.response_time for m in result.jobs.values()
    )
    assert total_held <= n_processors * result.makespan + 1e-6


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_workload())
def test_property_no_worker_leaks(workload):
    """After completion every worker is idle and every processor free."""
    jobs, arrivals, policy, n_processors, seed = workload
    system = SchedulingSystem(
        jobs, policy, n_processors=n_processors, seed=seed, arrival_times=arrivals
    )
    system.run()
    from repro.threads.workers import WorkerState

    for job in jobs:
        for worker in job.workers:
            assert worker.state != WorkerState.RUNNING
            assert worker.completion_handle is None
    for proc in system.allocator.procs:
        assert proc.is_free
        assert proc.yield_handle is None
