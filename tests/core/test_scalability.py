"""Robustness at sizes beyond the paper's workloads.

The paper's mixes hold 2-3 jobs on 16 processors.  These tests push the
allocator harder — more jobs than the mixes ever had, machines smaller
and larger than 16 processors, heavy oversubscription — and check the
same invariants hold.
"""

import pytest

from repro.core.policies import DYN_AFF, DYN_AFF_DELAY, DYNAMIC, EQUIPARTITION
from repro.core.system import SchedulingSystem
from repro.engine.rng import RngRegistry
from repro.measure.workloads import WorkloadMix, make_jobs


def run(mix, policy, n_processors=16, seed=0):
    rng = RngRegistry(seed)
    jobs = make_jobs(mix, rng.spawn("workload"), n_processors=n_processors)
    return SchedulingSystem(
        jobs, policy, n_processors=n_processors, seed=seed,
        rng=rng.spawn(policy.name),
    ).run()


HEAVY_MIX = WorkloadMix(80, {"MVA": 3, "MATRIX": 2, "GRAVITY": 2}, "7 jobs")


class TestManyJobs:
    @pytest.mark.parametrize("policy", [EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_DELAY])
    def test_seven_job_mix_completes(self, policy):
        result = run(HEAVY_MIX, policy)
        assert len(result.jobs) == 7
        for metrics in result.jobs.values():
            assert metrics.response_time > 0
            assert metrics.work > 0

    def test_dynamic_still_at_least_matches_equipartition(self):
        equi = run(HEAVY_MIX, EQUIPARTITION)
        dyn = run(HEAVY_MIX, DYN_AFF)
        assert dyn.mean_response_time() <= 1.03 * equi.mean_response_time()

    def test_fairness_under_oversubscription(self):
        """With 7 jobs on 16 processors, no job's allocation collapses."""
        result = run(HEAVY_MIX, DYNAMIC)
        for name, metrics in result.jobs.items():
            assert metrics.average_allocation > 1.0, name


class TestMachineSizes:
    @pytest.mark.parametrize("n_processors", [2, 4, 8, 20])
    def test_mix5_completes_on_any_machine(self, n_processors):
        result = run(5, DYN_AFF, n_processors=n_processors)
        assert len(result.jobs) == 2

    def test_more_processors_never_hurt(self):
        small = run(5, DYN_AFF, n_processors=8)
        large = run(5, DYN_AFF, n_processors=16)
        assert large.mean_response_time() < small.mean_response_time()

    def test_single_processor_degenerates_gracefully(self):
        mix = WorkloadMix(81, {"MVA": 2})
        result = run(mix, DYNAMIC, n_processors=1)
        # Serial machine: makespan >= total work of both jobs.
        total_work = sum(m.work for m in result.jobs.values())
        assert result.makespan >= total_work
