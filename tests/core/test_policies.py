"""Policy definitions and the equipartition allocation-number algorithm."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
    POLICIES,
    Policy,
    equipartition_allocation,
)


class TestPolicyDefinitions:
    def test_five_policies_registered(self):
        assert set(POLICIES) == {
            "Equipartition",
            "Dynamic",
            "Dyn-Aff",
            "Dyn-Aff-NoPri",
            "Dyn-Aff-Delay",
        }

    def test_equipartition_is_static(self):
        assert EQUIPARTITION.is_equipartition
        assert not EQUIPARTITION.is_dynamic

    def test_dynamic_flags(self):
        assert DYNAMIC.is_dynamic
        assert not DYNAMIC.use_affinity
        assert DYNAMIC.respect_priority
        assert DYNAMIC.yield_delay_s == 0.0

    def test_dyn_aff_adds_affinity_only(self):
        assert DYN_AFF.use_affinity
        assert DYN_AFF.respect_priority
        assert DYN_AFF.yield_delay_s == 0.0

    def test_nopri_drops_priority(self):
        assert DYN_AFF_NOPRI.use_affinity
        assert not DYN_AFF_NOPRI.respect_priority

    def test_delay_has_positive_window(self):
        assert DYN_AFF_DELAY.yield_delay_s > 0.0
        assert DYN_AFF_DELAY.use_affinity
        assert DYN_AFF_DELAY.respect_priority

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Policy("bad", "timesharing", False, False)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Policy("bad", "dynamic", False, False, yield_delay_s=-1.0)


class TestEquipartitionAllocation:
    def test_even_split(self):
        result = equipartition_allocation({"a": 16, "b": 16}, 16)
        assert result == {"a": 8, "b": 8}

    def test_remainder_goes_round_robin(self):
        result = equipartition_allocation({"a": 16, "b": 16, "c": 16}, 16)
        assert sorted(result.values()) == [5, 5, 6]
        assert result["a"] == 6  # first in insertion order

    def test_capped_job_drops_out(self):
        """A job at its maximum parallelism stops receiving processors."""
        result = equipartition_allocation({"small": 2, "big": 16}, 16)
        assert result == {"small": 2, "big": 14}

    def test_all_jobs_capped_leaves_processors_unused(self):
        result = equipartition_allocation({"a": 3, "b": 2}, 16)
        assert result == {"a": 3, "b": 2}

    def test_more_jobs_than_processors(self):
        result = equipartition_allocation({f"j{i}": 16 for i in range(5)}, 3)
        assert sorted(result.values()) == [0, 0, 1, 1, 1]

    def test_no_jobs(self):
        assert equipartition_allocation({}, 16) == {}

    def test_zero_cap_job_gets_nothing(self):
        result = equipartition_allocation({"a": 0, "b": 16}, 4)
        assert result == {"a": 0, "b": 4}

    def test_negative_processors_rejected(self):
        with pytest.raises(ValueError):
            equipartition_allocation({"a": 1}, -1)

    @given(
        caps=st.dictionaries(
            st.text(min_size=1, max_size=4),
            st.integers(min_value=0, max_value=32),
            min_size=1,
            max_size=8,
        ),
        n_processors=st.integers(min_value=0, max_value=40),
    )
    def test_property_allocation_sound(self, caps, n_processors):
        """Never over-allocates, never exceeds caps, uses all it can."""
        result = equipartition_allocation(caps, n_processors)
        assert sum(result.values()) <= n_processors
        for name, count in result.items():
            assert 0 <= count <= caps[name]
        # Work-conserving up to caps: either all processors allocated or
        # every job is at its cap.
        total = sum(result.values())
        if total < n_processors:
            assert all(result[name] == caps[name] for name in caps)

    @given(
        n_jobs=st.integers(min_value=1, max_value=8),
        n_processors=st.integers(min_value=0, max_value=40),
    )
    def test_property_uncapped_split_is_fair(self, n_jobs, n_processors):
        """With no caps binding, allocations differ by at most one."""
        caps = {f"j{i}": 1000 for i in range(n_jobs)}
        result = equipartition_allocation(caps, n_processors)
        values = list(result.values())
        assert max(values) - min(values) <= 1
        assert sum(values) == min(n_processors, n_jobs * 1000)
