"""Processor and task histories."""

import pytest

from repro.core.history import ProcessorHistory, TaskHistory


class TestBoundedHistory:
    def test_most_recent_first(self):
        h = TaskHistory(depth=3)
        h.record(1)
        h.record(2)
        assert list(h) == [2, 1]
        assert h.most_recent == 2

    def test_depth_bounds_length(self):
        h = TaskHistory(depth=2)
        for cpu in (1, 2, 3, 4):
            h.record(cpu)
        assert list(h) == [4, 3]

    def test_duplicate_head_not_repeated(self):
        h = TaskHistory(depth=3)
        h.record(1)
        h.record(1)
        assert len(h) == 1

    def test_empty_history(self):
        h = TaskHistory()
        assert h.most_recent is None
        assert h.last_processor is None
        assert 5 not in h

    def test_clear(self):
        h = TaskHistory()
        h.record(1)
        h.clear()
        assert len(h) == 0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            TaskHistory(depth=0)


class TestPaperSemantics:
    def test_depth_one_remembers_only_last(self):
        """The paper uses T = P = 1."""
        h = ProcessorHistory(depth=1)
        h.record(("job", 0))
        h.record(("job", 1))
        assert h.last_task == ("job", 1)
        assert ("job", 0) not in h

    def test_task_affinity_check(self):
        h = TaskHistory(depth=2)
        h.record(3)
        h.record(7)
        assert h.has_affinity_for(3)
        assert h.has_affinity_for(7)
        assert not h.has_affinity_for(5)
