"""Scheduling system integration: conservation, accounting, policies."""

import pytest

from repro.core.policies import DYN_AFF, DYNAMIC, EQUIPARTITION
from repro.core.system import SchedulingSystem
from repro.obs import Tracer
from repro.obs.invariants import check_trace
from repro.obs.records import CacheFlush, Dispatch, JobArrival, JobCancelled
from tests.core.helpers import chain_job, flat_job, phased_job


class TestSingleJob:
    def test_single_thread_single_processor(self):
        job = chain_job("J", 1, 2.0)
        result = SchedulingSystem([job], DYNAMIC, n_processors=1).run()
        metrics = result.jobs["J"]
        # One dispatch: context switch, no cache reload (fresh task).
        assert metrics.response_time == pytest.approx(2.0 + 750e-6)
        assert metrics.work == pytest.approx(2.0)
        assert metrics.n_reallocations == 1

    def test_chain_runs_sequentially(self):
        job = chain_job("J", 5, 1.0)
        result = SchedulingSystem([job], DYNAMIC, n_processors=4).run()
        assert result.jobs["J"].response_time == pytest.approx(5.0, rel=1e-3)

    def test_flat_fan_uses_all_processors(self):
        job = flat_job("J", 8, 1.0, workers=4)
        result = SchedulingSystem([job], DYNAMIC, n_processors=4).run()
        assert result.jobs["J"].response_time == pytest.approx(2.0, rel=1e-2)
        assert result.jobs["J"].average_allocation == pytest.approx(4.0, rel=1e-2)

    def test_worker_continuation_is_free(self):
        """Threads run back-to-back on one worker pay one dispatch only."""
        job = chain_job("J", 10, 0.5)
        result = SchedulingSystem([job], DYNAMIC, n_processors=1).run()
        assert result.jobs["J"].n_reallocations == 1
        assert result.jobs["J"].switch_overhead_total == pytest.approx(750e-6)

    def test_work_conservation(self):
        job = phased_job("J", 3, 6, 0.5, workers=4)
        expected = job.graph.total_work()
        result = SchedulingSystem([job], DYNAMIC, n_processors=4).run()
        assert result.jobs["J"].work == pytest.approx(expected)


class TestMultiJob:
    def make(self, policy, n_processors=4):
        a = flat_job("A", 12, 1.0, workers=4)
        b = flat_job("B", 12, 1.0, workers=4)
        return SchedulingSystem([a, b], policy, n_processors=n_processors)

    @pytest.mark.parametrize("policy", [EQUIPARTITION, DYNAMIC, DYN_AFF])
    def test_work_conserved_under_all_policies(self, policy):
        system = self.make(policy)
        result = system.run()
        assert result.jobs["A"].work == pytest.approx(12.0)
        assert result.jobs["B"].work == pytest.approx(12.0)

    def test_equipartition_splits_evenly(self):
        result = self.make(EQUIPARTITION).run()
        # 2 identical jobs, 4 processors: each runs 12 threads on 2.
        assert result.jobs["A"].average_allocation == pytest.approx(2.0, rel=0.05)
        assert result.jobs["A"].response_time == pytest.approx(6.0, rel=0.05)

    def test_dynamic_has_no_waste_without_delay(self):
        result = self.make(DYNAMIC).run()
        assert result.jobs["A"].waste == 0.0
        assert result.jobs["B"].waste == 0.0

    def test_equipartition_accrues_waste_on_idle_phases(self):
        a = phased_job("A", 4, 2, 0.5, workers=4)  # parallelism 2 of 4 held
        b = flat_job("B", 8, 1.0, workers=4)
        result = SchedulingSystem([a, b], EQUIPARTITION, n_processors=8).run()
        # A holds 4 processors but can only ever use 2.
        assert result.jobs["A"].waste > 0.5

    def test_dynamic_reclaims_idle_processors(self):
        a = phased_job("A", 4, 2, 0.5, workers=4)
        b = flat_job("B", 40, 1.0, workers=8)
        equi = SchedulingSystem(
            [a, b], EQUIPARTITION, n_processors=8, seed=1
        ).run()
        a2 = phased_job("A", 4, 2, 0.5, workers=4)
        b2 = flat_job("B", 40, 1.0, workers=8)
        dyn = SchedulingSystem([a2, b2], DYNAMIC, n_processors=8, seed=1).run()
        assert dyn.jobs["B"].response_time < equi.jobs["B"].response_time

    def test_makespan_at_least_work_over_capacity(self):
        system = self.make(DYNAMIC)
        result = system.run()
        assert result.makespan >= 24.0 / 4 - 1e-9

    def test_mean_response_time(self):
        result = self.make(DYNAMIC).run()
        jobs = list(result.jobs.values())
        expected = sum(m.response_time for m in jobs) / 2
        assert result.mean_response_time() == pytest.approx(expected)


class TestPreemption:
    def test_preempted_work_is_not_lost(self):
        """A long job loses processors to a newcomer but completes all work."""
        hog = flat_job("HOG", 4, 5.0, workers=4)
        newcomer = flat_job("NEW", 4, 1.0, workers=4)
        system = SchedulingSystem(
            [hog, newcomer],
            DYNAMIC,
            n_processors=4,
            arrival_times=[0.0, 1.0],
        )
        result = system.run()
        assert result.jobs["HOG"].work == pytest.approx(20.0)
        assert result.jobs["NEW"].work == pytest.approx(4.0)

    def test_newcomer_gets_processors_via_d3(self):
        hog = flat_job("HOG", 8, 5.0, workers=4)
        newcomer = flat_job("NEW", 4, 1.0, workers=4)
        system = SchedulingSystem(
            [hog, newcomer], DYNAMIC, n_processors=4, arrival_times=[0.0, 1.0]
        )
        result = system.run()
        # The newcomer must not wait for the hog's 5s threads to finish:
        # D.3 preempts to parity, so it finishes well before t = 7.
        assert result.jobs["NEW"].response_time < 4.0


class TestValidationAndDeterminism:
    def test_duplicate_job_names_rejected(self):
        with pytest.raises(ValueError):
            SchedulingSystem(
                [chain_job("X", 1, 1.0), chain_job("X", 1, 1.0)],
                DYNAMIC,
                n_processors=2,
            )

    def test_too_many_processors_rejected(self):
        with pytest.raises(ValueError):
            SchedulingSystem([chain_job("X", 1, 1.0)], DYNAMIC, n_processors=21)

    def test_empty_job_list_rejected(self):
        with pytest.raises(ValueError):
            SchedulingSystem([], DYNAMIC)

    def test_same_seed_reproduces_results(self):
        def run():
            jobs = [flat_job("A", 10, 1.0, 4), phased_job("B", 3, 4, 0.5, 4)]
            return SchedulingSystem(jobs, DYNAMIC, n_processors=4, seed=9).run()

        first, second = run(), run()
        for name in first.jobs:
            assert first.jobs[name].response_time == second.jobs[name].response_time
            assert first.jobs[name].n_reallocations == second.jobs[name].n_reallocations

    def test_run_until_reports_unfinished(self):
        job = chain_job("SLOW", 100, 1.0)
        system = SchedulingSystem([job], DYNAMIC, n_processors=1)
        result = system.run(until=5.0)
        assert "SLOW" not in result.jobs
        assert result.makespan == pytest.approx(5.0)


class TestAccountingIdentities:
    def test_allocation_integral_covers_work(self):
        """allocation x time >= work + overheads for every job."""
        jobs = [flat_job("A", 10, 1.0, 4), flat_job("B", 10, 1.0, 4)]
        result = SchedulingSystem(jobs, DYNAMIC, n_processors=4).run()
        for metrics in result.jobs.values():
            held = metrics.average_allocation * metrics.response_time
            used = (
                metrics.work
                + metrics.waste
                + metrics.switch_overhead_total
                + metrics.cache_penalty_total
            )
            assert held == pytest.approx(used, rel=0.02)

    def test_reallocation_interval_definition(self):
        jobs = [flat_job("A", 10, 1.0, 4)]
        result = SchedulingSystem(jobs, DYNAMIC, n_processors=4).run()
        m = result.jobs["A"]
        assert m.reallocation_interval == pytest.approx(
            m.response_time * m.average_allocation / m.n_reallocations
        )


class TestDisruptionEdgeCases:
    """Cancellation and failure at their nastiest instants."""

    def _collide(self, cancel_priority):
        """Cancel DOOMED at the exact instant of its arrival event."""
        jobs = [chain_job("DOOMED", 2, 0.5), flat_job("OTHER", 4, 0.5, 2)]
        tracer = Tracer()
        system = SchedulingSystem(
            jobs, DYNAMIC, n_processors=2,
            arrival_times=[1.0, 0.0], tracer=tracer,
        )
        system.sim.at(
            1.0,
            lambda: system.cancel_job(jobs[0]),
            priority=cancel_priority,
            label="cancel:DOOMED",
        )
        result = system.run()
        assert check_trace(tracer.records) == []
        assert result.cancelled == {"DOOMED": 1.0}
        assert "DOOMED" not in result.jobs
        assert "OTHER" in result.jobs
        return tracer.records

    def test_cancel_at_arrival_instant_before_arrival_fires(self):
        """Priority below the arrival's: the job must never enter at all."""
        records = self._collide(cancel_priority=5)
        assert not any(
            isinstance(r, JobArrival) and r.job == "DOOMED" for r in records
        )

    def test_cancel_at_arrival_instant_after_arrival_fires(self):
        """Priority above the arrival's: arrive, then cancel with zero work."""
        records = self._collide(cancel_priority=100)
        assert any(
            isinstance(r, JobArrival) and r.job == "DOOMED" for r in records
        )
        cancel = next(r for r in records if isinstance(r, JobCancelled))
        assert cancel.time == 1.0
        assert cancel.work_done == 0.0

    def test_failure_flushes_sole_footprint_copy(self):
        """The failed cpu holds the job's only cache residue: it is lost.

        On a one-processor machine the job can only wait out the outage;
        recovery re-dispatches it affine (it never ran anywhere else) but
        against a cold cache, so the full reload penalty is charged.
        """
        job = chain_job("J", 4, 0.5)
        tracer = Tracer()
        system = SchedulingSystem([job], DYN_AFF, n_processors=1, tracer=tracer)
        system.sim.at(0.6, lambda: system.fail_processor(0), priority=100)
        system.sim.at(0.9, lambda: system.recover_processor(0), priority=100)
        result = system.run()
        assert check_trace(tracer.records) == []
        assert "J" in result.jobs
        flush = next(r for r in tracer.records if isinstance(r, CacheFlush))
        assert flush.cpu == 0
        assert flush.lines > 0
        redispatch = next(
            r for r in tracer.records
            if isinstance(r, Dispatch) and r.time >= 0.9
        )
        assert redispatch.affine
        assert redispatch.penalty_s > 0
        # 2s of work stalled by a 0.3s outage
        assert result.makespan >= 2.3
