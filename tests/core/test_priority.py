"""The credit-based adaptive priority scheme."""

import pytest

from repro.core.priority import CreditScheduler
from repro.machine.footprint import FootprintCurve
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job


def job(name):
    g = ThreadGraph(name)
    g.add_thread(1.0)
    return Job(name, g, FootprintCurve(100, 0.1), max_workers=1)


class TestCreditAccrual:
    def setup_method(self):
        self.sched = CreditScheduler(16)
        self.a = job("A")
        self.b = job("B")
        self.sched.job_arrived(self.a, 0.0)
        self.sched.job_arrived(self.b, 0.0)

    def test_equal_share_divides_machine(self):
        assert self.sched.equal_share() == pytest.approx(8.0)

    def test_underuse_accrues_credit(self):
        self.sched.set_allocation(self.a, 2, 0.0)
        self.sched.refresh(self.a, 1.0)
        assert self.sched.credit(self.a) == pytest.approx(6.0)

    def test_overuse_drains_credit(self):
        self.sched.set_allocation(self.a, 14, 0.0)
        self.sched.refresh(self.a, 1.0)
        assert self.sched.credit(self.a) == pytest.approx(-6.0)

    def test_credit_capped(self):
        self.sched.set_allocation(self.a, 0, 0.0)
        self.sched.refresh(self.a, 100.0)
        assert self.sched.credit(self.a) == CreditScheduler.CREDIT_CAP

    def test_debt_capped(self):
        self.sched.set_allocation(self.a, 16, 0.0)
        self.sched.refresh(self.a, 100.0)
        assert self.sched.credit(self.a) == -CreditScheduler.CREDIT_CAP

    def test_departed_job_untracked(self):
        self.sched.job_departed(self.b, 1.0)
        assert self.sched.credit(self.b) == 0.0
        assert self.sched.equal_share() == pytest.approx(16.0)

    def test_priority_order_by_credit(self):
        self.sched.set_allocation(self.a, 16, 0.0)
        self.sched.set_allocation(self.b, 0, 0.0)
        order = self.sched.priority_order([self.a, self.b], 1.0)
        assert [j.name for j in order] == ["B", "A"]

    def test_priority_order_ties_broken_by_name(self):
        order = self.sched.priority_order([self.b, self.a], 0.0)
        assert [j.name for j in order] == ["A", "B"]

    def test_at_least_as_deserving_with_tolerance(self):
        self.sched.set_allocation(self.a, 8, 0.0)
        self.sched.set_allocation(self.b, 8, 0.0)
        self.sched.refresh(self.a, 1.0)
        self.sched.refresh(self.b, 1.0)
        assert self.sched.at_least_as_deserving(self.a, [self.b])

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            self.sched.set_allocation(self.a, -1, 0.0)

    def test_invalid_machine(self):
        with pytest.raises(ValueError):
            CreditScheduler(0)


class TestPreemptionRules:
    def setup_method(self):
        self.sched = CreditScheduler(16)
        self.a = job("A")
        self.b = job("B")
        self.sched.job_arrived(self.a, 0.0)
        self.sched.job_arrived(self.b, 0.0)

    def test_parity_restoration_always_allowed(self):
        assert self.sched.may_preempt(self.a, 2, self.b, 10)

    def test_no_preemption_from_single_processor_victim(self):
        assert not self.sched.may_preempt(self.a, 0, self.b, 1)

    def test_no_preemption_at_parity_without_credit(self):
        assert not self.sched.may_preempt(self.a, 8, self.b, 8)

    def test_credit_spending_goes_beyond_parity(self):
        """A job that banked credit may take more than its fair share."""
        self.sched.set_allocation(self.a, 0, 0.0)
        self.sched.set_allocation(self.b, 16, 0.0)
        self.sched.refresh(self.a, 1.0)
        self.sched.refresh(self.b, 1.0)
        assert self.sched.may_preempt(self.a, 8, self.b, 8)

    def test_spending_margin_grows_with_excess(self):
        """Each processor beyond parity costs more banked credit."""
        self.sched.set_allocation(self.a, 7, 0.0)
        self.sched.set_allocation(self.b, 9, 0.0)
        self.sched.refresh(self.a, 1.0)
        self.sched.refresh(self.b, 1.0)
        # A credit ~ +1, B ~ -1: enough for 1-2 beyond parity, not 10.
        assert self.sched.may_preempt(self.a, 8, self.b, 8)
        assert not self.sched.may_preempt(self.a, 14, self.b, 2)
