"""The time-sharing baseline scheduler (Section 8's contrast)."""

import dataclasses

import pytest

from repro.core.timesharing import (
    TIME_SHARING,
    TIME_SHARING_AFFINITY,
    TimeSharingPolicy,
    TimeSharingSystem,
)
from tests.core.helpers import chain_job, flat_job, phased_job


class TestBasics:
    def test_single_job_completes(self):
        job = flat_job("J", 8, 0.5, workers=4)
        result = TimeSharingSystem([job], n_processors=4).run()
        assert result.jobs["J"].work == pytest.approx(4.0)
        assert result.jobs["J"].response_time >= 1.0

    def test_work_conserved_across_jobs(self):
        a = flat_job("A", 8, 0.5, workers=4)
        b = flat_job("B", 8, 0.5, workers=4)
        result = TimeSharingSystem([a, b], n_processors=4).run()
        assert result.jobs["A"].work == pytest.approx(4.0)
        assert result.jobs["B"].work == pytest.approx(4.0)

    def test_chain_completes_with_quantum_preemption(self):
        """A thread longer than the quantum is sliced but finishes."""
        job = chain_job("J", 2, 0.35)  # 0.35s threads vs 0.1s quantum
        system = TimeSharingSystem([job], n_processors=1)
        result = system.run()
        assert result.jobs["J"].work == pytest.approx(0.7)
        assert system.involuntary_switches >= 4  # ~3 slices per thread

    def test_quantum_expiry_counts_involuntary(self):
        long_threads = flat_job("L", 2, 1.0, workers=2)
        contender = flat_job("C", 2, 1.0, workers=2)
        system = TimeSharingSystem([long_threads, contender], n_processors=2)
        system.run()
        assert system.involuntary_switches > 10

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TimeSharingSystem([chain_job("X", 1, 1.0), chain_job("X", 1, 1.0)])

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError):
            TimeSharingSystem([])

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TimeSharingPolicy("bad", quantum_s=0.0)
        with pytest.raises(ValueError):
            TimeSharingPolicy("bad", affinity_search_depth=0)
        with pytest.raises(ValueError):
            TimeSharingPolicy("bad", max_skips=0)


class TestRotation:
    def test_processors_rotate_among_jobs(self):
        """With more runnable workers than processors, everyone advances."""
        jobs = [flat_job(f"J{i}", 4, 0.5, workers=2) for i in range(4)]
        result = TimeSharingSystem(jobs, n_processors=2).run()
        times = [m.response_time for m in result.jobs.values()]
        # Round-robin: all four finish within a similar window, far later
        # than any would alone (0.5 x 2 = 1s alone on 2 cpus).
        assert min(times) > 2.0
        assert max(times) < 3 * min(times)

    def test_rotation_induces_low_affinity(self):
        # Worker count coprime to processor count and unequal service
        # times, so the FIFO rotation cannot be accidentally periodic.
        jobs = [
            flat_job(f"J{i}", 8, 0.7 + 0.2 * i, workers=3) for i in range(3)
        ]
        result = TimeSharingSystem(jobs, TIME_SHARING, n_processors=4).run()
        for metrics in result.jobs.values():
            assert metrics.pct_affinity < 60.0


class TestAffinityVariant:
    def make_pair(self, policy, seed=3):
        a = phased_job("A", 6, 8, 0.05, workers=4)
        b = flat_job("B", 8, 2.0, workers=4)
        return TimeSharingSystem([a, b], policy, n_processors=4, seed=seed).run()

    def test_affinity_raises_pct_affinity(self):
        plain = self.make_pair(TIME_SHARING)
        aware = self.make_pair(TIME_SHARING_AFFINITY)
        for job in ("A", "B"):
            assert aware.jobs[job].pct_affinity > plain.jobs[job].pct_affinity

    def test_affinity_lowers_cache_penalties(self):
        plain = self.make_pair(TIME_SHARING)
        aware = self.make_pair(TIME_SHARING_AFFINITY)
        total_plain = sum(m.cache_penalty_total for m in plain.jobs.values())
        total_aware = sum(m.cache_penalty_total for m in aware.jobs.values())
        assert total_aware < total_plain

    def test_aging_prevents_starvation(self):
        """Affinity search must not starve tasks with no affine processor."""
        policy = dataclasses.replace(
            TIME_SHARING_AFFINITY, affinity_search_depth=16, max_skips=3
        )
        hog = flat_job("HOG", 16, 2.0, workers=4)
        victim = flat_job("VICTIM", 8, 0.5, workers=4)
        result = TimeSharingSystem([hog, victim], policy, n_processors=4).run()
        # The victim's work is 4s of 36 total; a fair rotation finishes it
        # well inside the hog's span (~9s of pure work on 4 cpus).
        assert result.jobs["VICTIM"].response_time < result.jobs["HOG"].response_time
