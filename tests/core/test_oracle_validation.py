"""Cross-validation: analytic footprint model vs simulated caches.

The repository's central approximation — pricing cache reloads with the
analytic footprint model instead of simulating caches inside the
scheduling runs — is validated here end to end: the same scaled-down
workload is scheduled twice, once per oracle, and the outcomes must
agree.
"""

import dataclasses

import pytest

from repro.apps.gravity import GravityParams, GravityPhase, GravitySpec
from repro.apps.mva import MvaParams, MvaSpec
from repro.core.policies import DYN_AFF, DYNAMIC
from repro.core.system import SchedulingSystem
from repro.engine.rng import RngRegistry
from repro.machine.cache_oracle import SimulatedCacheFootprint

#: Scaled-down applications so the simulated-cache run stays fast.
MINI_MVA = MvaSpec(MvaParams(customers=10, stations=10, mean_service_s=0.12))
MINI_GRAVITY = GravitySpec(
    GravityParams(
        n_timesteps=8,
        sequential_service_s=0.15,
        phases=(
            GravityPhase("partition", n_threads=24, mean_service_s=0.03),
            GravityPhase("force", n_threads=32, mean_service_s=0.025),
            GravityPhase("update", n_threads=32, mean_service_s=0.025),
            GravityPhase("collect", n_threads=16, mean_service_s=0.02),
        ),
    )
)


def run_with(policy, oracle=None, seed=3):
    rng = RngRegistry(seed)
    jobs = [
        MINI_MVA.make_job(rng.stream("mva"), n_processors=8),
        MINI_GRAVITY.make_job(rng.stream("grav"), n_processors=8),
    ]
    system = SchedulingSystem(
        jobs,
        policy,
        n_processors=8,
        seed=seed,
        rng=rng.spawn(f"{policy.name}/{'sim' if oracle else 'analytic'}"),
        footprint_model=oracle,
    )
    return system.run()


def make_oracle(seed=3):
    return SimulatedCacheFootprint(
        {
            "MVA": MINI_MVA.reference,
            "GRAVITY": MINI_GRAVITY.reference,
        },
        scale=64,
        seed=seed,
    )


@pytest.fixture(scope="module")
def pair():
    analytic = run_with(DYN_AFF)
    oracle = make_oracle()
    simulated = run_with(DYN_AFF, oracle=oracle)
    return analytic, simulated, oracle


class TestOracleValidation:
    def test_simulation_actually_ran(self, pair):
        _, _, oracle = pair
        assert oracle.touches_simulated > 10_000

    def test_response_times_agree(self, pair):
        """Per-job response times within 10% across oracles."""
        analytic, simulated, _ = pair
        for name in analytic.jobs:
            a = analytic.jobs[name].response_time
            s = simulated.jobs[name].response_time
            assert s == pytest.approx(a, rel=0.10), name

    def test_work_identical(self, pair):
        """The oracle changes only penalties, never the workload."""
        analytic, simulated, _ = pair
        for name in analytic.jobs:
            assert simulated.jobs[name].work == pytest.approx(
                analytic.jobs[name].work, rel=1e-9
            )

    def test_penalty_totals_same_order(self, pair):
        """Total cache penalties agree within a factor of ~2.5."""
        analytic, simulated, _ = pair
        a = sum(m.cache_penalty_total for m in analytic.jobs.values())
        s = sum(m.cache_penalty_total for m in simulated.jobs.values())
        assert a > 0 and s > 0
        assert 1 / 2.5 < s / a < 2.5

    def test_affinity_percentages_agree(self, pair):
        analytic, simulated, _ = pair
        for name in analytic.jobs:
            a = analytic.jobs[name].pct_affinity
            s = simulated.jobs[name].pct_affinity
            assert abs(a - s) < 25.0, name


class TestOracleBehaviour:
    def test_unknown_task_has_no_penalty(self):
        oracle = make_oracle()
        penalty, affine = oracle.reload_penalty(("MVA", 0), 0)
        assert penalty == 0.0 and affine is False

    def test_migration_costs_more_than_return(self):
        oracle = make_oracle()
        curve = None
        oracle.note_run(("MVA", 0), 0, 0.2, curve)
        stay, affine_stay = oracle.reload_penalty(("MVA", 0), 0)
        move, affine_move = oracle.reload_penalty(("MVA", 0), 1)
        assert affine_stay is True and affine_move is False
        assert stay == pytest.approx(0.0)
        assert move > 0.0

    def test_intervening_task_ejects_partially(self):
        oracle = make_oracle()
        oracle.note_run(("MVA", 0), 0, 0.2, None)
        full, _ = oracle.reload_penalty(("MVA", 0), 1)  # = full footprint
        # Run the intruder long enough to force set conflicts even at the
        # coarse 1/64 cache scale, but short enough that something of the
        # victim survives (0.25 s+ would sweep the whole tiny cache).
        oracle.note_run(("GRAVITY", 0), 0, 0.2, None)
        partial, affine = oracle.reload_penalty(("MVA", 0), 0)
        assert affine is True
        assert 0.0 < partial < full

    def test_app_prefix_resolution(self):
        """Tasks of job 'MVA-1' resolve to the MVA reference spec."""
        oracle = make_oracle()
        oracle.note_run(("MVA-1", 0), 0, 0.05, None)
        assert oracle.touches_simulated > 0

    def test_unknown_app_rejected(self):
        oracle = make_oracle()
        with pytest.raises(KeyError):
            oracle.note_run(("NOPE", 0), 0, 0.05, None)

    def test_reset_clears_state(self):
        oracle = make_oracle()
        oracle.note_run(("MVA", 0), 0, 0.05, None)
        oracle.reset()
        assert oracle.touches_simulated == 0
        assert oracle.reload_penalty(("MVA", 0), 0) == (0.0, False)
