"""Allocation rules D.1-D.3 and A.1-A.2 in isolation."""

import dataclasses

import pytest

from repro.core.policies import DYN_AFF, DYN_AFF_DELAY, DYN_AFF_NOPRI, DYNAMIC, EQUIPARTITION
from repro.core.system import SchedulingSystem
from tests.core.helpers import chain_job, flat_job, phased_job


class TestProcessorRecord:
    def test_state_predicates(self):
        from repro.core.allocator import ProcessorRecord

        proc = ProcessorRecord(0)
        assert proc.is_free and not proc.is_busy and not proc.is_held_idle


class TestRuleD1FreeProcessors:
    def test_free_processors_granted_first(self):
        """A lone job's demand is met entirely from free processors."""
        job = flat_job("J", 4, 1.0, workers=4)
        system = SchedulingSystem([job], DYNAMIC, n_processors=8)
        result = system.run()
        # No other jobs: every dispatch came from the free pool.
        assert result.jobs["J"].response_time == pytest.approx(1.0, rel=1e-2)


class TestRuleD2WillingToYield:
    def test_yield_window_claimable_by_other_job(self):
        """Another job's request takes a processor out of its delay window."""
        # A's phases leave its processors idle in yield windows; B arrives
        # mid-window and must be able to claim them.
        policy = dataclasses.replace(DYN_AFF_DELAY, yield_delay_s=10.0)
        a = phased_job("A", 1, 2, 1.0, workers=2)  # finishes at ~1s, windows after
        b = flat_job("B", 2, 1.0, workers=2)
        system = SchedulingSystem(
            [a, b], policy, n_processors=2, arrival_times=[0.0, 0.5]
        )
        result = system.run()
        # B would wait 10s if windows were not claimable (A finishes ~1s
        # but its job completion frees processors anyway; the real check
        # is that B starts before any window expiry).
        assert result.jobs["B"].response_time < 5.0

    def test_own_job_reuses_window_without_reallocation(self):
        """Work arriving within the window restarts with no dispatch cost."""
        policy = dataclasses.replace(DYN_AFF_DELAY, yield_delay_s=5.0)
        job = phased_job("J", 4, 2, 1.0, workers=2)
        result = SchedulingSystem([job], policy, n_processors=2).run()
        # 4 phases x 2 threads on the same 2 processors: only the initial
        # 2 dispatches are reallocations; barrier restarts are free.
        assert result.jobs["J"].n_reallocations <= 3


class TestRuleD3Preemption:
    def test_preemption_enforces_parity(self):
        hog = flat_job("HOG", 16, 2.0, workers=8)
        late = flat_job("LATE", 16, 2.0, workers=8)
        system = SchedulingSystem(
            [hog, late], DYNAMIC, n_processors=8, arrival_times=[0.0, 0.1]
        )
        result = system.run()
        # Both jobs should end around parity-average allocations.
        assert result.jobs["LATE"].average_allocation > 3.0

    def test_nopri_never_preempts(self):
        hog = flat_job("HOG", 16, 2.0, workers=8)
        late = flat_job("LATE", 4, 0.5, workers=8)
        system = SchedulingSystem(
            [hog, late], DYN_AFF_NOPRI, n_processors=8, arrival_times=[0.0, 0.1]
        )
        result = system.run()
        # Without D.3 the latecomer waits for the hog's threads to end:
        # first processors appear when HOG's first threads finish at t=2
        # (2 rounds of 8 x 2s threads, some workers go idle at t=4).
        assert result.jobs["LATE"].response_time > 1.5


class TestRuleA1LastTask:
    def test_processor_returns_to_last_task(self):
        """Under Dyn-Aff a phased job gets its processors back by history."""
        a = phased_job("A", 6, 4, 0.5, workers=4)
        b = flat_job("B", 30, 1.0, workers=8)
        system = SchedulingSystem([a, b], DYN_AFF, n_processors=8, seed=2)
        result = system.run()
        assert result.jobs["A"].pct_affinity > 30.0

    def test_dynamic_is_affinity_oblivious(self):
        a = phased_job("A", 6, 4, 0.5, workers=4)
        b = flat_job("B", 30, 1.0, workers=8)
        system = SchedulingSystem([a, b], DYNAMIC, n_processors=8, seed=2)
        oblivious = system.run()
        a2 = phased_job("A", 6, 4, 0.5, workers=4)
        b2 = flat_job("B", 30, 1.0, workers=8)
        aware = SchedulingSystem([a2, b2], DYN_AFF, n_processors=8, seed=2).run()
        assert aware.jobs["A"].pct_affinity > oblivious.jobs["A"].pct_affinity


class TestEquipartitionRebalance:
    def test_targets_respect_caps(self):
        small = flat_job("SMALL", 4, 1.0, workers=2)
        big = flat_job("BIG", 16, 1.0, workers=8)
        system = SchedulingSystem([small, big], EQUIPARTITION, n_processors=8)
        system.sim.at(0.0, lambda: None)  # force arrival processing
        result = system.run()
        # SMALL capped at 2 workers -> BIG gets 6.
        assert result.jobs["BIG"].average_allocation > 5.0

    def test_completion_redistributes(self):
        quick = flat_job("QUICK", 4, 0.5, workers=4)
        slow = flat_job("SLOW", 32, 1.0, workers=8)
        result = SchedulingSystem([quick, slow], EQUIPARTITION, n_processors=8).run()
        # After QUICK finishes (~0.5s), SLOW should climb toward 8.
        assert result.jobs["SLOW"].average_allocation > 6.0

    def test_no_mid_run_reallocation(self):
        """Equipartition ignores demand changes between arrivals/departures."""
        a = phased_job("A", 5, 2, 0.5, workers=4)
        b = flat_job("B", 16, 1.0, workers=4)
        result = SchedulingSystem([a, b], EQUIPARTITION, n_processors=8).run()
        # B never receives A's idle processors while A lives -> its
        # average allocation stays ~4 until A completes.
        assert result.jobs["B"].n_reallocations < 20
