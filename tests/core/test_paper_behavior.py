"""Integration tests on the paper's own workload mixes.

These are the paper's qualitative claims, asserted end-to-end on full
workload runs (single seeds; the benchmark suite does the replicated
versions).  They are the most expensive tests in the suite (~10 s).
"""

import pytest

from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
)
from repro.measure.runner import run_mix


@pytest.fixture(scope="module")
def mix5_runs():
    """Mix #5 (1 MATRIX + 1 GRAVITY) under every policy, one seed."""
    return {
        policy.name: run_mix(5, policy, seed=1)
        for policy in (EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_DELAY, DYN_AFF_NOPRI)
    }


class TestFigure5Claims:
    def test_dynamic_beats_equipartition_for_every_job(self, mix5_runs):
        """'Aggressive reallocation of processors is preferable.'"""
        equi = mix5_runs["Equipartition"]
        for policy in ("Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"):
            for job in equi.jobs:
                ratio = (
                    mix5_runs[policy].jobs[job].response_time
                    / equi.jobs[job].response_time
                )
                assert ratio < 1.02, f"{policy}/{job} ratio {ratio:.3f}"

    def test_dynamic_variants_are_nearly_identical(self, mix5_runs):
        """'Affinity scheduling provides little benefit under current conditions.'"""
        for job in mix5_runs["Dynamic"].jobs:
            base = mix5_runs["Dynamic"].jobs[job].response_time
            for policy in ("Dyn-Aff", "Dyn-Aff-Delay"):
                other = mix5_runs[policy].jobs[job].response_time
                assert other == pytest.approx(base, rel=0.10)


class TestTable3Claims:
    def test_affinity_policies_achieve_high_affinity(self, mix5_runs):
        """Dramatically higher %affinity under the affinity variants."""
        for job in ("MATRIX", "GRAVITY"):
            oblivious = mix5_runs["Dynamic"].jobs[job].pct_affinity
            aware = mix5_runs["Dyn-Aff"].jobs[job].pct_affinity
            assert oblivious < 35.0
            assert aware > 40.0
            assert aware > 2 * oblivious

    def test_yield_delay_reduces_reallocations(self, mix5_runs):
        """Dyn-Aff-Delay meets its goal of reducing #reallocations."""
        for job in ("MATRIX", "GRAVITY"):
            aggressive = mix5_runs["Dyn-Aff"].jobs[job].n_reallocations
            delayed = mix5_runs["Dyn-Aff-Delay"].jobs[job].n_reallocations
            assert delayed < 0.8 * aggressive

    def test_reallocation_interval_is_hundreds_of_ms(self, mix5_runs):
        """Row 3 of Table 3: intervals in the 200-450 ms band for Dynamic."""
        for job in ("MATRIX", "GRAVITY"):
            interval = mix5_runs["Dynamic"].jobs[job].reallocation_interval
            assert 0.1 < interval < 1.0

    def test_penalties_small_fraction_of_response_time(self, mix5_runs):
        """The paper's central explanation: cache penalties are small
        relative to response time under space sharing."""
        for job in ("MATRIX", "GRAVITY"):
            m = mix5_runs["Dyn-Aff"].jobs[job]
            assert m.cache_penalty_total < 0.10 * m.response_time


class TestFigure6Claims:
    def test_nopri_is_erratic(self, mix5_runs):
        """Per-job relative RTs under NoPri are extremely variable."""
        equi = mix5_runs["Equipartition"]
        ratios = [
            mix5_runs["Dyn-Aff-NoPri"].jobs[job].response_time
            / equi.jobs[job].response_time
            for job in equi.jobs
        ]
        assert max(ratios) - min(ratios) > 0.3

    def test_nopri_starves_the_bursty_job(self, mix5_runs):
        """Without D.3, GRAVITY cannot reclaim processors from MATRIX."""
        nopri = mix5_runs["Dyn-Aff-NoPri"].jobs
        fair = mix5_runs["Dyn-Aff"].jobs
        assert nopri["GRAVITY"].response_time > fair["GRAVITY"].response_time
        assert nopri["MATRIX"].response_time < fair["MATRIX"].response_time


class TestEquipartitionPerfectAffinity:
    def test_equipartition_barely_reallocates(self, mix5_runs):
        """'Equipartition provides perfect affinity scheduling, since
        tasks essentially never move.'"""
        for job, metrics in mix5_runs["Equipartition"].jobs.items():
            assert metrics.n_reallocations < 50, job

    def test_equipartition_pays_no_cache_penalty(self, mix5_runs):
        for metrics in mix5_runs["Equipartition"].jobs.values():
            assert metrics.cache_penalty_total < 0.1
