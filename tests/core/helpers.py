"""Small synthetic jobs for fast scheduling-system tests."""

from repro.machine.footprint import FootprintCurve
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job

#: A modest working set so cache penalties exist but stay small.
TEST_CURVE = FootprintCurve(w_max=1000, tau=0.05)


def flat_job(name: str, n_threads: int, service: float, workers: int) -> Job:
    """Independent threads (MATRIX-like)."""
    graph = ThreadGraph(name)
    for _ in range(n_threads):
        graph.add_thread(service)
    return Job(name, graph, TEST_CURVE, max_workers=workers)


def chain_job(name: str, n_threads: int, service: float, workers: int = 1) -> Job:
    """A sequential chain (parallelism 1)."""
    graph = ThreadGraph(name)
    ids = [graph.add_thread(service) for _ in range(n_threads)]
    for a, b in zip(ids, ids[1:]):
        graph.add_dependency(a, b)
    return Job(name, graph, TEST_CURVE, max_workers=workers)


def phased_job(
    name: str,
    n_phases: int,
    threads_per_phase: int,
    service: float,
    workers: int,
) -> Job:
    """Barrier-separated phases (GRAVITY-like)."""
    graph = ThreadGraph(name)
    previous_barrier = None
    for _ in range(n_phases):
        tids = []
        for _ in range(threads_per_phase):
            tid = graph.add_thread(service)
            if previous_barrier is not None:
                graph.add_dependency(previous_barrier, tid)
            tids.append(tid)
        barrier = graph.add_thread(0.0)
        for tid in tids:
            graph.add_dependency(tid, barrier)
        previous_barrier = barrier
    return Job(name, graph, TEST_CURVE, max_workers=workers)
