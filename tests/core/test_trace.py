"""Allocation trace recording and Gantt rendering."""

import pytest

from repro.core.policies import DYNAMIC, EQUIPARTITION
from repro.core.system import SchedulingSystem
from repro.core.trace import AllocationTrace, Segment
from tests.core.helpers import flat_job, phased_job


class TestSegments:
    def make_trace(self):
        trace = AllocationTrace()
        trace.record(0.0, 0, "A")
        trace.record(5.0, 0, None)
        trace.record(7.0, 0, "B")
        trace.finish(10.0)
        return trace

    def test_segments_in_order(self):
        segments = self.make_trace().segments(0)
        assert [(s.start, s.end, s.job) for s in segments] == [
            (0.0, 5.0, "A"),
            (5.0, 7.0, None),
            (7.0, 10.0, "B"),
        ]

    def test_segment_duration(self):
        assert Segment(0, 1.0, 3.5, "A").duration == pytest.approx(2.5)

    def test_owner_at(self):
        trace = self.make_trace()
        assert trace.owner_at(0, 2.0) == "A"
        assert trace.owner_at(0, 6.0) is None
        assert trace.owner_at(0, 9.9) == "B"

    def test_allocation_of(self):
        trace = AllocationTrace()
        trace.record(0.0, 0, "A")
        trace.record(0.0, 1, "A")
        trace.record(0.0, 2, "B")
        trace.finish(1.0)
        assert trace.allocation_of("A", 0.5) == 2
        assert trace.allocation_of("B", 0.5) == 1

    def test_job_names_in_first_seen_order(self):
        assert self.make_trace().job_names() == ["A", "B"]

    def test_empty_trace_renders_placeholder(self):
        assert AllocationTrace().render_gantt() == "(empty trace)"

    def test_gantt_width_validated(self):
        with pytest.raises(ValueError):
            self.make_trace().render_gantt(width=5)

    def test_unknown_cpu_yields_no_segments_and_no_owner(self):
        trace = self.make_trace()
        assert trace.segments(99) == []
        assert trace.owner_at(99, 1.0) is None

    def test_allocation_of_unknown_job_is_zero(self):
        assert self.make_trace().allocation_of("nobody", 1.0) == 0

    def test_finish_never_rewinds_end_time(self):
        trace = self.make_trace()
        trace.finish(2.0)  # earlier than the last recorded event
        assert trace.end_time == 10.0

    def test_gantt_blank_cells_before_first_event(self):
        """A processor whose first event is late renders leading blanks."""
        trace = AllocationTrace()
        trace.record(8.0, 0, "A")
        trace.finish(10.0)
        row = trace.render_gantt(width=10).splitlines()[0]
        cells = row.split("|")[1]
        assert cells.startswith(" ") and cells.endswith("A")

    def test_zero_length_intervals_dropped(self):
        trace = AllocationTrace()
        trace.record(1.0, 0, "A")
        trace.record(1.0, 0, None)  # instantaneous ownership
        trace.record(1.0, 0, "B")
        trace.finish(2.0)
        assert [(s.start, s.end, s.job) for s in trace.segments(0)] == [
            (1.0, 2.0, "B")
        ]


class TestSystemIntegration:
    def test_trace_records_real_run(self):
        trace = AllocationTrace()
        jobs = [flat_job("A", 8, 1.0, 4), flat_job("B", 8, 1.0, 4)]
        SchedulingSystem(jobs, DYNAMIC, n_processors=4, trace=trace).run()
        assert trace.processors() == [0, 1, 2, 3]
        assert set(trace.job_names()) == {"A", "B"}
        assert trace.end_time > 0

    def test_gantt_shows_both_jobs(self):
        trace = AllocationTrace()
        jobs = [flat_job("A", 8, 1.0, 4), flat_job("B", 8, 1.0, 4)]
        SchedulingSystem(jobs, DYNAMIC, n_processors=4, trace=trace).run()
        chart = trace.render_gantt(width=40)
        assert "A = A" in chart and "B = B" in chart
        assert "cpu  0" in chart

    def test_equipartition_bands_are_static(self):
        """Under Equipartition each processor has very few owners."""
        trace = AllocationTrace()
        jobs = [phased_job("A", 4, 8, 0.2, 4), flat_job("B", 8, 2.0, 4)]
        SchedulingSystem(jobs, EQUIPARTITION, n_processors=8, trace=trace).run()
        for cpu in trace.processors():
            owners = {s.job for s in trace.segments(cpu) if s.job}
            assert len(owners) <= 2  # at most original owner + post-completion

    def test_dynamic_churns_more_than_equipartition(self):
        def segment_count(policy):
            trace = AllocationTrace()
            jobs = [phased_job("A", 6, 8, 0.2, 4), flat_job("B", 8, 2.0, 4)]
            SchedulingSystem(jobs, policy, n_processors=8, trace=trace, seed=1).run()
            return sum(len(trace.segments(c)) for c in trace.processors())

        assert segment_count(DYNAMIC) > 2 * segment_count(EQUIPARTITION)

    def test_trace_allocation_matches_metrics(self):
        """Integrated trace allocation agrees with the system's accounting."""
        trace = AllocationTrace()
        jobs = [flat_job("A", 8, 1.0, 4)]
        result = SchedulingSystem(jobs, DYNAMIC, n_processors=4, trace=trace).run()
        # Integrate the trace's step function for job A.
        total = sum(
            seg.duration
            for cpu in trace.processors()
            for seg in trace.segments(cpu)
            if seg.job == "A"
        )
        expected = result.jobs["A"].average_allocation * result.jobs["A"].response_time
        assert total == pytest.approx(expected, rel=1e-6)
