"""Figure 6: Dyn-Aff-NoPri relative to Equipartition.

Sacrificing fairness to affinity makes per-job relative response times
"extremely variable": some jobs hoard the machine, others starve.
"""

import pytest

from benchmarks.conftest import cached_comparison, run_once
from repro.measure.runner import relative_response_times
from repro.measure.workloads import MIXES
from repro.reporting.tables import render_relative_rt_table


@pytest.mark.parametrize("mix_id", sorted(MIXES))
def test_fig6_nopri_relative_rt(benchmark, mix_id):
    comparison = run_once(benchmark, cached_comparison, mix_id, "nopri")
    print()
    print(render_relative_rt_table(comparison))
    relatives = relative_response_times(comparison)["Dyn-Aff-NoPri"]
    # Sanity only per-mix: all jobs complete with positive ratios.
    assert all(r > 0 for r in relatives.values())


def test_fig6_nopri_is_erratic_across_jobs(benchmark):
    """The defining feature: per-job ratios spread far more widely than
    under the fair dynamic policies."""
    def spreads():
        nopri, fair = [], []
        for mix_id in (2, 3, 5, 6):  # heterogeneous mixes
            rel_nopri = relative_response_times(cached_comparison(mix_id, "nopri"))
            values = list(rel_nopri["Dyn-Aff-NoPri"].values())
            nopri.append(max(values) - min(values))
            rel_fair = relative_response_times(cached_comparison(mix_id, "dynamic"))
            values = list(rel_fair["Dyn-Aff"].values())
            fair.append(max(values) - min(values))
        return nopri, fair

    nopri, fair = run_once(benchmark, spreads)
    print(f"\n  per-mix ratio spreads  NoPri: {[f'{s:.2f}' for s in nopri]}")
    print(f"  per-mix ratio spreads  Dyn-Aff: {[f'{s:.2f}' for s in fair]}")
    assert max(nopri) > 0.5, "NoPri should starve someone badly somewhere"
    assert sum(nopri) > 2 * sum(fair), "NoPri must be far more variable"


def test_fig6_nopri_both_hoards_and_starves(benchmark):
    """In mix #5 MATRIX hoards (ratio << 1) while GRAVITY starves (>> 1)."""
    relatives = run_once(
        benchmark,
        lambda: relative_response_times(cached_comparison(5, "nopri"))["Dyn-Aff-NoPri"],
    )
    print(f"\n  mix 5 NoPri relative RTs: {relatives}")
    assert relatives["MATRIX"] < 0.8
    assert relatives["GRAVITY"] > 1.1
