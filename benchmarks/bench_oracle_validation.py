"""Validation: the analytic footprint model vs real cache simulation.

Every scheduling result in this repository prices cache reloads with the
analytic footprint-survival model.  This benchmark replays a scaled-down
two-job workload with reloads priced instead by live per-processor
set-associative cache simulation (``SimulatedCacheFootprint``) and prints
the two outcomes side by side — the end-to-end justification for using
the fast analytic model everywhere else.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.policies import DYN_AFF, DYNAMIC
from tests.core.test_oracle_validation import make_oracle, run_with


@pytest.fixture(scope="module")
def pairs():
    out = {}
    for policy in (DYNAMIC, DYN_AFF):
        analytic = run_with(policy)
        simulated = run_with(policy, oracle=make_oracle())
        out[policy.name] = (analytic, simulated)
    return out


def test_oracle_validation_run(benchmark):
    simulated = run_once(benchmark, run_with, DYN_AFF, make_oracle())
    assert simulated.jobs


class TestAnalyticModelHolds:
    def test_print_comparison(self, pairs):
        print()
        for policy, (analytic, simulated) in pairs.items():
            print(f"  {policy}:")
            for name in sorted(analytic.jobs):
                a, s = analytic.jobs[name], simulated.jobs[name]
                print(
                    f"    {name:9s} RT {a.response_time:6.2f}s (analytic) vs "
                    f"{s.response_time:6.2f}s (simulated caches)   "
                    f"penalty {a.cache_penalty_total * 1000:6.1f} vs "
                    f"{s.cache_penalty_total * 1000:6.1f} ms"
                )

    @pytest.mark.parametrize("policy", ["Dynamic", "Dyn-Aff"])
    def test_response_times_within_ten_percent(self, pairs, policy):
        analytic, simulated = pairs[policy]
        for name in analytic.jobs:
            assert simulated.jobs[name].response_time == pytest.approx(
                analytic.jobs[name].response_time, rel=0.10
            ), (policy, name)

    def test_policy_ranking_preserved(self, pairs):
        """Whatever the oracle, Dyn-Aff is never worse than Dynamic here."""
        for oracle_index in (0, 1):
            dyn = pairs["Dynamic"][oracle_index].mean_response_time()
            aff = pairs["Dyn-Aff"][oracle_index].mean_response_time()
            assert aff <= dyn * 1.05
