"""Shared fixtures for the benchmark suite.

Policy-comparison results are cached per (mix, policy set, replications)
so that the Figure 5, Table 3, Figure 6 and Figure 8-13 benchmarks do not
redo each other's simulation work.
"""

from __future__ import annotations

import functools
import os
import typing

import pytest

from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
)
from repro.measure.runner import MixComparison, compare_policies

#: Replications per (mix, policy) in the benchmark suite.  The paper ran
#: to 1% confidence half-widths; 3 replications keeps the full suite in
#: the minutes range while the trends are far larger than the noise.
REPLICATIONS = 3

#: Worker processes used for the replication fan-out.  Parallel results are
#: identical to serial ones (replications are seeded deterministically and
#: committed in order), so this only changes the wall clock; set
#: ``REPRO_BENCH_WORKERS=4`` on a multicore box to speed the suite up.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

_POLICY_SETS = {
    "dynamic": (EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_DELAY),
    "nopri": (EQUIPARTITION, DYN_AFF, DYN_AFF_NOPRI),
}


@functools.lru_cache(maxsize=None)
def cached_comparison(mix_id: int, policy_set: str) -> MixComparison:
    """Run (once per session) a mix under a named policy set."""
    return compare_policies(
        mix_id,
        _POLICY_SETS[policy_set],
        replications=REPLICATIONS,
        base_seed=0,
        workers=WORKERS,
    )


@pytest.fixture
def comparison_factory() -> typing.Callable[[int, str], MixComparison]:
    """Factory fixture returning cached mix comparisons."""
    return cached_comparison


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
