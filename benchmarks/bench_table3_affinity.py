"""Table 3: influence of affinity on scheduling (workload #5).

%affinity, #reallocations, reallocation interval and response time for
MATRIX and GRAVITY under Dynamic, Dyn-Aff and Dyn-Aff-Delay.
"""

import pytest

from benchmarks.conftest import cached_comparison, run_once
from benchmarks.paper_values import TABLE3
from repro.reporting.tables import render_table3

POLICIES = ("Dynamic", "Dyn-Aff", "Dyn-Aff-Delay")
JOBS = ("MATRIX", "GRAVITY")


@pytest.fixture(scope="module")
def comparison():
    return cached_comparison(5, "dynamic")


def test_table3_run(benchmark):
    comparison = run_once(benchmark, cached_comparison, 5, "dynamic")
    print()
    print(render_table3(comparison, policies=POLICIES))
    print()
    print("paper values:")
    for metric, per_policy in TABLE3.items():
        row = "  ".join(
            f"{p[:12]}/{j}={per_policy[p][j]}" for p in POLICIES for j in JOBS
        )
        print(f"  {metric:20s} {row}")


class TestTable3Shape:
    def test_affinity_policies_dramatically_raise_pct_affinity(self, comparison):
        """Row 1: ~20-30% under Dynamic vs 50-90% under affinity variants."""
        for job in JOBS:
            oblivious = comparison.summaries["Dynamic"][job].pct_affinity
            aware = comparison.summaries["Dyn-Aff"][job].pct_affinity
            assert oblivious < 40
            assert aware > 40
            assert aware > oblivious + 25

    def test_yield_delay_cuts_reallocations(self, comparison):
        """Row 2: Dyn-Aff-Delay meets its goal of reducing #reallocations."""
        for job in JOBS:
            base = comparison.summaries["Dyn-Aff"][job].n_reallocations
            delayed = comparison.summaries["Dyn-Aff-Delay"][job].n_reallocations
            assert delayed < 0.8 * base

    def test_reallocation_intervals_in_paper_band(self, comparison):
        """Row 3: hundreds of milliseconds between reallocations — the
        key quantity making cache penalties negligible."""
        for policy in ("Dynamic", "Dyn-Aff"):
            for job in JOBS:
                interval_ms = (
                    comparison.summaries[policy][job].reallocation_interval * 1000
                )
                assert 100 < interval_ms < 1000, (policy, job, interval_ms)

    def test_response_times_unaffected_by_affinity(self, comparison):
        """Row 4: response times essentially unchanged across variants."""
        for job in JOBS:
            base = comparison.summaries["Dynamic"][job].response_time.mean
            for policy in ("Dyn-Aff", "Dyn-Aff-Delay"):
                other = comparison.summaries[policy][job].response_time.mean
                assert other == pytest.approx(base, rel=0.10)

    def test_reallocation_counts_are_thousands(self, comparison):
        """Order-of-magnitude agreement with the paper's counts."""
        for job in JOBS:
            count = comparison.summaries["Dynamic"][job].n_reallocations
            assert 400 < count < 10000
