"""Extension: job arrivals and interactive response.

The paper justifies the adaptive priority mechanism partly on grounds the
closed mixes cannot show: "fairness, interactive response time, and
resilience to countermeasures" [McCann et al. 91].  This benchmark opens
the system: a long MATRIX job owns the machine while short interactive
jobs arrive every few seconds.  The fair dynamic policies must carve out
processors for each newcomer immediately (rule D.3); Dyn-Aff-NoPri — no
preemption — makes newcomers wait for the hog's threads to end.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import APPLICATIONS
from repro.core.policies import DYN_AFF, DYN_AFF_NOPRI, DYNAMIC, EQUIPARTITION
from repro.core.system import SchedulingSystem
from repro.engine.rng import RngRegistry
from repro.machine.footprint import FootprintCurve
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job

#: Short interactive job: 8 x 0.5 s threads (1 s on 4 processors).
SHORT_THREADS = 8
SHORT_SERVICE = 0.5
ARRIVALS = (5.0, 10.0, 15.0, 20.0)


def make_short_job(name, rng):
    graph = ThreadGraph(name)
    for _ in range(SHORT_THREADS):
        jitter = 1.0 + 0.1 * (2.0 * rng.random() - 1.0)
        graph.add_thread(SHORT_SERVICE * jitter)
    return Job(name, graph, FootprintCurve(800, 0.05), max_workers=4)


def run_open_system(policy, seed=0):
    rng = RngRegistry(seed)
    matrix = APPLICATIONS["MATRIX"].make_job(rng.stream("matrix"), n_processors=16)
    shorts = [
        make_short_job(f"SHORT-{i}", rng.stream(f"short/{i}"))
        for i in range(len(ARRIVALS))
    ]
    system = SchedulingSystem(
        [matrix] + shorts,
        policy,
        n_processors=16,
        seed=seed,
        rng=rng.spawn(policy.name),
        arrival_times=[0.0] + list(ARRIVALS),
    )
    result = system.run()
    short_rts = [result.jobs[f"SHORT-{i}"].response_time for i in range(len(ARRIVALS))]
    return result, sum(short_rts) / len(short_rts)


@pytest.fixture(scope="module")
def runs():
    return {
        policy.name: run_open_system(policy)
        for policy in (EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_NOPRI)
    }


def test_arrivals_run(benchmark):
    result, mean_short = run_once(benchmark, run_open_system, DYN_AFF)
    assert mean_short > 0


class TestInteractiveResponse:
    def test_print(self, runs):
        print()
        for name, (result, mean_short) in runs.items():
            matrix_rt = result.jobs["MATRIX"].response_time
            print(f"  {name:14s} mean short-job RT {mean_short:6.2f} s, "
                  f"MATRIX RT {matrix_rt:6.1f} s")

    def test_fair_dynamic_policies_serve_newcomers_fast(self, runs):
        """D.3 carves out processors within the newcomers' own runtime:
        a 1 s job finishes in low single-digit seconds."""
        for policy in ("Dynamic", "Dyn-Aff"):
            _, mean_short = runs[policy]
            assert mean_short < 3.0, (policy, mean_short)

    def test_nopri_makes_newcomers_wait(self, runs):
        """Without preemption a newcomer waits for the hog's 12 s threads."""
        _, nopri_short = runs["Dyn-Aff-NoPri"]
        _, fair_short = runs["Dyn-Aff"]
        assert nopri_short > 2 * fair_short

    def test_equipartition_also_serves_newcomers(self, runs):
        """Equipartition reallocates on arrival, so newcomers do fine —
        its weakness is waste, not admission."""
        _, equi_short = runs["Equipartition"]
        assert equi_short < 5.0

    def test_matrix_pays_little_for_interactivity(self, runs):
        """Serving the short jobs costs the long job only their work."""
        fair = runs["Dyn-Aff"][0].jobs["MATRIX"].response_time
        alone_estimate = 770 / 16  # its work on the whole machine
        total_short_work = len(ARRIVALS) * SHORT_THREADS * SHORT_SERVICE
        budget = alone_estimate + total_short_work / 16 + 8.0
        assert fair < budget
