"""The numbers printed in the paper, for side-by-side comparison.

Transcribed from Vaswani & Zahorjan (SOSP 1991).  Benchmarks print these
next to our measured values; the assertions check *shape* (orderings,
growth directions, crossover structure), never absolute equality — our
substrate is a simulator, not the authors' Sequent Symmetry.
"""

#: Table 1 P^NA in microseconds: app -> {Q seconds: value}.
TABLE1_PNA_US = {
    "MATRIX": {0.025: 882, 0.100: 1076, 0.400: 1679},
    "MVA": {0.025: 914, 0.100: 1267, 0.400: 2330},
    "GRAVITY": {0.025: 364, 0.100: 1576, 0.400: 2349},
}

#: Table 1 P^A in microseconds: app -> {Q: {intervening app: value}}.
TABLE1_PA_US = {
    "MATRIX": {
        0.025: {"MATRIX": 120, "MVA": 177, "GRAVITY": 165},
        0.100: {"MATRIX": 171, "MVA": 419, "GRAVITY": 374},
        0.400: {"MATRIX": 737, "MVA": 1166, "GRAVITY": 815},
    },
    "MVA": {
        0.025: {"MATRIX": 107, "MVA": 166, "GRAVITY": 194},
        0.100: {"MATRIX": 164, "MVA": 330, "GRAVITY": 221},
        0.400: {"MATRIX": 627, "MVA": 1061, "GRAVITY": 1103},
    },
    "GRAVITY": {
        0.025: {"MATRIX": 154, "MVA": 301, "GRAVITY": 210},
        0.100: {"MATRIX": 415, "MVA": 740, "GRAVITY": 353},
        0.400: {"MATRIX": 1793, "MVA": 2080, "GRAVITY": 1719},
    },
}

#: Kernel reallocation path length the paper measured.
CONTEXT_SWITCH_US = 750

#: Table 3 (workload #5): metric -> policy -> job -> value.
TABLE3 = {
    "pct_affinity": {
        "Dynamic": {"MATRIX": 21, "GRAVITY": 31},
        "Dyn-Aff": {"MATRIX": 83, "GRAVITY": 54},
        "Dyn-Aff-Delay": {"MATRIX": 86, "GRAVITY": 59},
    },
    "n_reallocations": {
        "Dynamic": {"MATRIX": 2469, "GRAVITY": 1745},
        "Dyn-Aff": {"MATRIX": 2409, "GRAVITY": 1780},
        "Dyn-Aff-Delay": {"MATRIX": 1611, "GRAVITY": 1139},
    },
    "realloc_interval_ms": {
        "Dynamic": {"MATRIX": 293, "GRAVITY": 222},
        "Dyn-Aff": {"MATRIX": 300, "GRAVITY": 218},
        "Dyn-Aff-Delay": {"MATRIX": 445, "GRAVITY": 340},
    },
    "response_time_s": {
        "Dynamic": {"MATRIX": 87.5, "GRAVITY": 51.4},
        "Dyn-Aff": {"MATRIX": 87.0, "GRAVITY": 51.5},
        "Dyn-Aff-Delay": {"MATRIX": 86.3, "GRAVITY": 51.4},
    },
}

#: Table 4: mean job response time, homogeneous workloads.
TABLE4 = {
    1: {"Dyn-Aff": 20.22, "Dyn-Aff-NoPri": 20.13},
    4: {"Dyn-Aff": 50.07, "Dyn-Aff-NoPri": 53.07},
}
