"""Table 1: P^A and P^NA for every application at Q = 25/100/400 ms.

Runs the Section 4 single-processor rescheduling experiment on the
stateful cache simulator (1/16 fidelity scale; penalties in seconds are
scale-invariant) and prints measured-vs-paper for all 36 cells.
"""

import pytest

from benchmarks.conftest import run_once
from benchmarks.paper_values import CONTEXT_SWITCH_US, TABLE1_PA_US, TABLE1_PNA_US
from repro.apps import APPLICATIONS
from repro.measure.penalty import PAPER_QUANTA_S, PenaltyExperiment

APPS = ("MATRIX", "MVA", "GRAVITY")


@pytest.fixture(scope="module")
def table1():
    experiment = PenaltyExperiment(scale=16, n_switches_target=30)
    return experiment.table1([APPLICATIONS[name] for name in APPS])


def _print_table1(table):
    print()
    print("Table 1 — measured (paper) in usec per switch")
    for q in PAPER_QUANTA_S:
        print(f"  Q = {q * 1000:.0f} ms:")
        for app in APPS:
            r = table.result(app, q)
            cells = [f"P^NA={r.p_na_us:5.0f} ({TABLE1_PNA_US[app][q]:4d})"]
            for partner in APPS:
                cells.append(
                    f"P^A[{partner[:4]}]={r.p_a_us(partner):5.0f} "
                    f"({TABLE1_PA_US[app][q][partner]:4d})"
                )
            print(f"    {app:8s} " + "  ".join(cells))


def test_table1_measure(benchmark):
    """Time the full Table 1 measurement and print measured-vs-paper."""
    experiment = PenaltyExperiment(scale=16, n_switches_target=30)
    table = run_once(
        benchmark, experiment.table1, [APPLICATIONS[name] for name in APPS]
    )
    assert len(table.results) == 9
    _print_table1(table)


class TestTable1Shape:
    def test_print_full_table(self, table1):
        _print_table1(table1)

    @pytest.mark.parametrize("app", APPS)
    def test_pna_grows_with_q(self, table1, app):
        values = [table1.result(app, q).p_na_us for q in PAPER_QUANTA_S]
        assert values == sorted(values)

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("q", PAPER_QUANTA_S)
    def test_pa_below_pna(self, table1, app, q):
        """Affinity always helps: every P^A is below the app's P^NA."""
        result = table1.result(app, q)
        for partner in APPS:
            assert result.p_a_us(partner) < result.p_na_us

    def test_cache_effects_dominate_path_length_at_large_q(self, table1):
        """'The cache effects of a processor reallocation can exceed the
        simple path length costs' (750 us)."""
        for app in APPS:
            assert table1.result(app, 0.400).p_na_us > CONTEXT_SWITCH_US

    def test_gravity_smallest_at_25ms_largest_at_400ms(self, table1):
        """GRAVITY's slow footprint build then large total footprint."""
        at_25 = {app: table1.result(app, 0.025).p_na_us for app in APPS}
        at_400 = {app: table1.result(app, 0.400).p_na_us for app in APPS}
        assert at_25["GRAVITY"] == min(at_25.values())
        assert at_400["GRAVITY"] == max(at_400.values())

    def test_pna_bounded_by_full_cache_fill(self, table1):
        """No penalty can exceed reloading the whole 4096-line cache."""
        for app in APPS:
            for q in PAPER_QUANTA_S:
                assert table1.result(app, q).p_na_us <= 3072 * 1.1

    @pytest.mark.parametrize("app", APPS)
    def test_magnitudes_within_2x_of_paper(self, table1, app):
        """P^NA cells land within 2x of the paper's measurements."""
        for q in PAPER_QUANTA_S:
            measured = table1.result(app, q).p_na_us
            paper = TABLE1_PNA_US[app][q]
            assert paper / 2 <= measured <= paper * 2, (app, q, measured, paper)
