"""Performance of the simulation substrates themselves.

Unlike the experiment benchmarks (which run once and check shapes), these
use pytest-benchmark's repeated timing to track the throughput of the
hot paths: the event queue, the cache simulator, the footprint model, and
a full scheduling run.  Regressions here make every experiment slower.
"""

import os
import random
import time

import pytest

from repro.apps import APPLICATIONS
from repro.apps.reference import ReferenceGenerator, ReferenceSpec
from repro.core.policies import DYN_AFF, DYNAMIC, EQUIPARTITION
from repro.core.system import SchedulingSystem
from repro.engine.queue import EventQueue
from repro.engine.simulator import Simulator
from repro.machine.backends import numpy_available
from repro.machine.batching import DEFAULT_CHUNK
from repro.machine.cache import SetAssociativeCache
from repro.machine.footprint import FootprintCurve, FootprintModel
from repro.machine.params import SEQUENT_SYMMETRY
from repro.measure.penalty import PenaltyExperiment
from repro.measure.runner import compare_policies, run_mix
from repro.measure.workloads import WorkloadMix
from tests.core.helpers import flat_job, phased_job


def test_event_queue_throughput(benchmark):
    """Push + pop 10k events through the binary heap."""

    def churn():
        queue = EventQueue()
        for i in range(10_000):
            queue.push(float(i % 97), lambda: None)
        while queue:
            queue.pop()

    benchmark(churn)


def test_simulator_event_dispatch(benchmark):
    """Fire 10k self-scheduling events through the run loop."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()

    benchmark(run)


def test_cache_simulator_throughput(benchmark):
    """100k accesses against the full 4096-line Symmetry cache.

    Drives the batched hot path the Section 4 regime loops use:
    DEFAULT_CHUNK-sized ``access_batch`` calls (the per-chunk driver
    overhead is included, pre-chunking is not — the drivers reuse their
    chunk lists the same way).
    """
    cache = SetAssociativeCache(SEQUENT_SYMMETRY)
    blocks = [(i * 7) % 6000 for i in range(100_000)]
    chunks = [
        blocks[i : i + DEFAULT_CHUNK] for i in range(0, len(blocks), DEFAULT_CHUNK)
    ]

    def churn():
        access_batch = cache.access_batch
        for chunk in chunks:
            access_batch("t", chunk)

    benchmark(churn)


def test_cache_simulator_scalar_throughput(benchmark):
    """The same 100k accesses through the scalar one-call-per-touch API.

    Tracked alongside the batched benchmark so the speedup ratio of the
    batch path stays visible in CI history.
    """
    cache = SetAssociativeCache(SEQUENT_SYMMETRY)

    def churn():
        access = cache.access
        for i in range(100_000):
            access("t", (i * 7) % 6000)

    benchmark(churn)


@pytest.mark.skipif(not numpy_available(), reason="numpy backend requires numpy")
def test_cache_simulator_numpy_throughput(benchmark):
    """The same 100k accesses through the vectorized numpy backend.

    Chunks are prebuilt ``int64`` arrays — the backend's native columnar
    input.  Converting a 100k-element Python list to an array costs
    ~1.7 ms by itself (more than the whole kernel), so feeding lists
    would benchmark the conversion, not the cache.
    """
    import numpy as np

    cache = SetAssociativeCache(SEQUENT_SYMMETRY, backend="numpy")
    full = np.asarray([(i * 7) % 6000 for i in range(100_000)], dtype=np.int64)
    chunks = [
        full[i : i + DEFAULT_CHUNK] for i in range(0, full.shape[0], DEFAULT_CHUNK)
    ]

    def churn():
        access_batch = cache.access_batch
        for chunk in chunks:
            access_batch("t", chunk)

    benchmark(churn)


@pytest.mark.skipif(not numpy_available(), reason="numpy backend requires numpy")
def test_cache_simulator_numpy_speedup_guard():
    """CI guard: the numpy backend beats the batched scalar path >= 5x.

    Times both backends on the 100k-access benchmark trace with
    interleaved min-of-N rounds, each preceded by an untimed warmup pass
    (the backends' working sets evict each other from the CPU cache, so
    an unwarmed interleave under-reports the vectorized kernel by
    ~20%).  Each backend gets its natural input: list chunks for the
    scalar loop, prebuilt ``int64`` array chunks for the columnar
    kernel.
    """
    import numpy as np

    blocks = [(i * 7) % 6000 for i in range(100_000)]
    list_chunks = [
        blocks[i : i + DEFAULT_CHUNK] for i in range(0, len(blocks), DEFAULT_CHUNK)
    ]
    full = np.asarray(blocks, dtype=np.int64)
    array_chunks = [
        full[i : i + DEFAULT_CHUNK] for i in range(0, full.shape[0], DEFAULT_CHUNK)
    ]

    def run(backend, chunks):
        cache = SetAssociativeCache(SEQUENT_SYMMETRY, backend=backend)
        access_batch = cache.access_batch
        for chunk in chunks:
            access_batch("t", chunk)

    def attempt():
        scalar_s = vector_s = float("inf")
        for _ in range(12):
            run("scalar", list_chunks)
            start = time.perf_counter()
            run("scalar", list_chunks)
            scalar_s = min(scalar_s, time.perf_counter() - start)
            run("numpy", array_chunks)
            start = time.perf_counter()
            run("numpy", array_chunks)
            vector_s = min(vector_s, time.perf_counter() - start)
        ratio = scalar_s / vector_s if vector_s else float("inf")
        print(
            f"\n100k batched cache accesses: scalar {scalar_s * 1e3:.2f}ms, "
            f"numpy {vector_s * 1e3:.2f}ms, speedup {ratio:.2f}x"
        )
        return ratio

    # A shared-runner noise burst can shave ~20% off a single attempt's
    # ratio, so allow up to three; a real kernel regression fails all of
    # them.
    ratios = []
    for _ in range(3):
        ratios.append(attempt())
        if ratios[-1] >= 5.0:
            break
    assert max(ratios) >= 5.0, (
        f"numpy backend speedup {max(ratios):.2f}x across "
        f"{len(ratios)} attempts (floor 5.0x)"
    )


def test_tracer_disabled_overhead():
    """CI guard: a disabled tracer must cost <5% on the cache hot path.

    Re-runs the 100k-access batched benchmark twice — bare cache versus a
    cache with a :class:`NullTracer` attached — and compares min-of-N
    timings.  The instrumented hot path's guard is one attribute load and
    branch per ``access_batch`` call (not per access), so the disabled
    path must be indistinguishable; 5% is pure noise margin.
    """
    from repro.obs import NullTracer

    blocks = [(i * 7) % 6000 for i in range(100_000)]
    chunks = [
        blocks[i : i + DEFAULT_CHUNK] for i in range(0, len(blocks), DEFAULT_CHUNK)
    ]

    def best_of(cache, rounds=7):
        access_batch = cache.access_batch
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for chunk in chunks:
                access_batch("t", chunk)
            best = min(best, time.perf_counter() - start)
        return best

    bare = SetAssociativeCache(SEQUENT_SYMMETRY)
    nulled = SetAssociativeCache(SEQUENT_SYMMETRY)
    nulled.attach_tracer(NullTracer(), cpu_id=0, clock=lambda: 0.0)

    base_s = best_of(bare)
    null_s = best_of(nulled)
    ratio = null_s / base_s if base_s else float("inf")
    print(
        f"\ndisabled-tracer overhead on 100k batched cache accesses: "
        f"bare {base_s * 1e3:.2f}ms, NullTracer {null_s * 1e3:.2f}ms, "
        f"ratio {ratio:.4f}x"
    )
    assert ratio <= 1.05, f"disabled tracer costs {ratio:.4f}x (budget 1.05x)"


def test_profiler_disabled_overhead():
    """CI guard: a disabled profiler must cost <5% on the cache hot path.

    Mirrors ``test_tracer_disabled_overhead`` for the span profiler: the
    instrumented ``access_batch`` guard is one attribute load and branch
    per batch when the attached profiler reports ``enabled == False``, so
    a :class:`NullSpanProfiler`-attached cache must time within noise of
    a bare one on the same 100k-access benchmark.
    """
    from repro.obs.profiling import NullSpanProfiler

    blocks = [(i * 7) % 6000 for i in range(100_000)]
    chunks = [
        blocks[i : i + DEFAULT_CHUNK] for i in range(0, len(blocks), DEFAULT_CHUNK)
    ]

    def best_of(cache, rounds=7):
        access_batch = cache.access_batch
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for chunk in chunks:
                access_batch("t", chunk)
            best = min(best, time.perf_counter() - start)
        return best

    bare = SetAssociativeCache(SEQUENT_SYMMETRY)
    nulled = SetAssociativeCache(SEQUENT_SYMMETRY)
    nulled.attach_profiler(NullSpanProfiler())

    base_s = best_of(bare)
    null_s = best_of(nulled)
    ratio = null_s / base_s if base_s else float("inf")
    print(
        f"\ndisabled-profiler overhead on 100k batched cache accesses: "
        f"bare {base_s * 1e3:.2f}ms, NullSpanProfiler {null_s * 1e3:.2f}ms, "
        f"ratio {ratio:.4f}x"
    )
    assert ratio <= 1.05, f"disabled profiler costs {ratio:.4f}x (budget 1.05x)"


def test_streaming_checker_overhead():
    """CI guard: the live streaming pipeline must cost <5% on the hot path.

    Unlike the disabled-tracer guards above, this one runs *enabled*
    instrumentation: a :class:`StreamingTracer` fanning out to the
    incremental invariant checker and the streaming metrics aggregator.
    The cache hot path emits one :class:`CacheBatch` record per
    ``access_batch`` call (not per access), so the whole single-pass
    pipeline — construct record, feed checker, feed metrics — amortizes
    to ~per-chunk cost and must stay within the same 5% envelope the
    disabled guards use.
    """
    from repro.obs.invariants import StreamingChecker
    from repro.obs.streaming import StreamingMetrics, StreamingTracer

    blocks = [(i * 7) % 6000 for i in range(100_000)]
    chunks = [
        blocks[i : i + DEFAULT_CHUNK] for i in range(0, len(blocks), DEFAULT_CHUNK)
    ]

    def one_pass(cache):
        access_batch = cache.access_batch
        for chunk in chunks:
            access_batch("t", chunk)

    bare = SetAssociativeCache(SEQUENT_SYMMETRY)
    streamed = SetAssociativeCache(SEQUENT_SYMMETRY)
    tracer = StreamingTracer([StreamingChecker(), StreamingMetrics()])
    streamed.attach_tracer(tracer, cpu_id=0, clock=lambda: 0.0)

    def attempt():
        # Interleaved min-of-N with untimed warmups, same discipline as
        # the numpy speedup guards: the two caches' working sets evict
        # each other, so back-to-back blocks mistime whichever runs
        # second.
        base_s = live_s = float("inf")
        for _ in range(7):
            one_pass(bare)
            start = time.perf_counter()
            one_pass(bare)
            base_s = min(base_s, time.perf_counter() - start)
            one_pass(streamed)
            start = time.perf_counter()
            one_pass(streamed)
            live_s = min(live_s, time.perf_counter() - start)
        ratio = live_s / base_s if base_s else float("inf")
        print(
            f"\nstreaming-pipeline overhead on 100k batched cache accesses: "
            f"bare {base_s * 1e3:.2f}ms, checker+metrics {live_s * 1e3:.2f}ms, "
            f"ratio {ratio:.4f}x ({len(tracer)} records streamed)"
        )
        return ratio

    # One noisy attempt must not fail the build; a real per-record cost
    # regression (the pipeline runs per batch, not per access) fails all
    # three.
    ratios = []
    for _ in range(3):
        ratios.append(attempt())
        if ratios[-1] <= 1.05:
            break
    assert len(tracer) > 0, "streaming tracer saw no records; guard is vacuous"
    assert min(ratios) <= 1.05, (
        f"streaming pipeline costs {min(ratios):.4f}x across "
        f"{len(ratios)} attempts (budget 1.05x)"
    )


#: The Table 1 measured-application stream the generator benchmarks use.
_BENCH_REF = ReferenceSpec(
    data_blocks=3500, p_reuse=0.9875, refs_per_touch=20, reuse_window=1100
)


def test_reference_generator_throughput(benchmark):
    """100k touches from the batched scalar reference-stream engine."""
    gen = ReferenceGenerator(_BENCH_REF, random.Random(0), backend="scalar")

    def churn():
        for _ in range(0, 100_000, DEFAULT_CHUNK):
            gen.next_blocks(DEFAULT_CHUNK)

    benchmark(churn)


@pytest.mark.skipif(not numpy_available(), reason="numpy engine requires numpy")
def test_reference_generator_numpy_throughput(benchmark):
    """100k touches from the vectorized engine, fused array output.

    Warmed past the ring-fill point first (the benchmark stream appends
    its 1100th distinct block after ~88k touches) so the timed region is
    the steady-state vectorized parse, not the scalar warmup.
    """
    gen = ReferenceGenerator(_BENCH_REF, random.Random(0), backend="numpy")
    assert gen.backend_name == "numpy"
    gen.next_blocks_array(200_000)

    def churn():
        for _ in range(0, 100_000, DEFAULT_CHUNK):
            gen.next_blocks_array(DEFAULT_CHUNK)

    benchmark(churn)


@pytest.mark.skipif(not numpy_available(), reason="numpy engine requires numpy")
def test_reference_generator_numpy_speedup_guard():
    """CI guard: the numpy generator beats the scalar loop >= 2.2x.

    Mirrors ``test_cache_simulator_numpy_speedup_guard``: interleaved
    min-of-N rounds with untimed warmup passes, up to three attempts.
    Both engines play the same 100k-touch benchmark stream in
    DEFAULT_CHUNK chunks from ring-full steady state.  The measured
    steady-state speedup is ~4x (whole-call draws reach ~4.2x; chunked
    draws pay per-call parse overhead and land ~3.3x); the 2.2x floor
    leaves headroom
    for shared-runner noise while still catching a vectorization
    regression.
    """
    g_s = ReferenceGenerator(_BENCH_REF, random.Random(0), backend="scalar")
    g_v = ReferenceGenerator(_BENCH_REF, random.Random(0), backend="numpy")
    g_s.next_blocks(200_000)
    g_v.next_blocks_array(200_000)

    def run_scalar():
        for _ in range(0, 100_000, DEFAULT_CHUNK):
            g_s.next_blocks(DEFAULT_CHUNK)

    def run_vector():
        for _ in range(0, 100_000, DEFAULT_CHUNK):
            g_v.next_blocks_array(DEFAULT_CHUNK)

    def attempt():
        scalar_s = vector_s = float("inf")
        for _ in range(10):
            run_scalar()
            start = time.perf_counter()
            run_scalar()
            scalar_s = min(scalar_s, time.perf_counter() - start)
            run_vector()
            start = time.perf_counter()
            run_vector()
            vector_s = min(vector_s, time.perf_counter() - start)
        ratio = scalar_s / vector_s if vector_s else float("inf")
        print(
            f"\n100k generator touches: scalar {scalar_s * 1e3:.2f}ms, "
            f"numpy {vector_s * 1e3:.2f}ms, speedup {ratio:.2f}x"
        )
        return ratio

    ratios = []
    for _ in range(3):
        ratios.append(attempt())
        if ratios[-1] >= 2.2:
            break
    assert max(ratios) >= 2.2, (
        f"numpy generator speedup {max(ratios):.2f}x across "
        f"{len(ratios)} attempts (floor 2.2x)"
    )


def test_penalty_regime_throughput(benchmark):
    """One full-fidelity (scale=1) stationary+migrating measurement.

    The end-to-end number the batching work exists for: generator, cache
    and chunked driver together at the paper's real cache size.
    """
    experiment = PenaltyExperiment(scale=1, n_switches_target=5, min_run_s=0.25)

    def run():
        return experiment.measure(APPLICATIONS["MVA"], 0.05, partners=())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.p_na_s > 0


def test_footprint_model_throughput(benchmark):
    """10k note_run/reload_penalty cycles (the DES hot path)."""
    model = FootprintModel(SEQUENT_SYMMETRY)
    curve = FootprintCurve(w_max=2000, tau=0.05)

    def churn():
        for i in range(10_000):
            task = f"t{i % 20}"
            cpu = i % 16
            model.reload_penalty(task, cpu)
            model.note_run(task, cpu, 0.05, curve)

    benchmark(churn)


def test_scheduling_run_small(benchmark):
    """A small two-job scheduling run, end to end."""

    def run():
        jobs = [phased_job("A", 4, 8, 0.05, 4), flat_job("B", 16, 0.5, 4)]
        return SchedulingSystem(jobs, DYN_AFF, n_processors=8, seed=0).run()

    result = benchmark(run)
    assert result.jobs


def test_scheduling_run_full_mix(benchmark):
    """Workload #5 under Dyn-Aff: the workhorse of the experiment suite."""
    result = benchmark.pedantic(
        run_mix, args=(5, DYN_AFF), kwargs={"seed": 0}, rounds=3, iterations=1
    )
    assert result.jobs


def test_parallel_replication_speedup():
    """Wall-clock speedup of the parallel replication runner.

    Runs a multi-policy comparison serially and at 4 workers.  The results
    must be identical (deterministic per-replication seeds, ordered
    commits); the speedup assertion only applies on machines with >= 4
    cores — on smaller boxes the ratio is still printed for the record.
    """
    mix = WorkloadMix(90, {"MVA": 1, "GRAVITY": 1})
    policies = (EQUIPARTITION, DYNAMIC, DYN_AFF)
    replications = 8

    def timed(workers):
        start = time.perf_counter()
        comparison = compare_policies(
            mix, policies, replications=replications, base_seed=0, workers=workers
        )
        return time.perf_counter() - start, comparison

    serial_s, serial = timed(1)
    parallel_s, parallel = timed(4)
    for policy in serial.policies():
        for job, expected in serial.summaries[policy].items():
            assert parallel.summaries[policy][job].response_time.mean == \
                expected.response_time.mean

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(
        f"\nparallel replication runner: serial {serial_s:.2f}s, "
        f"4 workers {parallel_s:.2f}s, speedup {speedup:.2f}x "
        f"({os.cpu_count()} cores)"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0
