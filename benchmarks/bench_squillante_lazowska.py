"""Section 8.2's baseline: the Squillante & Lazowska queueing model.

Runs the affinity-queueing disciplines (FCFS / FP / LP / MI) across a
sweep of mean run intervals, exhibiting both sides of the disagreement
the paper resolves:

* at short, time-sharing-like intervals, affinity disciplines beat FCFS
  by 15-25% — "affinity scheduling can have a pronounced effect"
  (S&L's conclusion);
* at the long intervals space-sharing policies produce, the effect is
  within noise of zero (this paper's conclusion);
* fixed binding (FP — perfect affinity, the queueing analog of
  Equipartition) wins only at the shortest intervals and loses to
  work-conserving FCFS at long ones: affinity is worth having, but not
  worth sacrificing utilization for.
"""

import dataclasses

import pytest

from benchmarks.conftest import run_once
from repro.model.affinity_queueing import QueueingConfig, compare_disciplines

BASE = QueueingConfig(
    n_processors=4,
    n_tasks=5,
    mean_service_s=0.002,
    mean_think_s=0.004,
    footprint_lines=3000,
    survival=0.7,
)

#: Mean run intervals swept: I/O-bound time sharing up to space sharing.
SERVICES_S = (0.002, 0.010, 0.050, 0.400)


def sweep():
    out = {}
    for service in SERVICES_S:
        config = dataclasses.replace(
            BASE, mean_service_s=service, mean_think_s=2 * service
        )
        out[service] = compare_disciplines(config, n_completions=8000, seed=1)
    return out


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_squillante_lazowska_run(benchmark):
    results = run_once(benchmark, sweep)
    assert set(results) == set(SERVICES_S)


class TestBothConclusions:
    def test_print(self, results):
        print()
        print("  mean cycle time relative to FCFS (affinity %)")
        for service, by_policy in results.items():
            fcfs = by_policy["FCFS"].mean_cycle_s
            row = "  ".join(
                f"{p}: {st.mean_cycle_s / fcfs:5.3f} ({st.pct_affinity:3.0f}%)"
                for p, st in by_policy.items()
            )
            print(f"  run interval {service * 1000:5.1f} ms   {row}")

    def test_pronounced_effect_at_time_sharing_intervals(self, results):
        """S&L reproduced: >= 10% improvement at 2 ms intervals."""
        short = results[0.002]
        fcfs = short["FCFS"].mean_cycle_s
        assert short["LP"].mean_cycle_s < 0.90 * fcfs
        assert short["MI"].mean_cycle_s < 0.90 * fcfs

    def test_negligible_effect_at_space_sharing_intervals(self, results):
        """This paper reproduced: < 2% at 400 ms intervals."""
        long_run = results[0.400]
        fcfs = long_run["FCFS"].mean_cycle_s
        for policy in ("LP", "MI"):
            assert long_run[policy].mean_cycle_s == pytest.approx(fcfs, rel=0.02)

    def test_effect_decays_monotonically_with_interval(self, results):
        """The affinity benefit shrinks as run intervals grow."""
        gains = []
        for service in SERVICES_S:
            by_policy = results[service]
            gains.append(
                1 - by_policy["MI"].mean_cycle_s / by_policy["FCFS"].mean_cycle_s
            )
        assert gains[0] > gains[-1] + 0.05
        assert gains[-1] < 0.03

    def test_static_binding_flips_from_win_to_loss(self, results):
        """FP (the Equipartition analog) wins at 2 ms but loses at 400 ms."""
        short = results[0.002]
        long_run = results[0.400]
        assert short["FP"].mean_cycle_s < short["FCFS"].mean_cycle_s
        assert long_run["FP"].mean_cycle_s > 1.05 * long_run["FCFS"].mean_cycle_s
