"""Ablations of the reproduction's design choices (see DESIGN.md §6).

These are not paper figures; they justify the knobs the paper leaves
open: the yield-delay constant, the history depth (the paper's T = P = 1),
the credit-spending margin, the penalty experiment's fidelity scale, and
the sqrt-memory-law argument of Section 7.2.
"""

import dataclasses
import math

import pytest

from benchmarks.conftest import run_once
from repro.apps import GRAVITY, MATRIX, MVA
from repro.core.policies import DYN_AFF
from repro.core.policies.dyn_aff_delay import DYN_AFF_DELAY
from repro.machine.hierarchy import TwoLevelCache, sqrt_memory_law_table
from repro.measure.penalty import PenaltyExperiment
from repro.measure.runner import run_mix

MIX = 5
SEED = 0


class TestYieldDelayAblation:
    """The 25 ms default sits on a smooth reallocation/response tradeoff."""

    DELAYS_S = (0.0, 0.010, 0.025, 0.050, 0.100)

    @pytest.fixture(scope="class")
    def sweep(self):
        results = {}
        for delay in self.DELAYS_S:
            policy = dataclasses.replace(
                DYN_AFF_DELAY, name=f"Delay-{delay * 1000:.0f}ms", yield_delay_s=delay
            )
            results[delay] = run_mix(MIX, policy, seed=SEED)
        return results

    def test_sweep_run(self, benchmark):
        policy = dataclasses.replace(DYN_AFF_DELAY, yield_delay_s=0.025)
        result = run_once(benchmark, run_mix, MIX, policy, SEED)
        assert result.jobs

    def test_reallocations_decrease_monotonically(self, sweep):
        counts = [
            sum(m.n_reallocations for m in sweep[d].jobs.values())
            for d in self.DELAYS_S
        ]
        print(f"\n  delay(ms) -> reallocations: "
              + ", ".join(f"{d*1000:.0f}:{c}" for d, c in zip(self.DELAYS_S, counts)))
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_waste_grows_with_delay(self, sweep):
        wastes = [
            sum(m.waste for m in sweep[d].jobs.values()) for d in self.DELAYS_S
        ]
        assert wastes[0] == pytest.approx(0.0)
        assert wastes[-1] > wastes[1]

    def test_response_time_stays_flat_through_default(self, sweep):
        """Up to the 25 ms default, mean RT moves by under 5%."""
        base = sweep[0.0].mean_response_time()
        at_default = sweep[0.025].mean_response_time()
        assert at_default == pytest.approx(base, rel=0.05)


class TestHistoryDepthAblation:
    """The paper remembers only the last task/processor; deeper histories
    raise %affinity slightly but do not change response times — T = P = 1
    is enough, as the paper chose."""

    DEPTHS = (1, 2, 4)

    @pytest.fixture(scope="class")
    def sweep(self):
        results = {}
        for depth in self.DEPTHS:
            policy = dataclasses.replace(
                DYN_AFF, name=f"Dyn-Aff-T{depth}", history_depth=depth
            )
            results[depth] = run_mix(MIX, policy, seed=SEED)
        return results

    def test_sweep_run(self, benchmark):
        policy = dataclasses.replace(DYN_AFF, name="Dyn-Aff-T4", history_depth=4)
        result = run_once(benchmark, run_mix, MIX, policy, SEED)
        assert result.jobs

    def test_response_time_insensitive_to_depth(self, sweep):
        base = sweep[1].mean_response_time()
        rows = []
        for depth in self.DEPTHS:
            r = sweep[depth]
            rows.append(
                f"depth {depth}: mean RT {r.mean_response_time():.1f}s, "
                f"GRAV aff {r.jobs['GRAVITY'].pct_affinity:.0f}%"
            )
            assert r.mean_response_time() == pytest.approx(base, rel=0.05)
        print("\n  " + "\n  ".join(rows))

    def test_depth_one_already_captures_most_affinity(self, sweep):
        shallow = sweep[1].jobs["MATRIX"].pct_affinity
        deep = sweep[4].jobs["MATRIX"].pct_affinity
        assert shallow > 0.8 * deep


class TestFidelityScaleAblation:
    """Penalty measurements are scale-invariant by construction; verify
    adjacent scales agree (the scale-16 default is not load-bearing)."""

    def test_scales_agree(self, benchmark):
        def measure(scale):
            experiment = PenaltyExperiment(
                scale=scale, n_switches_target=20, min_run_s=1.0
            )
            return {
                app.name: experiment.measure(app, 0.100, partners=()).p_na_us
                for app in (MVA, MATRIX, GRAVITY)
            }

        coarse = run_once(benchmark, measure, 32)
        fine = measure(16)
        print(f"\n  P^NA at Q=100ms, scale 32 vs 16: "
              + ", ".join(f"{a}: {coarse[a]:.0f}/{fine[a]:.0f}" for a in coarse))
        for app in coarse:
            assert coarse[app] == pytest.approx(fine[app], rel=0.35)


class TestCreditMarginAblation:
    """The credit-spending margin bounds beyond-parity bursts; response
    times are only mildly sensitive across a 4x margin range."""

    def test_margins(self, benchmark):
        from repro.core.priority import CreditScheduler

        def run_with_margin(margin):
            original = CreditScheduler.SPEND_MARGIN
            CreditScheduler.SPEND_MARGIN = margin
            try:
                return run_mix(MIX, DYN_AFF, seed=SEED).mean_response_time()
            finally:
                CreditScheduler.SPEND_MARGIN = original

        base = run_once(benchmark, run_with_margin, 0.5)
        results = {0.5: base}
        for margin in (0.25, 1.0):
            results[margin] = run_with_margin(margin)
        print(f"\n  margin -> mean RT: "
              + ", ".join(f"{m}: {rt:.1f}s" for m, rt in sorted(results.items())))
        for rt in results.values():
            assert rt == pytest.approx(base, rel=0.08)


class TestSqrtMemoryLaw:
    """Section 7.2's two-level-cache argument for the sqrt scaling."""

    def test_table(self, benchmark):
        rows = run_once(benchmark, sqrt_memory_law_table)
        print("\n  speed | req. L2 hit rate (const mem) | (sqrt mem) | feasible")
        for speed, constant, sqrt_rate, feasible in rows:
            print(f"  {speed:6.0f} | {constant:28.4f} | {sqrt_rate:10.4f} | {feasible}")
        cache = TwoLevelCache()
        # Constant memory: infeasible by 10x. Sqrt law: feasible at 10x.
        assert not cache.is_full_speedup_feasible(10.0, 1.0)
        assert cache.is_full_speedup_feasible(10.0, math.sqrt(10.0))
        # But even sqrt memory cannot hold effective memory speed constant
        # forever on hit rates alone — the paper's residual point.
        assert not cache.is_full_speedup_feasible(1000.0, math.sqrt(1000.0))
