"""Figure 5: response times of the dynamic disciplines relative to
Equipartition, for every job in every workload mix.

The paper's first headline result: "the response times for all jobs under
the dynamic disciplines are smaller than the Equipartition response
times", and the three dynamic variants are essentially identical.
"""

import pytest

from benchmarks.conftest import cached_comparison, run_once
from repro.measure.runner import relative_response_times
from repro.measure.workloads import MIXES
from repro.reporting.tables import render_relative_rt_table

DYNAMIC_POLICIES = ("Dynamic", "Dyn-Aff", "Dyn-Aff-Delay")

#: Tolerance above 1.0 treated as parity (seed noise + dispatch overhead
#: on jobs that cannot benefit from reallocation; see EXPERIMENTS.md).
PARITY_SLACK = 0.03


@pytest.mark.parametrize("mix_id", sorted(MIXES))
def test_fig5_relative_response_times(benchmark, mix_id):
    comparison = run_once(benchmark, cached_comparison, mix_id, "dynamic")
    print()
    print(render_relative_rt_table(comparison))
    relatives = relative_response_times(comparison)

    for policy in DYNAMIC_POLICIES:
        for job, ratio in relatives[policy].items():
            # Dynamic disciplines never lose to Equipartition.
            assert ratio < 1.0 + PARITY_SLACK, (policy, job, ratio)

    # The three variants are nearly identical (affinity provides little
    # benefit on current machines).
    for job in comparison.job_names():
        ratios = [relatives[p][job] for p in DYNAMIC_POLICIES]
        assert max(ratios) - min(ratios) < 0.12, (job, ratios)


def test_fig5_dynamic_wins_somewhere_decisively(benchmark):
    """The utilization benefit is real: at least one job in the heavy
    mixes improves by 10% or more."""
    def collect():
        best = 1.0
        for mix_id in (2, 5, 6):
            relatives = relative_response_times(cached_comparison(mix_id, "dynamic"))
            for policy in DYNAMIC_POLICIES:
                best = min(best, min(relatives[policy].values()))
        return best

    best = run_once(benchmark, collect)
    print(f"\n  best relative response time across heavy mixes: {best:.3f}")
    assert best < 0.90
