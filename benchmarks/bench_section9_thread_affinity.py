"""Section 9's future work: affinity inside the user-level thread package.

The paper closes by noting that cache effects "can have a significant
effect on how applications should be programmed" and announces an
investigation of "the design of software layers above the kernel, e.g.,
the user-level thread package".  This benchmark carries that experiment
out on the reproduction: GRAVITY's user-level scheduler dispatches
per-body-partition threads either FIFO (cache-oblivious) or
data-affine — preferring the partition a worker just worked on — under
the same kernel-level Dyn-Aff policy.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import APPLICATIONS
from repro.core.policies import DYN_AFF
from repro.core.system import SchedulingSystem
from repro.engine.rng import RngRegistry
from repro.threads.data_affinity import DataAffinitySpec

#: Warm-data speedup for a thread resuming its partition: modest on a
#: 1991 machine (the partition largely fits the cache already).
WARM_DISCOUNT = 0.10


def run_gravity(scheduler):
    rng = RngRegistry(2)
    spec = DataAffinitySpec(
        warm_discount=WARM_DISCOUNT,
        scheduler=scheduler,
        search_window=128,
        group_memory=8,
    )
    gravity = APPLICATIONS["GRAVITY"].make_job(
        rng.stream("grav"), n_processors=16, data_affinity=spec
    )
    matrix = APPLICATIONS["MATRIX"].make_job(
        rng.stream("mat"), n_processors=16
    )
    system = SchedulingSystem(
        [gravity, matrix], DYN_AFF, n_processors=16, seed=2,
        rng=rng.spawn(scheduler),
    )
    return system.run()


@pytest.fixture(scope="module")
def runs():
    return {s: run_gravity(s) for s in ("fifo", "affine")}


def test_section9_run(benchmark):
    result = run_once(benchmark, run_gravity, "affine")
    assert result.jobs["GRAVITY"].work > 0


class TestUserLevelAffinity:
    def test_affine_dispatch_reduces_gravity_work(self, runs):
        """Warm partitions shave effective processor-seconds."""
        fifo = runs["fifo"].jobs["GRAVITY"]
        affine = runs["affine"].jobs["GRAVITY"]
        print(f"\n  GRAVITY work: fifo {fifo.work:.1f} cpu-s, "
              f"affine {affine.work:.1f} cpu-s "
              f"({100 * (1 - affine.work / fifo.work):.1f}% saved)")
        assert affine.work < fifo.work

    def test_affine_dispatch_improves_response_time(self, runs):
        fifo = runs["fifo"].jobs["GRAVITY"]
        affine = runs["affine"].jobs["GRAVITY"]
        print(f"\n  GRAVITY RT: fifo {fifo.response_time:.1f}s, "
              f"affine {affine.response_time:.1f}s")
        assert affine.response_time < fifo.response_time

    def test_saving_bounded_by_discount(self, runs):
        """Cannot save more than the warm discount on every thread."""
        fifo = runs["fifo"].jobs["GRAVITY"]
        affine = runs["affine"].jobs["GRAVITY"]
        assert affine.work >= (1 - WARM_DISCOUNT) * fifo.work - 1e-9

    def test_kernel_level_metrics_unperturbed(self, runs):
        """The user-level layer composes with (not replaces) the kernel
        allocator: MATRIX's behavior is essentially unchanged."""
        fifo = runs["fifo"].jobs["MATRIX"]
        affine = runs["affine"].jobs["MATRIX"]
        assert affine.work == pytest.approx(fifo.work, rel=1e-6)
        assert affine.response_time == pytest.approx(fifo.response_time, rel=0.1)
