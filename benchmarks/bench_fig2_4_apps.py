"""Figures 2-4: application characteristics in isolation on 16 processors.

For each application the paper shows the thread dependence structure, the
percentage of time spent at each level of physical parallelism, the total
elapsed execution time, and the average processor demand.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import APPLICATIONS
from repro.engine.rng import RngRegistry
from repro.reporting.figures import parallelism_histogram


def profile_app(name):
    spec = APPLICATIONS[name]
    graph = spec.build_graph(RngRegistry(0).stream(f"profile/{name}"))
    return graph.parallelism_profile(16)


@pytest.mark.parametrize("name", ["MVA", "MATRIX", "GRAVITY"])
def test_fig2_4_parallelism_profiles(benchmark, name):
    profile = run_once(benchmark, profile_app, name)
    print()
    print(parallelism_histogram(profile, name))

    if name == "MVA":
        # Figure 2: wavefront — parallelism grows then shrinks, every
        # level up to the machine width is visited.
        assert set(range(1, 17)) <= set(profile.time_at_level)
        assert 5 < profile.average_demand < 14
    elif name == "MATRIX":
        # Figure 3: massive, constant parallelism.
        assert profile.time_at_level.get(16, 0) > 0.85
        assert profile.average_demand > 14
    else:
        # Figure 4: five-phase steps; the sequential tree build keeps a
        # large fraction of time at parallelism one.
        assert profile.time_at_level.get(1, 0) > 0.15
        assert profile.time_at_level.get(16, 0) > 0.3


def test_fig2_4_execution_time_ordering(benchmark):
    """MATRIX is the long job, MVA the short one (drives the mix design)."""
    profiles = run_once(
        benchmark, lambda: {n: profile_app(n) for n in APPLICATIONS}
    )
    times = {n: p.execution_time for n, p in profiles.items()}
    print()
    for name, t in times.items():
        print(f"  {name:8s} isolated execution time: {t:6.2f} s")
    assert times["MVA"] < times["GRAVITY"] < times["MATRIX"]
