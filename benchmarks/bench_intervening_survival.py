"""Extension: the measured survival ratio bridging both literatures.

S&L's queueing model assumes a footprint survives each intervening task
with ratio sigma; this paper's rebuttal is that at space-sharing
reallocation intervals "even a single intervening task can eject large
portions of the returning task's context".  Both statements are about
the same measurable quantity at different Q.  This benchmark measures
sigma(Q) on the cache simulator and shows the crossover of assumptions:

* Q = 25 ms (time-sharing-like): sigma is high — S&L's regime, where
  their model correctly predicts pronounced affinity benefits;
* Q = 400 ms (space-sharing-like): survival after even one intervener
  collapses — the paper's regime, where affinity hardly matters.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import GRAVITY, MATRIX, MVA
from repro.measure.intervening import InterveningExperiment

QUANTA_S = (0.025, 0.100, 0.400)


def sweep():
    experiment = InterveningExperiment(scale=16, n_switches_target=25)
    return {
        q: experiment.measure(MVA, GRAVITY, q_s=q, max_intervening=3)
        for q in QUANTA_S
    }


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_intervening_run(benchmark):
    results = run_once(benchmark, sweep)
    assert set(results) == set(QUANTA_S)


class TestSurvivalBridge:
    def test_print(self, results):
        print()
        print("  MVA footprint survival vs intervening GRAVITY tasks")
        print("  Q (ms) | surv(1) | surv(2) | surv(3) | fitted sigma")
        for q, result in results.items():
            print(
                f"  {q * 1000:6.0f} | {result.survival_after(1):7.3f} | "
                f"{result.survival_after(2):7.3f} | {result.survival_after(3):7.3f} | "
                f"{result.fitted_sigma():6.3f}"
            )

    def test_sigma_decreases_with_q(self, results):
        sigmas = [results[q].fitted_sigma() for q in QUANTA_S]
        assert sigmas == sorted(sigmas, reverse=True)

    def test_time_sharing_regime_preserves_data(self, results):
        """At 25 ms, most of the footprint survives one intervener —
        S&L's assumption holds in their domain."""
        assert results[0.025].survival_after(1) > 0.5

    def test_space_sharing_regime_destroys_data(self, results):
        """At 400 ms, 'even a single intervening task can eject large
        portions of the returning task's context' (Section 8.2)."""
        assert results[0.400].survival_after(1) < 0.45

    def test_penalties_monotone_in_k_at_every_q(self, results):
        for result in results.values():
            penalties = [result.penalty_by_k[k] for k in sorted(result.penalty_by_k)]
            assert penalties == sorted(penalties)
