"""Section 8: why this paper disagrees with earlier affinity studies.

Earlier work ([Squillante & Lazowska 89], [Mogul & Borg 91]) studied
*time sharing* and found affinity important; this paper studies *space
sharing* and finds it nearly irrelevant.  Section 8 argues the two are
consistent: time sharing maximizes involuntary mid-computation switches
and inter-job cache interference, so it is the domain where affinity has
something to fix.

This benchmark runs workload #5 under both domains and verifies the
reconciliation quantitatively:

* space sharing beats time sharing outright (why the paper studies it);
* time sharing generates far more reallocations, dominated by
  involuntary ones;
* adding affinity to the time-sharing scheduler removes a much larger
  share of the cache penalty than adding it to the space-sharing one.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.policies import DYN_AFF, DYNAMIC
from repro.core.timesharing import (
    TIME_SHARING,
    TIME_SHARING_AFFINITY,
    TimeSharingSystem,
)
from repro.engine.rng import RngRegistry
from repro.measure.runner import run_mix
from repro.measure.workloads import make_jobs

MIX = 5
SEED = 1


def run_timesharing(policy):
    rng = RngRegistry(SEED)
    jobs = make_jobs(MIX, rng.spawn("workload"))
    system = TimeSharingSystem(
        jobs, policy, n_processors=16, seed=SEED, rng=rng.spawn(policy.name)
    )
    result = system.run()
    return result, system


@pytest.fixture(scope="module")
def runs():
    ts_plain, sys_plain = run_timesharing(TIME_SHARING)
    ts_aff, _ = run_timesharing(TIME_SHARING_AFFINITY)
    return {
        "TimeSharing": ts_plain,
        "TimeSharing-Aff": ts_aff,
        "Dynamic": run_mix(MIX, DYNAMIC, seed=SEED),
        "Dyn-Aff": run_mix(MIX, DYN_AFF, seed=SEED),
        "_system": sys_plain,
    }


def test_section8_run(benchmark):
    result, system = run_once(benchmark, run_timesharing, TIME_SHARING)
    print()
    print(f"  time-sharing switches: {system.involuntary_switches} involuntary, "
          f"{system.voluntary_switches} voluntary")
    assert system.involuntary_switches > 1000


class TestSection8Reconciliation:
    def test_space_sharing_beats_time_sharing(self, runs):
        """[Tucker & Gupta 89] et al.: space sharing is necessary for good
        performance — reproduced as a large response-time gap."""
        print()
        for name in ("TimeSharing", "TimeSharing-Aff", "Dynamic", "Dyn-Aff"):
            jobs = runs[name].jobs
            rts = {j: round(m.response_time, 1) for j, m in sorted(jobs.items())}
            pens = {j: round(m.cache_penalty_total, 2) for j, m in sorted(jobs.items())}
            print(f"  {name:16s} RT {rts}  cache penalty (s) {pens}")
        # Mean job response time: space sharing wins, and it wins big for
        # the barrier-synchronized GRAVITY (rotation makes its phases wait
        # behind MATRIX's quanta).
        assert runs["Dynamic"].mean_response_time() < 0.95 * runs[
            "TimeSharing"
        ].mean_response_time()
        assert (
            runs["Dynamic"].jobs["GRAVITY"].response_time
            < 0.75 * runs["TimeSharing"].jobs["GRAVITY"].response_time
        )

    def test_time_sharing_reallocates_far_more(self, runs):
        for job in ("MATRIX", "GRAVITY"):
            assert (
                runs["TimeSharing"].jobs[job].n_reallocations
                > 2 * runs["Dynamic"].jobs[job].n_reallocations
            )

    def test_affinity_fixes_more_under_time_sharing(self, runs):
        """The reconciliation: the fraction of cache penalty that affinity
        scheduling eliminates is far larger in the time-sharing domain."""
        def total_penalty(name):
            return sum(m.cache_penalty_total for m in runs[name].jobs.values())

        ts_saved = 1 - total_penalty("TimeSharing-Aff") / total_penalty("TimeSharing")
        ss_saved = 1 - total_penalty("Dyn-Aff") / total_penalty("Dynamic")
        print(f"\n  cache penalty removed by affinity: "
              f"time sharing {ts_saved:.0%}, space sharing {ss_saved:.0%}")
        # Affinity has real work to do in the time-sharing domain ...
        assert ts_saved > 0.25
        # ... and time sharing generates more penalty to begin with.
        assert total_penalty("TimeSharing") > total_penalty("Dynamic")

    def test_space_sharing_penalties_are_negligible(self, runs):
        """Under space sharing the whole cache penalty is a tiny fraction
        of response time — the reason affinity cannot matter there."""
        for name in ("Dynamic", "Dyn-Aff"):
            for job, m in runs[name].jobs.items():
                assert m.cache_penalty_total < 0.10 * m.response_time, (name, job)
