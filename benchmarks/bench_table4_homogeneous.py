"""Table 4: average job response time, homogeneous workloads only.

Dyn-Aff vs Dyn-Aff-NoPri on mix #1 (2 MVA jobs) and mix #4 (2 GRAVITY
jobs).  The paper's point: sacrificing the priority scheme buys at most a
negligible improvement (MVA mix) and can lose (GRAVITY mix) — so fairness
costs essentially nothing.
"""

import pytest

from benchmarks.conftest import REPLICATIONS, run_once
from benchmarks.paper_values import TABLE4
from repro.core.policies import DYN_AFF, DYN_AFF_NOPRI
from repro.measure.runner import run_mix
from repro.reporting.tables import render_table4


@pytest.fixture(scope="module")
def table4():
    results = {}
    for mix_id in (1, 4):
        results[mix_id] = {}
        for policy in (DYN_AFF, DYN_AFF_NOPRI):
            total = 0.0
            for r in range(REPLICATIONS):
                total += run_mix(mix_id, policy, seed=r).mean_response_time()
            results[mix_id][policy.name] = total / REPLICATIONS
    return results


def test_table4_run(benchmark):
    def measure():
        return {
            mix_id: {
                policy.name: run_mix(mix_id, policy, seed=0).mean_response_time()
                for policy in (DYN_AFF, DYN_AFF_NOPRI)
            }
            for mix_id in (1, 4)
        }

    results = run_once(benchmark, measure)
    assert set(results) == {1, 4}
    print()
    print(render_table4(results))
    print("paper values:")
    print(render_table4(TABLE4))


class TestTable4Shape:
    def test_print(self, table4):
        print()
        print(render_table4(table4))
        print("paper values:")
        print(render_table4(TABLE4))

    @pytest.mark.parametrize("mix_id", [1, 4])
    def test_nopri_buys_no_meaningful_improvement(self, table4, mix_id):
        """Sacrificing fairness gains at most a few percent on mean RT.

        (The paper saw -0.4% on mix 1 and +6% on mix 4; the conclusion it
        draws — and that we assert — is that the potential gain never
        justifies the unfairness shown in Figure 6.)
        """
        fair = table4[mix_id]["Dyn-Aff"]
        unfair = table4[mix_id]["Dyn-Aff-NoPri"]
        assert unfair > 0.93 * fair, (mix_id, fair, unfair)

    def test_magnitudes_same_order_as_paper(self, table4):
        """Mix 1 in the tens of seconds, mix 4 several times larger."""
        assert 5 < table4[1]["Dyn-Aff"] < 60
        assert table4[4]["Dyn-Aff"] > 1.5 * table4[1]["Dyn-Aff"]
