"""Figures 8-13: relative response times on future machines.

The extended model (Figure 7), parameterized from the Section 6 runs and
the Section 4 penalties, swept along the technology trajectory
``processor-speed = cache-size = sqrt(product)`` — one figure per
workload mix, one curve per dynamic policy per job.
"""

import math

import pytest

from benchmarks.conftest import cached_comparison, run_once
from repro.measure.workloads import MIXES
from repro.model import (
    DEFAULT_PENALTIES,
    FutureMachineModel,
    observations_from_comparison,
    sweep_relative,
)
from repro.reporting.figures import ascii_chart

POLICIES = ("Dynamic", "Dyn-Aff", "Dyn-Aff-Delay")


def sweep_mix(mix_id):
    comparison = cached_comparison(mix_id, "dynamic")
    observations = observations_from_comparison(comparison)
    model = FutureMachineModel(DEFAULT_PENALTIES)
    series = {}
    for job in comparison.job_names():
        for policy in POLICIES:
            series[(policy, job)] = sweep_relative(
                model, observations[policy][job], observations["Equipartition"][job]
            )
    return series


@pytest.mark.parametrize("mix_id", sorted(MIXES))
def test_fig8_13_future_machines(benchmark, mix_id):
    series = run_once(benchmark, sweep_mix, mix_id)
    jobs = sorted({job for _, job in series})
    print()
    for job in jobs:
        chart = {
            policy: list(zip(series[(policy, job)].products, series[(policy, job)].ratios))
            for policy in POLICIES
        }
        print(
            ascii_chart(
                chart,
                title=f"Workload #{mix_id} / {job}: rel. RT vs speed x cache",
                log_x=True,
                height=10,
            )
        )
        print()

    for (policy, job), sweep in series.items():
        # At the current machine (product 1) dynamic policies win or tie.
        assert sweep.ratios[0] < 1.05, (policy, job)
        # "The performance of the best dynamic policy is superior or
        # equivalent to that of Equipartition": through ~32x speed-cache
        # the best dynamic policy is still at parity, and at 100x it has
        # drifted at most a few percent above on the thin-margin mixes.
        best_at_32 = min(series[(p, job)].ratios[3] for p in POLICIES)
        assert best_at_32 < 1.06, (job, best_at_32)
        best_at_100 = min(series[(p, job)].ratios[4] for p in POLICIES)
        assert best_at_100 < 1.10, (job, best_at_100)


def test_fig8_13_affinity_matters_more_in_future(benchmark):
    """Section 7.3: 'Affinity scheduling becomes more important as machine
    speed increases' — Dynamic and Dyn-Aff diverge."""
    series = run_once(benchmark, sweep_mix, 5)
    for job in ("MATRIX", "GRAVITY"):
        oblivious = series[("Dynamic", job)]
        aware = series[("Dyn-Aff", job)]
        gap_now = oblivious.ratios[0] - aware.ratios[0]
        gap_future = oblivious.ratios[-1] - aware.ratios[-1]
        print(f"\n  {job}: Dynamic-vs-Dyn-Aff gap now {gap_now:+.3f}, "
              f"at 10^6 {gap_future:+.3f}")
        assert gap_future > gap_now + 0.05

    # And plain Dynamic eventually loses to Equipartition outright.
    assert series[("Dynamic", "GRAVITY")].ratios[-1] > 1.0


def test_fig8_13_yield_delay_matters_more_in_future(benchmark):
    """Section 7.3, via Figure 12 (workload #5): Dyn-Aff-Delay's advantage
    over Dyn-Aff grows with machine speed."""
    series = run_once(benchmark, sweep_mix, 5)
    job = "GRAVITY"
    aware = series[("Dyn-Aff", job)]
    delayed = series[("Dyn-Aff-Delay", job)]
    advantage_now = aware.ratios[0] - delayed.ratios[0]
    advantage_future = aware.ratios[-1] - delayed.ratios[-1]
    print(f"\n  Delay advantage now {advantage_now:+.3f}, at 10^6 {advantage_future:+.3f}")
    assert advantage_future > advantage_now

    cross_aware = aware.crossover_product() or math.inf
    cross_delayed = delayed.crossover_product() or math.inf
    assert cross_delayed >= cross_aware
