"""A single processor with its private cache."""

from __future__ import annotations

import typing

from repro.machine.cache import SetAssociativeCache
from repro.machine.params import MachineSpec


class Processor:
    """One CPU of the machine: an id, a private cache, and time accounting.

    The processor exposes a *touch* API used by the reference-trace
    experiments: a touch is one block access that stands for
    ``refs_per_touch`` consecutive references to that block (the trace
    generators aggregate temporal locality this way to keep the simulation
    tractable; only the first reference of a run can miss).

    ``touch_batch`` is the hot-path entry point: it plays a whole chunk of
    touches through the cache's batch interface and accounts their
    aggregate cost in one step.  Hit/miss behaviour is identical to a
    ``touch`` loop; only the floating-point summation order of the time
    cost differs (aggregate multiply-add versus per-touch accumulation).
    """

    def __init__(
        self,
        cpu_id: int,
        spec: MachineSpec,
        tracer: typing.Optional[object] = None,
        backend: typing.Optional[str] = None,
    ) -> None:
        self.cpu_id = cpu_id
        self.spec = spec
        self.cache = SetAssociativeCache(spec, backend=backend)
        self.busy_time = 0.0
        self.current_task: typing.Optional[typing.Hashable] = None
        if tracer is not None:
            self.attach_tracer(tracer)

    def attach_tracer(self, tracer: typing.Optional[object]) -> None:
        """Route this processor's cache records to ``tracer``.

        Records are stamped with the processor's accumulated busy time,
        which is the virtual clock of the single-processor measurement
        experiments this API serves.
        """
        self.cache.attach_tracer(
            tracer, cpu_id=self.cpu_id, clock=lambda: self.busy_time
        )

    def attach_profiler(self, profiler: typing.Optional[object]) -> None:
        """Route this processor's cache batch timing to ``profiler``."""
        self.cache.attach_profiler(profiler)

    def touch(self, owner: typing.Hashable, block: int, refs_per_touch: int = 1) -> float:
        """Access ``block`` for ``owner``; returns the time cost in seconds.

        A hit costs ``refs_per_touch`` hit-times; a miss costs one miss
        resolution plus the remaining references at hit speed.
        """
        if refs_per_touch < 1:
            raise ValueError("refs_per_touch must be at least 1")
        hit = self.cache.access(owner, block)
        if hit:
            cost = refs_per_touch * self.spec.hit_time_s
        else:
            cost = self.spec.miss_time_s + (refs_per_touch - 1) * self.spec.hit_time_s
        self.busy_time += cost
        return cost

    def touch_batch(
        self,
        owner: typing.Hashable,
        blocks: typing.Sequence[int],
        refs_per_touch: int = 1,
    ) -> float:
        """Access every block in ``blocks`` in order for ``owner``.

        Returns the aggregate time cost in seconds (the sum of what the
        equivalent :meth:`touch` loop would charge).
        """
        if refs_per_touch < 1:
            raise ValueError("refs_per_touch must be at least 1")
        hits = self.cache.access_batch(owner, blocks)
        spec = self.spec
        hit_cost = refs_per_touch * spec.hit_time_s
        miss_cost = spec.miss_time_s + (refs_per_touch - 1) * spec.hit_time_s
        cost = hits * hit_cost + (len(blocks) - hits) * miss_cost
        self.busy_time += cost
        return cost

    def context_switch(self, new_task: typing.Optional[typing.Hashable]) -> float:
        """Switch to ``new_task``; returns the kernel path-length cost."""
        self.current_task = new_task
        self.busy_time += self.spec.context_switch_s
        return self.spec.context_switch_s

    def flush_cache(self) -> int:
        """Invalidate the private cache (returns lines dropped)."""
        return self.cache.flush()

    def __repr__(self) -> str:
        return f"Processor(id={self.cpu_id}, task={self.current_task!r})"
