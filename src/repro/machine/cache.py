"""A stateful set-associative cache simulator with LRU replacement.

The simulator works at *block* granularity: callers present block indices
(an application's address space divided into cache-line-sized blocks) and
the cache maps each block to a set via ``block % n_sets`` — the same
power-of-two indexing the Symmetry's physical cache uses.

Lines are tagged ``(owner, block)``, where the owner identifies the task
whose data occupies the line.  Owner tags let the Section 4 experiments ask
"how much of task T's footprint survived the intervening task?" directly,
which on the real machine had to be inferred from timing.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.machine.params import MachineSpec

Tag = typing.Tuple[typing.Hashable, int]


@dataclasses.dataclass
class CacheStats:
    """Running hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when no accesses)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero the counters."""
        self.hits = 0
        self.misses = 0


class SetAssociativeCache:
    """An N-way set-associative cache with per-set LRU replacement.

    Each set is an ``OrderedDict`` from tag to None, ordered least- to
    most-recently used; ``move_to_end`` gives O(1) LRU maintenance.
    """

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.n_sets = spec.cache_sets
        self.associativity = spec.associativity
        self.stats = CacheStats()
        self._sets: typing.List["collections.OrderedDict[Tag, None]"] = [
            collections.OrderedDict() for _ in range(self.n_sets)
        ]
        self._owner_lines: typing.Dict[typing.Hashable, int] = {}

    def access(self, owner: typing.Hashable, block: int) -> bool:
        """Reference ``block`` on behalf of ``owner``.

        Returns:
            True on a hit, False on a miss (after which the block is
            resident, possibly evicting the set's LRU line).
        """
        index = block % self.n_sets
        cache_set = self._sets[index]
        tag = (owner, block)
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.associativity:
            victim, _ = cache_set.popitem(last=False)
            # Drop owners whose last line was evicted: long multiprogrammed
            # runs churn through unboundedly many owner keys, and keeping
            # zero-count entries forever grows this dict without limit.
            remaining = self._owner_lines[victim[0]] - 1
            if remaining:
                self._owner_lines[victim[0]] = remaining
            else:
                del self._owner_lines[victim[0]]
        cache_set[tag] = None
        self._owner_lines[owner] = self._owner_lines.get(owner, 0) + 1
        return False

    def contains(self, owner: typing.Hashable, block: int) -> bool:
        """True if ``owner``'s ``block`` is resident (does not touch LRU state)."""
        return (owner, block) in self._sets[block % self.n_sets]

    def footprint(self, owner: typing.Hashable) -> int:
        """Number of lines currently owned by ``owner``."""
        return self._owner_lines.get(owner, 0)

    def resident_lines(self) -> int:
        """Total number of valid lines in the cache."""
        return sum(len(s) for s in self._sets)

    def flush(self) -> int:
        """Invalidate every line; returns how many were dropped.

        This models the Section 4 "migrating" regime, where enough memory
        is referenced sequentially to eject all prior content.
        """
        dropped = self.resident_lines()
        for cache_set in self._sets:
            cache_set.clear()
        self._owner_lines.clear()
        return dropped

    def evict_owner(self, owner: typing.Hashable) -> int:
        """Invalidate only ``owner``'s lines; returns how many were dropped."""
        dropped = 0
        for cache_set in self._sets:
            victims = [tag for tag in cache_set if tag[0] == owner]
            for tag in victims:
                del cache_set[tag]
                dropped += 1
        self._owner_lines.pop(owner, None)
        return dropped

    def set_occupancy(self, index: int) -> int:
        """Number of valid lines in set ``index`` (bounds-checked)."""
        return len(self._sets[index])

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache(sets={self.n_sets}, assoc={self.associativity}, "
            f"resident={self.resident_lines()}/{self.spec.cache_lines})"
        )
