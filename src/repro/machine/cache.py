"""A stateful set-associative cache simulator with LRU replacement.

The simulator works at *block* granularity: callers present non-negative
block indices (an application's address space divided into
cache-line-sized blocks) and the cache maps each block to a set via
``block % n_sets`` — the same power-of-two indexing the Symmetry's
physical cache uses.

Lines are tagged by ``(owner, block)``, where the owner identifies the
task whose data occupies the line.  Owner tags let the Section 4
experiments ask "how much of task T's footprint survived the intervening
task?" directly, which on the real machine had to be inferred from timing.

Hot-path design (see docs/architecture.md, "Hot path and fidelity
scaling"):

* **Batching** — :meth:`SetAssociativeCache.access_batch` processes a
  whole chunk of block indices per call with everything hot held in
  locals and a single stats update per chunk.  The scalar
  :meth:`~SetAssociativeCache.access` is a one-element wrapper around
  the same code path, so the two can never disagree.
* **Interned owners** — owner keys (any hashable) are interned to small
  integer ids; a line's tag is the integer ``(owner_id << 40) | block``,
  avoiding per-access tuple allocation.  Ids are recycled once an
  owner's last line leaves the cache, so long multiprogrammed runs that
  churn through unboundedly many owner keys do not grow the tables.
* **Flat per-set storage** — for the ubiquitous 2-way power-of-two
  geometry (the Symmetry and all its fidelity reductions), each set's
  LRU state is two parallel flat lists (``_lru[i]``, ``_mru[i]``); a
  2-way LRU set is just a shift register, so hits and evictions are a
  few integer compares with no container churn.  Other geometries fall
  back to a dict-per-set representation (insertion order = LRU order).
* **Lazy owner index** — per-owner resident-tag sets are *not*
  maintained inside the access loop.  They are rebuilt on demand (one
  linear pass over the cache) the next time :meth:`footprint`,
  :meth:`owner_lines` or :meth:`evict_owner` is called, and stay valid
  until the next miss.  Queries are rare next to accesses (once per
  scheduling stint vs. thousands of touches), so this moves the
  accounting cost off the critical path entirely while keeping
  ``evict_owner`` proportional to the owner's resident lines rather
  than a scan of every set.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.machine.params import MachineSpec
from repro.obs.records import CacheBatch, CacheFlush

#: Bits reserved for the block index inside an integer line tag.
_OWNER_SHIFT = 40
#: Sentinel for an invalid / empty way in the flat 2-way representation.
_EMPTY = -1


@dataclasses.dataclass
class CacheStats:
    """Running hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when no accesses)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero the counters."""
        self.hits = 0
        self.misses = 0


class SetAssociativeCache:
    """An N-way set-associative cache with per-set LRU replacement.

    Block indices must be non-negative integers below 2**40 (the tag
    packing reserves the high bits for the interned owner id).
    """

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.n_sets = spec.cache_sets
        self.associativity = spec.associativity
        self.stats = CacheStats()
        n_sets = self.n_sets
        #: the flat fast path covers 2-way caches with power-of-two sets
        self._two_way = spec.associativity == 2 and n_sets & (n_sets - 1) == 0
        if self._two_way:
            self._set_mask = n_sets - 1
            self._lru: typing.List[int] = [_EMPTY] * n_sets
            self._mru: typing.List[int] = [_EMPTY] * n_sets
            self._sets: typing.List[typing.Dict[int, None]] = []
        else:
            self._sets = [{} for _ in range(n_sets)]
        # Owner interning: key <-> small id, with id recycling.
        self._owner_ids: typing.Dict[typing.Hashable, int] = {}
        self._owner_keys: typing.Dict[int, typing.Hashable] = {}
        self._free_ids: typing.List[int] = []
        self._next_id = 0
        # Lazy per-owner resident-tag index (valid iff not dirty).
        self._owner_tags: typing.Dict[int, typing.Set[int]] = {}
        self._index_dirty = False
        # Interned owners with zero lines accumulate only between index
        # rebuilds; force a rebuild (which recycles their ids) if the
        # table ever outgrows the cache itself.
        self._owner_gc_limit = max(32, 2 * spec.cache_lines)
        # Observability: batch-granular trace emission.  None (the
        # default) keeps the hot path at one attribute load + branch per
        # access_batch call; records are only constructed when an enabled
        # tracer is attached.
        self._tracer: typing.Optional[object] = None
        self._trace_cpu = 0
        self._trace_clock: typing.Optional[typing.Callable[[], float]] = None
        # Self-profiling: same cost discipline as the tracer — one
        # attribute load + branch per batch when no profiler is attached.
        self._profiler: typing.Optional[object] = None

    def attach_profiler(self, profiler: typing.Optional[object]) -> None:
        """Time ``access_batch`` calls with a span profiler (None detaches).

        The span is ``cache/access_batch``; see
        :mod:`repro.obs.profiling`.
        """
        self._profiler = profiler

    def attach_tracer(
        self,
        tracer: typing.Optional[object],
        cpu_id: int = 0,
        clock: typing.Optional[typing.Callable[[], float]] = None,
    ) -> None:
        """Emit batch/flush records to ``tracer`` (None detaches).

        ``clock`` supplies record timestamps (e.g. the owning processor's
        accumulated busy time); without one, records carry time 0.0.
        """
        self._tracer = tracer
        self._trace_cpu = cpu_id
        self._trace_clock = clock

    def _trace_now(self) -> float:
        return self._trace_clock() if self._trace_clock is not None else 0.0

    # -- accesses ------------------------------------------------------- #

    def access(self, owner: typing.Hashable, block: int) -> bool:
        """Reference ``block`` on behalf of ``owner``.

        Returns:
            True on a hit, False on a miss (after which the block is
            resident, possibly evicting the set's LRU line).
        """
        if block < 0:
            raise ValueError("block indices must be non-negative")
        return self.access_batch(owner, (block,)) == 1

    def access_batch(
        self, owner: typing.Hashable, blocks: typing.Sequence[int]
    ) -> int:
        """Reference every block in ``blocks`` in order for ``owner``.

        Semantically identical to calling :meth:`access` once per block;
        counters are updated once per call rather than once per access.

        Returns:
            The number of hits (misses are ``len(blocks) - hits``).
        """
        prof = self._profiler
        profiling = prof is not None and prof.enabled  # type: ignore[attr-defined]
        if profiling:
            prof.push("cache/access_batch")  # type: ignore[attr-defined]
        oid = self._owner_ids.get(owner)
        if oid is None:
            oid = self._intern(owner)
        base = oid << _OWNER_SHIFT
        hits = 0
        if self._two_way:
            lru = self._lru
            mru = self._mru
            mask = self._set_mask
            # A 2-way LRU set is a shift register: a fresh tag pushes the
            # MRU down to LRU and drops the old LRU (which is _EMPTY while
            # the set is filling, so cold fills need no special case).
            for block in blocks:
                i = block & mask
                tag = base + block
                m = mru[i]
                if m == tag:
                    hits += 1
                    continue
                l = lru[i]
                if l == tag:
                    lru[i] = m
                    mru[i] = tag
                    hits += 1
                    continue
                lru[i] = m
                mru[i] = tag
        else:
            sets = self._sets
            n_sets = self.n_sets
            assoc = self.associativity
            for block in blocks:
                s = sets[block % n_sets]
                tag = base + block
                if tag in s:
                    # Re-insertion moves the tag to the MRU end.
                    del s[tag]
                    s[tag] = None
                    hits += 1
                    continue
                if len(s) >= assoc:
                    del s[next(iter(s))]
                s[tag] = None
        misses = len(blocks) - hits
        if misses:
            self._index_dirty = True
        self.stats.hits += hits
        self.stats.misses += misses
        if len(self._owner_ids) > self._owner_gc_limit:
            self._rebuild_index()
        tracer = self._tracer
        if tracer is not None and tracer.enabled:  # type: ignore[attr-defined]
            tracer.emit(  # type: ignore[attr-defined]
                CacheBatch(
                    time=self._trace_now(),
                    cpu=self._trace_cpu,
                    owner=str(owner),
                    n=len(blocks),
                    hits=hits,
                )
            )
        if profiling:
            prof.pop()  # type: ignore[attr-defined]
        return hits

    # -- queries -------------------------------------------------------- #

    def contains(self, owner: typing.Hashable, block: int) -> bool:
        """True if ``owner``'s ``block`` is resident (does not touch LRU state)."""
        oid = self._owner_ids.get(owner)
        if oid is None:
            return False
        tag = (oid << _OWNER_SHIFT) + block
        if self._two_way:
            i = block & self._set_mask
            return self._mru[i] == tag or self._lru[i] == tag
        return tag in self._sets[block % self.n_sets]

    def footprint(self, owner: typing.Hashable) -> int:
        """Number of lines currently owned by ``owner``."""
        oid = self._owner_ids.get(owner)
        if oid is None:
            return 0
        if self._index_dirty:
            self._rebuild_index()
        tags = self._owner_tags.get(oid)
        return len(tags) if tags else 0

    def owner_lines(self) -> typing.Dict[typing.Hashable, int]:
        """Resident line count per owner (owners with zero lines omitted)."""
        if self._index_dirty:
            self._rebuild_index()
        keys = self._owner_keys
        return {keys[oid]: len(tags) for oid, tags in self._owner_tags.items()}

    def resident_lines(self) -> int:
        """Total number of valid lines in the cache."""
        if self._two_way:
            return (
                2 * self.n_sets
                - self._lru.count(_EMPTY)
                - self._mru.count(_EMPTY)
            )
        return sum(len(s) for s in self._sets)

    def set_occupancy(self, index: int) -> int:
        """Number of valid lines in set ``index`` (bounds-checked)."""
        if self._two_way:
            if not 0 <= index < self.n_sets:
                raise IndexError(index)
            return (self._lru[index] != _EMPTY) + (self._mru[index] != _EMPTY)
        return len(self._sets[index])

    # -- invalidation --------------------------------------------------- #

    def flush(self) -> int:
        """Invalidate every line; returns how many were dropped.

        This models the Section 4 "migrating" regime, where enough memory
        is referenced sequentially to eject all prior content.
        """
        dropped = self.resident_lines()
        if self._two_way:
            self._lru = [_EMPTY] * self.n_sets
            self._mru = [_EMPTY] * self.n_sets
        else:
            for cache_set in self._sets:
                cache_set.clear()
        self._owner_ids.clear()
        self._owner_keys.clear()
        self._free_ids.clear()
        self._next_id = 0
        self._owner_tags = {}
        self._index_dirty = False
        tracer = self._tracer
        if tracer is not None and tracer.enabled:  # type: ignore[attr-defined]
            tracer.emit(  # type: ignore[attr-defined]
                CacheFlush(time=self._trace_now(), cpu=self._trace_cpu, lines=dropped)
            )
        return dropped

    def evict_owner(self, owner: typing.Hashable) -> int:
        """Invalidate only ``owner``'s lines; returns how many were dropped.

        Cost is one (amortized) index rebuild plus work proportional to
        the owner's resident lines — not a scan of every set.
        """
        oid = self._owner_ids.get(owner)
        if oid is None:
            return 0
        if self._index_dirty:
            self._rebuild_index()
        tags = self._owner_tags.pop(oid, None)
        if tags is None:
            # The rebuild found no resident lines and released the id.
            return 0
        if self._two_way:
            lru = self._lru
            mru = self._mru
            mask = self._set_mask
            for tag in tags:
                i = tag & mask
                if mru[i] == tag:
                    # Promote the surviving line; the set may also be empty.
                    mru[i] = lru[i]
                lru[i] = _EMPTY
        else:
            sets = self._sets
            n_sets = self.n_sets
            for tag in tags:
                del sets[(tag - (oid << _OWNER_SHIFT)) % n_sets][tag]
        self._release(oid)
        # Only this owner's entries changed, so the index stays valid.
        return len(tags)

    # -- internals ------------------------------------------------------ #

    def _intern(self, owner: typing.Hashable) -> int:
        if self._free_ids:
            oid = self._free_ids.pop()
        else:
            oid = self._next_id
            self._next_id += 1
        self._owner_ids[owner] = oid
        self._owner_keys[oid] = owner
        return oid

    def _release(self, oid: int) -> None:
        key = self._owner_keys.pop(oid)
        del self._owner_ids[key]
        self._free_ids.append(oid)

    def _rebuild_index(self) -> None:
        """Recompute the per-owner resident-tag sets from the line arrays.

        Owners left with no resident lines are un-interned and their ids
        recycled, which bounds every owner table by the cache capacity.
        """
        owner_tags: typing.Dict[int, typing.Set[int]] = {
            oid: set() for oid in self._owner_keys
        }
        if self._two_way:
            for tag in self._lru:
                if tag != _EMPTY:
                    owner_tags[tag >> _OWNER_SHIFT].add(tag)
            for tag in self._mru:
                if tag != _EMPTY:
                    owner_tags[tag >> _OWNER_SHIFT].add(tag)
        else:
            for cache_set in self._sets:
                for tag in cache_set:
                    owner_tags[tag >> _OWNER_SHIFT].add(tag)
        for oid in [oid for oid, tags in owner_tags.items() if not tags]:
            del owner_tags[oid]
            self._release(oid)
        self._owner_tags = owner_tags
        self._index_dirty = False

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache(sets={self.n_sets}, assoc={self.associativity}, "
            f"resident={self.resident_lines()}/{self.spec.cache_lines})"
        )
