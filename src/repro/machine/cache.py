"""A stateful set-associative cache simulator with LRU replacement.

The simulator works at *block* granularity: callers present non-negative
block indices (an application's address space divided into
cache-line-sized blocks) and the cache maps each block to a set via
``block % n_sets`` — the same power-of-two indexing the Symmetry's
physical cache uses.

Lines are tagged by ``(owner, block)``, where the owner identifies the
task whose data occupies the line.  Owner tags let the Section 4
experiments ask "how much of task T's footprint survived the intervening
task?" directly, which on the real machine had to be inferred from timing.

Hot-path design (see docs/architecture.md, "Hot path and fidelity
scaling" and "Cache backends"):

* **Batching** — :meth:`SetAssociativeCache.access_batch` processes a
  whole chunk of block indices per call with a single stats update per
  chunk.  The scalar :meth:`~SetAssociativeCache.access` is a
  one-element wrapper around the same code path, so the two can never
  disagree.
* **Pluggable backends** — the per-set LRU state and the chunk loop
  live behind the :class:`~repro.machine.backends.CacheBackend`
  protocol.  The ``scalar`` backend (per-touch Python loops) is the
  executable reference spec; the optional ``numpy`` backend executes
  the same chunk as columnar array operations.  Selection precedence is
  CLI flag > ``REPRO_BACKEND`` env var > scalar; see
  :mod:`repro.machine.backends`.
* **Interned owners** — owner keys (any hashable) are interned to small
  integer ids; a line's tag is the integer ``(owner_id << 40) | block``,
  avoiding per-access tuple allocation.  Block indices must therefore
  be below 2**40; every backend validates whole chunks up front and
  raises ``ValueError``.  Ids are recycled once an owner's last line
  leaves the cache, so long multiprogrammed runs that churn through
  unboundedly many owner keys do not grow the tables.
* **Lazy owner index** — per-owner resident-tag sets are *not*
  maintained inside the access loop.  They are rebuilt on demand (one
  linear pass over the cache) the next time :meth:`footprint`,
  :meth:`owner_lines` or :meth:`evict_owner` is called, and stay valid
  until the next miss.  Queries are rare next to accesses (once per
  scheduling stint vs. thousands of touches), so this moves the
  accounting cost off the critical path entirely while keeping
  ``evict_owner`` proportional to the owner's resident lines rather
  than a scan of every set.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.machine.backends import BLOCK_MASK, EMPTY, OWNER_SHIFT, make_backend
from repro.machine.params import MachineSpec
from repro.obs.records import CacheBatch, CacheFlush

#: Backwards-compatible aliases (the packing constants predate the
#: backends package).
_OWNER_SHIFT = OWNER_SHIFT
_BLOCK_MASK = BLOCK_MASK
_EMPTY = EMPTY


@dataclasses.dataclass
class CacheStats:
    """Running hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when no accesses)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero the counters."""
        self.hits = 0
        self.misses = 0


class SetAssociativeCache:
    """An N-way set-associative cache with per-set LRU replacement.

    Block indices must be non-negative integers below 2**40 (the tag
    packing reserves the high bits for the interned owner id); accesses
    and queries outside that range raise ``ValueError``.

    Args:
        spec: machine geometry (sets, associativity).
        backend: engine name (``"scalar"`` or ``"numpy"``) or None to
            consult the ``REPRO_BACKEND`` env var and fall back to
            scalar; :attr:`backend_name` reports what actually runs
            (the numpy engine covers only 2-way power-of-two
            geometries and falls back to scalar elsewhere).
    """

    def __init__(
        self, spec: MachineSpec, backend: typing.Optional[str] = None
    ) -> None:
        self.spec = spec
        self.n_sets = spec.cache_sets
        self.associativity = spec.associativity
        self.stats = CacheStats()
        self._backend = make_backend(backend, spec)
        #: the engine actually executing accesses, after any fallback
        self.backend_name = self._backend.name
        # Owner interning: key <-> small id, with id recycling.
        self._owner_ids: typing.Dict[typing.Hashable, int] = {}
        self._owner_keys: typing.Dict[int, typing.Hashable] = {}
        self._free_ids: typing.List[int] = []
        self._next_id = 0
        # Lazy per-owner resident-tag index (valid iff not dirty).
        self._owner_tags: typing.Dict[int, typing.Set[int]] = {}
        self._index_dirty = False
        # Interned owners with zero lines accumulate only between index
        # rebuilds; force a rebuild (which recycles their ids) if the
        # table ever outgrows the cache itself.
        self._owner_gc_limit = max(32, 2 * spec.cache_lines)
        # Observability: batch-granular trace emission.  None (the
        # default) keeps the hot path at one attribute load + branch per
        # access_batch call; records are only constructed when an enabled
        # tracer is attached.
        self._tracer: typing.Optional[object] = None
        self._trace_cpu = 0
        self._trace_clock: typing.Optional[typing.Callable[[], float]] = None
        # Self-profiling: same cost discipline as the tracer — one
        # attribute load + branch per batch when no profiler is attached.
        self._profiler: typing.Optional[object] = None

    def attach_profiler(self, profiler: typing.Optional[object]) -> None:
        """Time ``access_batch`` calls with a span profiler (None detaches).

        The span is ``cache/access_batch``; see
        :mod:`repro.obs.profiling`.
        """
        self._profiler = profiler

    def attach_tracer(
        self,
        tracer: typing.Optional[object],
        cpu_id: int = 0,
        clock: typing.Optional[typing.Callable[[], float]] = None,
    ) -> None:
        """Emit batch/flush records to ``tracer`` (None detaches).

        ``clock`` supplies record timestamps (e.g. the owning processor's
        accumulated busy time); without one, records carry time 0.0.
        """
        self._tracer = tracer
        self._trace_cpu = cpu_id
        self._trace_clock = clock

    def _trace_now(self) -> float:
        return self._trace_clock() if self._trace_clock is not None else 0.0

    # -- accesses ------------------------------------------------------- #

    def access(self, owner: typing.Hashable, block: int) -> bool:
        """Reference ``block`` on behalf of ``owner``.

        Returns:
            True on a hit, False on a miss (after which the block is
            resident, possibly evicting the set's LRU line).
        """
        return self.access_batch(owner, (block,)) == 1

    def access_batch(
        self, owner: typing.Hashable, blocks: typing.Sequence[int]
    ) -> int:
        """Reference every block in ``blocks`` in order for ``owner``.

        Semantically identical to calling :meth:`access` once per block;
        counters are updated once per call rather than once per access.
        ``blocks`` may be any sequence of ints (the numpy backend takes
        integer ndarrays without conversion cost).

        Returns:
            The number of hits (misses are ``len(blocks) - hits``).

        Raises:
            ValueError: if any block is negative or >= 2**40 (checked
                against the whole chunk before any state changes).
        """
        prof = self._profiler
        profiling = prof is not None and prof.enabled  # type: ignore[attr-defined]
        if profiling:
            prof.push("cache/access_batch")  # type: ignore[attr-defined]
        oid = self._owner_ids.get(owner)
        if oid is None:
            oid = self._intern(owner)
        hits = self._backend.access_batch(oid << OWNER_SHIFT, blocks)
        misses = len(blocks) - hits
        if misses:
            self._index_dirty = True
        self.stats.hits += hits
        self.stats.misses += misses
        if len(self._owner_ids) > self._owner_gc_limit:
            self._rebuild_index()
        tracer = self._tracer
        if tracer is not None and tracer.enabled:  # type: ignore[attr-defined]
            tracer.emit(  # type: ignore[attr-defined]
                CacheBatch(
                    time=self._trace_now(),
                    cpu=self._trace_cpu,
                    owner=str(owner),
                    n=len(blocks),
                    hits=hits,
                )
            )
        if profiling:
            prof.pop()  # type: ignore[attr-defined]
        return hits

    # -- queries -------------------------------------------------------- #

    def contains(self, owner: typing.Hashable, block: int) -> bool:
        """True if ``owner``'s ``block`` is resident (does not touch LRU state).

        Raises:
            ValueError: for a block outside [0, 2**40) — such a block
                can never be resident, and before range validation its
                packed tag silently aliased another owner's lines.
        """
        if block < 0 or block > BLOCK_MASK:
            raise ValueError(
                f"block indices must be in [0, 2**40); got {block}"
            )
        oid = self._owner_ids.get(owner)
        if oid is None:
            return False
        return self._backend.contains(oid << OWNER_SHIFT, block)

    def footprint(self, owner: typing.Hashable) -> int:
        """Number of lines currently owned by ``owner``."""
        oid = self._owner_ids.get(owner)
        if oid is None:
            return 0
        if self._index_dirty:
            self._rebuild_index()
        tags = self._owner_tags.get(oid)
        return len(tags) if tags else 0

    def owner_lines(self) -> typing.Dict[typing.Hashable, int]:
        """Resident line count per owner (owners with zero lines omitted)."""
        if self._index_dirty:
            self._rebuild_index()
        keys = self._owner_keys
        return {keys[oid]: len(tags) for oid, tags in self._owner_tags.items()}

    def resident_lines(self) -> int:
        """Total number of valid lines in the cache."""
        return self._backend.resident_lines()

    def set_occupancy(self, index: int) -> int:
        """Number of valid lines in set ``index`` (bounds-checked)."""
        if not 0 <= index < self.n_sets:
            raise IndexError(index)
        return self._backend.set_occupancy(index)

    # -- invalidation --------------------------------------------------- #

    def flush(self) -> int:
        """Invalidate every line; returns how many were dropped.

        This models the Section 4 "migrating" regime, where enough memory
        is referenced sequentially to eject all prior content.
        """
        dropped = self._backend.resident_lines()
        self._backend.clear()
        self._owner_ids.clear()
        self._owner_keys.clear()
        self._free_ids.clear()
        self._next_id = 0
        self._owner_tags = {}
        self._index_dirty = False
        tracer = self._tracer
        if tracer is not None and tracer.enabled:  # type: ignore[attr-defined]
            tracer.emit(  # type: ignore[attr-defined]
                CacheFlush(time=self._trace_now(), cpu=self._trace_cpu, lines=dropped)
            )
        return dropped

    def evict_owner(self, owner: typing.Hashable) -> int:
        """Invalidate only ``owner``'s lines; returns how many were dropped.

        Cost is one (amortized) index rebuild plus work proportional to
        the owner's resident lines — not a scan of every set.
        """
        oid = self._owner_ids.get(owner)
        if oid is None:
            return 0
        if self._index_dirty:
            self._rebuild_index()
        tags = self._owner_tags.pop(oid, None)
        if tags is None:
            # The rebuild found no resident lines and released the id.
            return 0
        self._backend.evict_tags(oid << OWNER_SHIFT, tags)
        self._release(oid)
        # Only this owner's entries changed, so the index stays valid.
        return len(tags)

    # -- internals ------------------------------------------------------ #

    def _intern(self, owner: typing.Hashable) -> int:
        if self._free_ids:
            oid = self._free_ids.pop()
        else:
            oid = self._next_id
            self._next_id += 1
        self._owner_ids[owner] = oid
        self._owner_keys[oid] = owner
        return oid

    def _release(self, oid: int) -> None:
        key = self._owner_keys.pop(oid)
        del self._owner_ids[key]
        self._free_ids.append(oid)

    def _rebuild_index(self) -> None:
        """Recompute the per-owner resident-tag sets from the line arrays.

        Owners left with no resident lines are un-interned and their ids
        recycled, which bounds every owner table by the cache capacity.
        (The numpy backend folds its owner views into the tag arrays
        before enumerating them, so recycled ids can never meet a stale
        view.)
        """
        owner_tags: typing.Dict[int, typing.Set[int]] = {
            oid: set() for oid in self._owner_keys
        }
        for tag in self._backend.resident_tags():
            owner_tags[tag >> OWNER_SHIFT].add(tag)
        for oid in [oid for oid, tags in owner_tags.items() if not tags]:
            del owner_tags[oid]
            self._release(oid)
        self._owner_tags = owner_tags
        self._index_dirty = False

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache(sets={self.n_sets}, assoc={self.associativity}, "
            f"backend={self.backend_name}, "
            f"resident={self.resident_lines()}/{self.spec.cache_lines})"
        )
