"""Hardware model of the paper's testbed.

The paper's machine is a Sequent Symmetry Model B: twenty 16 MHz Intel
80386 processors on a shared bus, each with a 64-Kbyte 2-way set-associative
copy-back cache with 16-byte lines.  The paper estimates 0.75 us to fetch
one cache block from main memory and 750 us of kernel path length per
processor reallocation.

Two cache models live here:

* :class:`~repro.machine.cache.SetAssociativeCache` — a stateful block-level
  simulator with true set indexing and LRU replacement.  The Section 4
  penalty measurements (Table 1) run on this.
* :class:`~repro.machine.footprint.FootprintModel` — the Thiebaut/Stone
  style analytic survival model used by the discrete-event scheduler
  simulations, parameterized by the same application constants and
  validated against the stateful simulator in the test suite.
"""

from repro.machine.bus import BusModel
from repro.machine.cache import CacheStats, SetAssociativeCache
from repro.machine.cache_oracle import SimulatedCacheFootprint
from repro.machine.footprint import (
    FootprintCurve,
    FootprintModel,
    LinearFootprintCurve,
    TaskCacheState,
)
from repro.machine.hierarchy import TwoLevelCache, sqrt_memory_law_table
from repro.machine.multiprocessor import Multiprocessor
from repro.machine.params import (
    SEQUENT_SYMMETRY,
    MachineSpec,
    future_machine,
)
from repro.machine.processor import Processor

__all__ = [
    "BusModel",
    "CacheStats",
    "FootprintCurve",
    "FootprintModel",
    "LinearFootprintCurve",
    "MachineSpec",
    "Multiprocessor",
    "Processor",
    "SEQUENT_SYMMETRY",
    "SetAssociativeCache",
    "SimulatedCacheFootprint",
    "TaskCacheState",
    "TwoLevelCache",
    "future_machine",
    "sqrt_memory_law_table",
]
