"""Analytic cache-footprint survival model for the scheduler simulations.

Simulating every memory reference inside the multi-job scheduling
experiments would be prohibitively slow, and — as the paper's own response
time model (Section 2) shows — unnecessary: all the scheduler can perceive
of the cache is the *reload penalty* a task pays when it is (re)dispatched.
This module computes that penalty analytically, in the spirit of
[Thiebaut & Stone 87] ("Footprints in the Cache"):

* A task that runs for ``d`` seconds builds a footprint of
  ``f(d) = w_max * (1 - exp(-d / tau))`` distinct cache lines (capped at
  the cache size).  ``w_max`` and ``tau`` are per-application constants,
  calibrated so the penalties measured by the Section 4 experiment land in
  Table 1's bands.
* While other tasks run on the same processor, a departed task's footprint
  decays: after intervening fills of ``U`` distinct lines into a cache of
  ``L`` lines, each line survives with probability ``exp(-U / L)`` (the
  Poisson approximation for random set conflicts; validated against the
  stateful simulator in ``tests/machine/test_footprint_vs_cache.py``).
* On dispatch, the reload penalty is ``lost_lines * miss_time`` —
  the whole footprint for a processor the task has no affinity for
  (``P^NA``), or only the decayed-away part where it does (``P^A``).
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.machine.params import MachineSpec


@dataclasses.dataclass(frozen=True)
class FootprintCurve:
    """Working-set growth law for one application.

    ``distinct_blocks(d) = w_max * (1 - exp(-d / tau))``: the number of
    distinct cache lines touched in a stint of ``d`` seconds.  MATRIX has a
    small ``w_max`` with tiny ``tau`` (a cache-blocked working set touched
    immediately and reused); GRAVITY a large ``w_max`` with large ``tau``
    (a big octree footprint built slowly); MVA sits between.
    """

    w_max: float
    tau: float

    def __post_init__(self) -> None:
        if self.w_max <= 0 or self.tau <= 0:
            raise ValueError("w_max and tau must be positive")

    def distinct_blocks(self, duration: float) -> float:
        """Distinct cache lines touched during a stint of ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return self.w_max * (1.0 - math.exp(-duration / self.tau))


@dataclasses.dataclass(frozen=True)
class LinearFootprintCurve:
    """Sharp-knee working-set growth: hot set plus sequential scan.

    ``distinct_blocks(d) = min(hot + rate * d, cap)``: a persistent hot set
    of ``hot`` lines is (re)loaded almost immediately, after which a
    sequential scan adds ``rate`` new lines per second up to the data size
    ``cap``.  This is the growth law of blocked/streaming computations
    (MATRIX's resident tiles + streamed input, MVA's table + scan), and the
    near-linear-then-saturating P^NA curves of Table 1 select it over the
    exponential form.
    """

    hot: float
    rate: float
    cap: float

    def __post_init__(self) -> None:
        if self.hot < 0 or self.rate < 0 or self.cap <= 0:
            raise ValueError("hot/rate must be non-negative and cap positive")

    def distinct_blocks(self, duration: float) -> float:
        """Distinct cache lines touched during a stint of ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return min(self.hot + self.rate * duration, self.cap)


#: Anything with a ``distinct_blocks(duration) -> float`` method.
Curve = typing.Union[FootprintCurve, LinearFootprintCurve]


@dataclasses.dataclass
class Residue:
    """A footprint left behind on one processor."""

    footprint: float
    usage_mark: float


@dataclasses.dataclass
class TaskCacheState:
    """What the model remembers about a task's cache residues.

    Attributes:
        processor: where the task last ran (None before its first stint).
        footprint: lines the task held when it last departed anywhere —
            its current cache context size.
        usage_mark: that processor's fill counter at departure.
        residues: surviving contexts on recently-used processors (the
            task may return to an older processor and still find data;
            bounded at :data:`FootprintModel.MAX_RESIDUES` entries).
    """

    processor: typing.Optional[int] = None
    footprint: float = 0.0
    usage_mark: float = 0.0
    residues: typing.Dict[int, Residue] = dataclasses.field(default_factory=dict)


class FootprintModel:
    """Tracks per-task footprints across processors and prices reloads.

    The model keeps one cumulative-fill counter per processor; survival of
    a departed footprint is a pure function of the counter delta, so both
    ``note_run`` and ``reload_penalty`` are O(1).
    """

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self._lines = float(spec.cache_lines)
        self._usage: typing.Dict[int, float] = {}
        self._tasks: typing.Dict[typing.Hashable, TaskCacheState] = {}

    def state_of(self, task: typing.Hashable) -> TaskCacheState:
        """The (possibly fresh) cache state record for ``task``."""
        if task not in self._tasks:
            self._tasks[task] = TaskCacheState()
        return self._tasks[task]

    def processor_usage(self, processor: int) -> float:
        """Cumulative distinct-line fills observed on ``processor``."""
        return self._usage.get(processor, 0.0)

    #: residues remembered per task (the paper's history depth is 1; we
    #: keep a few so returns to recently-used processors are priced
    #: fairly — relevant to the history-depth ablation)
    MAX_RESIDUES = 4

    def surviving_footprint(self, task: typing.Hashable, processor: int) -> float:
        """Lines of ``task``'s old footprint still resident on ``processor``."""
        state = self.state_of(task)
        residue = state.residues.get(processor)
        if residue is None:
            return 0.0
        intervening = self.processor_usage(processor) - residue.usage_mark
        if intervening <= 0:
            return residue.footprint
        return residue.footprint * math.exp(-intervening / self._lines)

    def reload_penalty(
        self, task: typing.Hashable, processor: int
    ) -> typing.Tuple[float, bool]:
        """Cache penalty (seconds) for dispatching ``task`` on ``processor``.

        Returns:
            ``(penalty_seconds, had_affinity)``.  ``had_affinity`` is True
            when the task's last stint was on this same processor — the
            paper's definition with history depth P = 1.
        """
        state = self.state_of(task)
        had_affinity = state.processor == processor
        surviving = min(self.surviving_footprint(task, processor), state.footprint)
        lost = max(0.0, state.footprint - surviving)
        return lost * self.spec.miss_time_s, had_affinity

    def note_run(
        self,
        task: typing.Hashable,
        processor: int,
        duration: float,
        curve: Curve,
    ) -> None:
        """Record that ``task`` just ran on ``processor`` for ``duration`` s.

        Updates the task's residence record and charges the processor's
        fill counter with the distinct lines the stint touched (new fills
        only — lines that survived from the task's previous stint on this
        processor do not evict anything).
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        state = self.state_of(task)
        surviving = self.surviving_footprint(task, processor)
        built = min(curve.distinct_blocks(duration), self._lines)
        footprint = min(max(surviving, built), self._lines)
        new_fills = max(0.0, footprint - surviving)
        self._usage[processor] = self.processor_usage(processor) + new_fills
        state.processor = processor
        state.footprint = footprint
        state.usage_mark = self.processor_usage(processor)
        state.residues[processor] = Residue(
            footprint=footprint, usage_mark=state.usage_mark
        )
        if len(state.residues) > self.MAX_RESIDUES:
            # Drop the residue that has decayed the most (oldest mark).
            stalest = min(
                (p for p in state.residues if p != processor),
                key=lambda p: state.residues[p].usage_mark,
            )
            del state.residues[stalest]

    def forget(self, task: typing.Hashable) -> None:
        """Drop a finished task's record."""
        self._tasks.pop(task, None)

    def flush_processor(self, processor: int) -> float:
        """Invalidate every residue on ``processor`` (a CPU failure).

        Each task's residence record (``state.processor`` / ``footprint``)
        is kept: a task returning to the recovered processor still *had*
        affinity there, but finds a cold cache and pays the full reload.

        Returns:
            Lines lost, decayed to the flush instant and capped at the
            cache size (the physical content of one private cache).
        """
        lost = 0.0
        for task, state in self._tasks.items():
            if processor in state.residues:
                lost += self.surviving_footprint(task, processor)
                del state.residues[processor]
        return min(lost, self._lines)

    def reset(self) -> None:
        """Clear all state (between replications)."""
        self._usage.clear()
        self._tasks.clear()
