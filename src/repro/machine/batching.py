"""Chunk sizing for batched touch streams.

The Section 4 regime drivers used to call ``Processor.touch`` once per
touch so they could check for a rescheduling point after every access.
The batched drivers instead process touches in chunks, which is only
sound if no rescheduling point can fall *inside* a chunk.

:func:`batch_limit` computes the largest safe chunk: given the remaining
slice budget and the worst-case (all-miss) cost of a single touch, it
returns the greatest ``n`` such that the first ``n - 1`` touches cannot
exhaust the budget — so the budget can only be crossed by the chunk's
final touch, exactly where a touch-by-touch loop would have stopped.
The chunked drivers therefore visit the *identical* sequence of
rescheduling points as the scalar loops they replaced — identical in
exact arithmetic, that is.  Under floating point the aggregate
multiply-add cost of a chunk can round differently from per-touch
accumulation, so a slice whose budget lands exactly on a touch boundary
may resolve one touch later; the shift never compounds because every
slice restarts from a fresh budget
(``tests/machine/test_batch_equivalence.py`` pins down both halves of
this contract, and ``tests/measure/test_penalty.py`` checks the
measured penalties end to end).
"""

from __future__ import annotations

import math

#: Default chunk cap: bounds per-chunk list sizes (memory and latency)
#: while keeping per-chunk Python overhead negligible.  8192 keeps the
#: numpy backend's per-chunk fixed costs well amortized while the chunk
#: working set still fits in L2; both backends use the same cap so they
#: see bit-identical chunk sequences (and emit bit-identical traces).
DEFAULT_CHUNK = 8192


def batch_limit(
    budget_s: float, worst_touch_cost_s: float, cap: int = DEFAULT_CHUNK
) -> int:
    """Largest touch count guaranteed not to cross ``budget_s`` early.

    Returns ``n >= 1`` such that ``(n - 1) * worst_touch_cost_s``
    is strictly below ``budget_s`` (an all-miss chunk can exhaust the
    budget only on its final touch), capped at ``cap``.  With a
    non-positive budget the caller is already at a boundary and gets 1.
    """
    if budget_s <= 0.0:
        return 1
    n = math.ceil(budget_s / worst_touch_cost_s)
    if n < 1:
        return 1
    if n > cap:
        # budget/worst > cap implies (cap - 1) * worst < budget exactly.
        return cap
    # ceil() of the rounded float quotient can overshoot (e.g. budgets
    # that are exact multiples of the cost, where the true quotient q
    # admits only n = q touches but float division lands just above q);
    # re-check the defining inequality and clamp down until it holds.
    while n > 1 and (n - 1) * worst_touch_cost_s >= budget_s:
        n -= 1
    return n


def worst_touch_cost(miss_time_s: float, hit_time_s: float, refs_per_touch: int) -> float:
    """Cost of an all-miss touch: one fill plus the rest at hit speed.

    Computed with the exact expression ``Processor.touch`` uses, so chunk
    sizing and cost accounting can never disagree.
    """
    return miss_time_s + (refs_per_touch - 1) * hit_time_s
