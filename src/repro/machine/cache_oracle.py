"""A simulated-cache drop-in for the analytic footprint model.

The scheduling simulations price cache reloads with the analytic
:class:`~repro.machine.footprint.FootprintModel`.  This module provides
the high-fidelity alternative: a :class:`SimulatedCacheFootprint` keeps a
real set-associative cache per processor and *plays each task's actual
reference stream* through it for the duration of every stint.  Reload
penalties then come from counted lines rather than survival formulas.

It exposes the same ``note_run`` / ``reload_penalty`` / ``reset`` surface
as the analytic model, so a :class:`~repro.core.system.SchedulingSystem`
can run against either — which is how the repository cross-validates its
central approximation end to end
(``tests/core/test_oracle_validation.py`` and
``benchmarks/bench_oracle_validation.py``).

Cost: simulation is at touch granularity, so use a generous fidelity
``scale`` (the default 64 keeps a ~100 processor-second workload in the
seconds range) and scaled-down workloads.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.apps.reference import ReferenceGenerator, ReferenceSpec, reduced_machine
from repro.engine.rng import RngRegistry
from repro.machine.batching import batch_limit, worst_touch_cost
from repro.machine.cache import SetAssociativeCache
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec


@dataclasses.dataclass
class _TaskState:
    processor: typing.Optional[int] = None
    footprint: int = 0  # reduced lines held at last departure


class SimulatedCacheFootprint:
    """Per-processor cache simulation behind the footprint-model interface.

    Args:
        reference_specs: reference model per job name (task keys are
            ``(job name, worker index)``).
        machine: the base machine being modelled.
        scale: fidelity reduction (see :func:`reduced_machine`); penalties
            in seconds are scale-invariant.
        seed: master seed for the per-task reference streams.
        backend: engine name for both the per-processor cache simulators
            and the reference-stream generators
            (None = ``REPRO_BACKEND`` env var, falling back to scalar).
    """

    def __init__(
        self,
        reference_specs: typing.Mapping[str, ReferenceSpec],
        machine: MachineSpec = SEQUENT_SYMMETRY,
        scale: int = 64,
        seed: int = 0,
        backend: typing.Optional[str] = None,
    ) -> None:
        self.spec = machine
        self.scale = scale
        self.backend = backend
        self.reduced = reduced_machine(machine, scale)
        self._reference_specs = {
            name: spec.reduced(scale) for name, spec in reference_specs.items()
        }
        self._rng = RngRegistry(seed)
        self._caches: typing.Dict[int, SetAssociativeCache] = {}
        self._generators: typing.Dict[typing.Hashable, ReferenceGenerator] = {}
        self._tasks: typing.Dict[typing.Hashable, _TaskState] = {}
        #: total touches simulated (for cost introspection)
        self.touches_simulated = 0

    # -- the FootprintModel interface ---------------------------------- #

    def reload_penalty(
        self, task: typing.Hashable, processor: int
    ) -> typing.Tuple[float, bool]:
        """Penalty (seconds) to reload what ``task`` lost since departure."""
        state = self._tasks.get(task)
        if state is None:
            return 0.0, False
        had_affinity = state.processor == processor
        cache = self._caches.get(processor)
        surviving = cache.footprint(task) if cache is not None else 0
        lost = max(0, state.footprint - surviving)
        return lost * self.reduced.miss_time_s, had_affinity

    def note_run(
        self,
        task: typing.Hashable,
        processor: int,
        duration: float,
        curve: object,  # unused: the real stream replaces the curve
    ) -> None:
        """Play ``task``'s reference stream on ``processor`` for ``duration`` s."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        del curve
        ref = self._spec_for(task)
        cache = self._caches.setdefault(
            processor, SetAssociativeCache(self.reduced, backend=self.backend)
        )
        generator = self._generators.get(task)
        if generator is None:
            generator = ReferenceGenerator(
                ref, self._rng.stream(str(task)), backend=self.backend
            )
            self._generators[task] = generator
        draw = (
            generator.next_blocks_array
            if generator.backend_name == "numpy"
            else generator.next_blocks
        )
        elapsed = 0.0
        hit_cost = ref.refs_per_touch * self.reduced.hit_time_s
        miss_cost = worst_touch_cost(
            self.reduced.miss_time_s, self.reduced.hit_time_s, ref.refs_per_touch
        )
        # Chunked playback: each chunk is sized so the duration can only
        # be crossed by its final touch (see repro.machine.batching), so
        # the stint ends after the same touch as the scalar loop did.
        while elapsed < duration:
            n = batch_limit(duration - elapsed, miss_cost)
            hits = cache.access_batch(task, draw(n))
            elapsed += hits * hit_cost + (n - hits) * miss_cost
            self.touches_simulated += n
        state = self._tasks.setdefault(task, _TaskState())
        state.processor = processor
        state.footprint = cache.footprint(task)

    def surviving_footprint(self, task: typing.Hashable, processor: int) -> float:
        """Reduced lines of ``task`` still resident on ``processor``."""
        cache = self._caches.get(processor)
        return float(cache.footprint(task)) if cache is not None else 0.0

    def forget(self, task: typing.Hashable) -> None:
        """Drop a finished task's stream and residency records."""
        self._tasks.pop(task, None)
        self._generators.pop(task, None)

    def flush_processor(self, processor: int) -> float:
        """Invalidate ``processor``'s cache (a CPU failure).

        Tasks keep their residence records (returning there still counts
        as affinity) but the content is gone, so the next dispatch pays a
        full reload.  Returns the number of lines dropped.
        """
        cache = self._caches.get(processor)
        if cache is None:
            return 0.0
        return float(cache.flush())

    def reset(self) -> None:
        """Clear all state (between replications)."""
        self._caches.clear()
        self._generators.clear()
        self._tasks.clear()
        self.touches_simulated = 0

    # ------------------------------------------------------------------ #

    def _spec_for(self, task: typing.Hashable) -> ReferenceSpec:
        job_name = task[0] if isinstance(task, tuple) else str(task)
        # Job instances are named APP or APP-N; specs are keyed by job name
        # first, then by the application prefix.
        if job_name in self._reference_specs:
            return self._reference_specs[job_name]
        app = str(job_name).split("-")[0]
        if app in self._reference_specs:
            return self._reference_specs[app]
        raise KeyError(f"no reference spec for task {task!r}")
