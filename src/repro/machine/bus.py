"""Shared-bus contention model.

The paper folds bus contention into the ``work`` term of its response time
model (Section 2): contention lengthens the processor-seconds needed to
complete an application, and measuring work captures that implicitly.  We
provide the same abstraction explicitly: an M/D/1-style service inflation
that the cache simulator can apply to miss resolution when several
processors are generating miss traffic at once.
"""

from __future__ import annotations

from repro.machine.params import MachineSpec


class BusModel:
    """M/D/1 waiting-time inflation for cache-miss bus transactions.

    With aggregate miss rate ``lam`` (misses/second across all processors)
    and deterministic per-miss bus service time ``s``, utilization is
    ``rho = lam * s`` and the expected total time on the bus per miss is
    ``s * (1 + rho / (2 * (1 - rho)))``.  Utilization is clamped below 1
    (the machine saturates; the experiments never drive it there).
    """

    #: Utilization ceiling: queueing delay is evaluated at most at this load.
    MAX_UTILIZATION = 0.95

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self._service = spec.miss_time_s

    def utilization(self, aggregate_miss_rate: float) -> float:
        """Bus utilization for ``aggregate_miss_rate`` misses/second."""
        if aggregate_miss_rate < 0:
            raise ValueError("miss rate must be non-negative")
        return min(self.MAX_UTILIZATION, aggregate_miss_rate * self._service)

    def effective_miss_time(self, aggregate_miss_rate: float) -> float:
        """Per-miss resolution time including expected bus queueing."""
        rho = self.utilization(aggregate_miss_rate)
        waiting = self._service * rho / (2.0 * (1.0 - rho))
        return self._service + waiting

    def contention_factor(self, aggregate_miss_rate: float) -> float:
        """Ratio of contended to uncontended miss time (>= 1)."""
        return self.effective_miss_time(aggregate_miss_rate) / self._service
