"""The whole machine: processors, shared bus, shared memory."""

from __future__ import annotations

import typing

from repro.machine.bus import BusModel
from repro.machine.params import MachineSpec
from repro.machine.processor import Processor


class Multiprocessor:
    """A bus-based UMA shared-memory multiprocessor.

    Holds ``spec.n_processors`` processors, each with a private cache, plus
    the shared bus model.  The allocation experiments address processors by
    id; the machine is purely a container with aggregate accounting.
    """

    def __init__(self, spec: MachineSpec, n_processors: typing.Optional[int] = None) -> None:
        self.spec = spec
        count = n_processors if n_processors is not None else spec.n_processors
        if count <= 0:
            raise ValueError("need at least one processor")
        if count > spec.n_processors:
            raise ValueError(
                f"machine has only {spec.n_processors} processors, asked for {count}"
            )
        self.processors = [Processor(i, spec) for i in range(count)]
        self.bus = BusModel(spec)

    def __len__(self) -> int:
        return len(self.processors)

    def __getitem__(self, cpu_id: int) -> Processor:
        return self.processors[cpu_id]

    def __iter__(self) -> typing.Iterator[Processor]:
        return iter(self.processors)

    def total_busy_time(self) -> float:
        """Sum of per-processor busy time (processor-seconds)."""
        return sum(p.busy_time for p in self.processors)

    def aggregate_hit_rate(self) -> float:
        """Machine-wide cache hit rate (0.0 if no accesses anywhere)."""
        hits = sum(p.cache.stats.hits for p in self.processors)
        accesses = sum(p.cache.stats.accesses for p in self.processors)
        if not accesses:
            return 0.0
        return hits / accesses

    def __repr__(self) -> str:
        return f"Multiprocessor({self.spec.name!r}, n={len(self)})"
