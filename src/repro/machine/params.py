"""Machine parameters: the Sequent Symmetry Model B and scaled futures."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Static description of a bus-based shared-memory multiprocessor.

    All times are in seconds.  ``processor_speed`` and ``cache_size_factor``
    are *relative* scale factors (1.0 = the Symmetry) used by the Section 7
    future-machine model; the base experiments run at 1.0/1.0.
    """

    name: str
    n_processors: int
    clock_mhz: float
    cache_size_bytes: int
    associativity: int
    line_size_bytes: int
    miss_time_s: float
    hit_time_s: float
    context_switch_s: float
    processor_speed: float = 1.0
    cache_size_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.n_processors <= 0:
            raise ValueError("need at least one processor")
        if self.cache_size_bytes % (self.line_size_bytes * self.associativity):
            raise ValueError("cache size must be a whole number of sets")
        if self.miss_time_s <= self.hit_time_s:
            raise ValueError("a miss must cost more than a hit")

    @property
    def cache_lines(self) -> int:
        """Total number of cache lines (4096 on the Symmetry)."""
        return self.cache_size_bytes // self.line_size_bytes

    @property
    def cache_sets(self) -> int:
        """Number of cache sets (2048 on the Symmetry)."""
        return self.cache_lines // self.associativity

    @property
    def full_fill_time_s(self) -> float:
        """Time to fill the entire cache from memory (3.072 ms on the Symmetry)."""
        return self.cache_lines * self.miss_time_s

    def scaled(self, processor_speed: float, cache_size_factor: float) -> "MachineSpec":
        """A future machine per Section 7.1.

        * Computation runs ``processor_speed`` times faster.
        * The cache holds ``cache_size_factor`` times more lines.
        * Miss resolution speeds up only as sqrt(processor_speed)
          (Section 7.1.3, after [Jouppi 90]).
        """
        if processor_speed <= 0 or cache_size_factor <= 0:
            raise ValueError("scale factors must be positive")
        speed = processor_speed
        return dataclasses.replace(
            self,
            name=f"{self.name} x{speed:g} speed, x{cache_size_factor:g} cache",
            clock_mhz=self.clock_mhz * speed,
            cache_size_bytes=int(self.cache_size_bytes * cache_size_factor),
            miss_time_s=self.miss_time_s / (speed ** 0.5),
            hit_time_s=self.hit_time_s / speed,
            context_switch_s=self.context_switch_s / speed,
            processor_speed=self.processor_speed * speed,
            cache_size_factor=self.cache_size_factor * cache_size_factor,
        )


#: The paper's testbed.  The 0.125 us hit time corresponds to a 2-cycle
#: cache hit at 16 MHz; the paper gives the 0.75 us miss fill and the 750 us
#: reallocation path length directly.
SEQUENT_SYMMETRY = MachineSpec(
    name="Sequent Symmetry Model B",
    n_processors=20,
    clock_mhz=16.0,
    cache_size_bytes=64 * 1024,
    associativity=2,
    line_size_bytes=16,
    miss_time_s=0.75e-6,
    hit_time_s=0.125e-6,
    context_switch_s=750e-6,
)


def future_machine(processor_speed: float, cache_size_factor: float) -> MachineSpec:
    """A Symmetry scaled per the Section 7 assumptions."""
    return SEQUENT_SYMMETRY.scaled(processor_speed, cache_size_factor)
