"""The numpy columnar backend: run-collapse vectorized 2-way LRU.

Covers the 2-way power-of-two geometry (the Symmetry and all its
fidelity reductions) and reproduces the scalar reference backend
exactly — same hits per chunk, same final tag state — which the
differential harness in ``tests/machine/test_backends.py`` enforces.

Algorithm (per chunk of ``n`` blocks):

1. **Stable sort by set.**  Pack ``(set_index << pos_bits) | position``
   into one integer key and sort it; the low bits keep the sort stable,
   so each set's accesses appear contiguously *in program order*.
2. **Run collapse.**  Consecutive equal blocks within a set form a run;
   every non-first access of a run is a guaranteed hit (2-way LRU keeps
   the just-touched block in the MRU way), which accounts for ``n - k``
   hits with ``k`` runs in one subtraction.
3. **Run-first hits.**  A run that starts a set's group is scored
   against the pre-chunk state of that set.  A later run's block can
   only equal the set's LRU-way content at that moment (its MRU way
   holds the previous run's block, which differs by construction), and
   that LRU content is the run tag from two positions back — so the
   whole layer is one shifted compare, with a patch at the position
   right after each group head.
4. **Write-back.**  Only each set's *last* run determines the post-chunk
   state: MRU is the run's tag, LRU is the tag of the run before it (or
   a survivor of the pre-chunk state when the group has a single run).
   The i-th last run of the chunk pairs with the i-th group head, so
   the head gather is reused.

State lives in two ``int64`` arrays of packed tags (``(owner_id << 40)
| block``), exactly mirroring the scalar flat lists.  Two additional
*owner-view* arrays cache the current owner's state in block space so
repeated chunks from the same owner (the common case: thousands of
touches per scheduling stint) skip the tag pack/unpack entirely; the
views are folded back into the tag arrays on owner change or before any
query (:meth:`NumpyBackend.sync`).  Chunk arithmetic runs in ``int32``
when every quantity fits, which roughly halves memory traffic; one
block ever seen at or above ``2**30`` permanently disables that
narrowing so stale wide state tags can never alias after a cast.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.machine.backends import BLOCK_MASK, EMPTY, OWNER_SHIFT


class NumpyBackend:
    """Vectorized 2-way LRU engine; see the module docstring."""

    name = "numpy"

    def __init__(self, n_sets: int) -> None:
        if n_sets & (n_sets - 1) or n_sets <= 0:
            raise ValueError("NumpyBackend requires a power-of-two set count")
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._set_bits = max(1, int(n_sets - 1).bit_length())
        #: authoritative packed-tag state (stale only where a view is live)
        self._mru = np.full(n_sets, EMPTY, dtype=np.int64)
        self._lru = np.full(n_sets, EMPTY, dtype=np.int64)
        #: block-space views of the live owner's lines (-1 = not this owner)
        self._view_base: typing.Optional[int] = None
        self._mru_b = np.empty(n_sets, dtype=np.int64)
        self._lru_b = np.empty(n_sets, dtype=np.int64)
        #: sticky: once any block >= 2**30 is seen, int32 chunk math is
        #: permanently unsafe (a stale wide tag could alias after a cast)
        self._big_blocks = False
        self._ar32 = np.arange(1 << 14, dtype=np.int32)
        self._ar64 = np.arange(1 << 14, dtype=np.int64)
        #: chunk-sized scratch (grown on demand) so the hot path never
        #: allocates: boundary masks and the shifted LB compare layer
        self._heads = np.empty(1 << 14, dtype=bool)
        self._bnd = np.empty(1 << 14, dtype=bool)
        self._lb32 = np.empty(1 << 14, dtype=np.int32)
        self._lb64 = np.empty(1 << 14, dtype=np.int64)

    # -- owner views ---------------------------------------------------- #

    def sync(self) -> None:
        """Fold the live owner view back into the int64 tag arrays.

        Invariant: the tag arrays are correct everywhere except entries
        where the live view holds a block (>= 0); there the truth is
        ``view + view_base``.  A view of -1 means the tag entry is
        already the truth (empty, or a foreign owner's line).
        """
        base = self._view_base
        if base is None:
            return
        self._view_base = None
        mb = self._mru_b
        lb = self._lru_b
        m = mb >= 0
        self._mru[m] = mb[m] + base
        m = lb >= 0
        self._lru[m] = lb[m] + base

    def _activate(self, base: int) -> None:
        self.sync()
        oid = base >> OWNER_SHIFT
        self._mru_b = np.where(
            (self._mru >> OWNER_SHIFT) == oid, self._mru & BLOCK_MASK, -1
        )
        self._lru_b = np.where(
            (self._lru >> OWNER_SHIFT) == oid, self._lru & BLOCK_MASK, -1
        )
        self._view_base = base

    # -- hot path ------------------------------------------------------- #

    def access_batch(self, base: int, blocks: typing.Sequence[int]) -> int:
        b = np.asarray(blocks)
        n = b.shape[0]
        if n == 0:
            return 0
        lo = int(b.min())
        hi = int(b.max())
        if lo < 0 or hi > BLOCK_MASK:
            raise ValueError(
                f"block indices must be in [0, 2**40); got range [{lo}, {hi}]"
            )
        if hi >= (1 << 30):
            self._big_blocks = True
        if base != self._view_base:
            self._activate(base)
        pos_bits = max(1, int(n - 1).bit_length())
        if n > self._ar32.shape[0]:
            self._ar32 = np.arange(n, dtype=np.int32)
            self._ar64 = np.arange(n, dtype=np.int64)
            self._heads = np.empty(n, dtype=bool)
            self._bnd = np.empty(n, dtype=bool)
            self._lb32 = np.empty(n, dtype=np.int32)
            self._lb64 = np.empty(n, dtype=np.int64)
        use32 = not self._big_blocks and self._set_bits + pos_bits <= 31
        if use32:
            bw = b.astype(np.int32) if b.dtype != np.int32 else b
            ar: np.ndarray = self._ar32
        else:
            bw = b.astype(np.int64) if b.dtype != np.int64 else b
            ar = self._ar64
        # stable sort by set via the packed (set, position) key
        key = bw & self._set_mask
        key <<= pos_bits
        key |= ar[:n]
        key.sort()
        order = key & ((1 << pos_bits) - 1)
        # take(mode="clip") skips the bounds check numpy's fancy
        # indexing pays; every index here is constructed in range.
        bs = bw.take(order, mode="clip")
        ss = key >> pos_bits
        heads = self._heads[:n]
        heads[0] = True
        np.not_equal(ss[1:], ss[:-1], out=heads[1:])
        bnd = self._bnd[:n]
        bnd[0] = True
        np.not_equal(bs[1:], bs[:-1], out=bnd[1:])
        bnd |= heads
        if bool(bnd.all()):
            k = n
            RT = bs  # run tags (block space), one per run
            hpos = np.flatnonzero(heads)
            hkey = ss.take(hpos, mode="clip")
        else:
            bidx = np.flatnonzero(bnd)
            k = bidx.shape[0]
            RT = bs.take(bidx, mode="clip")
            hpos = np.flatnonzero(heads.take(bidx, mode="clip"))
            hkey = ss.take(bidx.take(hpos, mode="clip"), mode="clip")
        h = hpos.shape[0]
        hmb = self._mru_b.take(hkey, mode="clip")  # pre-chunk set state
        hlb = self._lru_b.take(hkey, mode="clip")
        RTh = RT.take(hpos, mode="clip")
        # Run-first hits: non-head runs can only match L_before (their
        # M_before is the previous run's differing tag); head runs are
        # scored against the pre-chunk state separately.
        LB = (self._lb32 if bs.dtype == np.int32 else self._lb64)[:k]
        LB[:2] = -2
        LB[2:] = RT[:-2]
        # hpos is sorted, so "head not at the chunk's final run" prunes
        # at most the last element — a slice, not a boolean mask.
        a_end = h - 1 if int(hpos[-1]) == k - 1 else h
        after = hpos[:a_end] + 1  # run right after each group head
        hmb_a = hmb[:a_end]
        LB[after] = np.where(RTh[:a_end] != hmb_a, hmb_a, hlb[:a_end])
        LB[hpos] = -2
        hits = n - k
        hits += int(np.count_nonzero(RT == LB))
        hits += int(np.count_nonzero((RTh == hmb) | (RTh == hlb)))
        # Write-back: the i-th last run of a set pairs with the i-th head.
        lpos = np.empty(h, dtype=hpos.dtype)
        lpos[:-1] = hpos[1:] - 1
        lpos[-1] = k - 1
        lhead = lpos == hpos  # single-run group: last run IS the head
        lt = RT.take(lpos, mode="clip")
        cond = lt != hmb
        # lpos - 1 can be -1 only where lhead is true; where() discards
        # that lane, so clipping it to index 0 is harmless.
        la_b = np.where(
            lhead, np.where(cond, hmb, hlb), RT.take(lpos - 1, mode="clip")
        )
        # A single-run group that evicts a foreign/empty MRU into the LRU
        # way: the view cannot carry a foreign tag, so copy the int64
        # truth immediately.  Once every touched set holds this owner's
        # lines (the steady state) the mask is empty and any() bails out
        # before the costlier boolean extraction.
        m = lhead & cond
        m &= hmb < 0
        if m.any():
            fix = hkey.compress(m)
            self._lru[fix] = self._mru[fix]
        self._mru_b[hkey] = lt
        self._lru_b[hkey] = la_b
        return hits

    # -- queries -------------------------------------------------------- #

    def contains(self, base: int, block: int) -> bool:
        self.sync()
        i = block & self._set_mask
        tag = base + block
        return int(self._mru[i]) == tag or int(self._lru[i]) == tag

    def resident_lines(self) -> int:
        self.sync()
        return int(
            np.count_nonzero(self._mru != EMPTY)
            + np.count_nonzero(self._lru != EMPTY)
        )

    def set_occupancy(self, index: int) -> int:
        self.sync()
        return int(self._mru[index] != EMPTY) + int(self._lru[index] != EMPTY)

    def resident_tags(self) -> typing.Iterator[int]:
        self.sync()
        for tag in self._mru.tolist():
            if tag != EMPTY:
                yield tag
        for tag in self._lru.tolist():
            if tag != EMPTY:
                yield tag

    # -- invalidation --------------------------------------------------- #

    def clear(self) -> None:
        self._mru.fill(EMPTY)
        self._lru.fill(EMPTY)
        self._view_base = None
        self._big_blocks = False

    def evict_tags(self, base: int, tags: typing.Iterable[int]) -> None:
        self.sync()
        mru = self._mru
        lru = self._lru
        mask = self._set_mask
        for tag in tags:
            i = tag & mask
            if mru[i] == tag:
                mru[i] = lru[i]
            lru[i] = EMPTY

    # -- test support --------------------------------------------------- #

    def snapshot(self) -> object:
        """Same canonical form as the scalar backend's two-way snapshot."""
        self.sync()
        return ("two-way", self._mru.tolist(), self._lru.tolist())
