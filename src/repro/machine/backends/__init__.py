"""Pluggable cache-state backends for the set-associative simulator.

The simulator's hot path — mapping a chunk of block indices to sets,
updating per-set LRU state, and counting hits — is isolated behind the
:class:`CacheBackend` protocol so that independently implemented engines
can execute the same reference stream:

* ``scalar`` (:mod:`repro.machine.backends.scalar`) — the original
  per-touch Python loops.  This backend is the **executable reference
  specification**: its behaviour *defines* what every other backend
  must reproduce exactly (hits per chunk, final tag state, query
  results).  It has no third-party dependencies and always works.
* ``numpy`` (:mod:`repro.machine.backends.numpy_backend`) — a columnar
  engine that processes a whole chunk of blocks as arrays (vectorized
  set indexing, run-collapse 2-way shift-register update via masked
  array ops, batched hit counting).  Only available when numpy is
  installed, and only accelerates the ubiquitous 2-way power-of-two
  geometry; other geometries silently fall back to the scalar engine
  (the selection is per-cache and :attr:`CacheBackend.name` reports
  what actually runs).

Selection precedence is **CLI flag > ``REPRO_BACKEND`` environment
variable > default (scalar)**: callers pass an explicit name down
through :class:`~repro.machine.cache.SetAssociativeCache` /
:class:`~repro.machine.processor.Processor` / the measurement drivers,
and :func:`resolve_backend_name` falls back to the environment variable
and then the default when no explicit name is given.

Backends never see owner keys: the cache interns owners to small ids
and hands backends integer tags ``(owner_id << 40) | block`` via the
precomputed ``base = owner_id << 40``.  Block indices must therefore
lie in ``[0, 2**40)``; every backend validates the whole chunk up front
and raises :class:`ValueError` before mutating any state.

``tests/machine/test_backends.py`` holds the differential harness that
drives both backends over random geometries, owner churn, and
chunkings, asserting exact agreement.
"""

from __future__ import annotations

import os
import typing

from repro.machine.params import MachineSpec

#: Bits reserved for the block index inside an integer line tag.
OWNER_SHIFT = 40
#: Largest representable block index (inclusive): 2**40 - 1.
BLOCK_MASK = (1 << OWNER_SHIFT) - 1
#: Sentinel for an invalid / empty way.
EMPTY = -1

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"
#: Recognized backend names.
BACKEND_NAMES = ("scalar", "numpy")
#: Fallback when neither a CLI flag nor the environment chooses.
DEFAULT_BACKEND = "scalar"


class CacheBackend(typing.Protocol):
    """State-owning engine behind :class:`~repro.machine.cache.SetAssociativeCache`.

    A backend owns the per-set LRU state; the cache keeps everything
    else (owner interning, stats, the lazy owner index, tracing).  Tags
    are integers ``base + block`` with ``base = owner_id << 40``.
    """

    #: Which engine this is ("scalar" or "numpy") — after any fallback.
    name: str

    def access_batch(self, base: int, blocks: typing.Sequence[int]) -> int:
        """Reference every block in order for the owner at ``base``.

        Validates the whole chunk (each block in ``[0, 2**40)``) before
        touching state, raising :class:`ValueError` otherwise.  Returns
        the number of hits.
        """

    def contains(self, base: int, block: int) -> bool:
        """True if the tag ``base + block`` is resident (LRU state untouched)."""

    def resident_lines(self) -> int:
        """Total number of valid lines."""

    def set_occupancy(self, index: int) -> int:
        """Number of valid lines in set ``index`` (bounds checked by caller)."""

    def clear(self) -> None:
        """Invalidate every line."""

    def resident_tags(self) -> typing.Iterator[int]:
        """Yield every resident tag (order unspecified)."""

    def evict_tags(self, base: int, tags: typing.Iterable[int]) -> None:
        """Invalidate exactly ``tags`` (all owned by the owner at ``base``)."""

    def snapshot(self) -> object:
        """Canonical state representation for differential tests."""


def numpy_available() -> bool:
    """True when the numpy backend's dependency can be imported."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend_name(explicit: typing.Optional[str] = None) -> str:
    """Apply the selection precedence: explicit > env var > default.

    Raises:
        ValueError: for a name (from either source) not in
            :data:`BACKEND_NAMES`.
    """
    if explicit is not None:
        name = explicit
    else:
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    name = name.strip().lower()
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown cache backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return name


def make_backend(
    name: typing.Optional[str], spec: MachineSpec
) -> "CacheBackend":
    """Build the backend for ``spec`` after resolving ``name``.

    The numpy engine covers only 2-way power-of-two geometries; asking
    for ``numpy`` on any other geometry returns the scalar reference
    engine instead (check the instance's ``name`` to see what ran).
    Asking for ``numpy`` without numpy installed raises — an explicit
    request should never silently degrade.
    """
    name = resolve_backend_name(name)
    if name == "numpy":
        if not numpy_available():
            raise RuntimeError(
                "cache backend 'numpy' requested but numpy is not installed"
            )
        n_sets = spec.cache_sets
        if spec.associativity == 2 and n_sets & (n_sets - 1) == 0:
            from repro.machine.backends.numpy_backend import NumpyBackend

            return NumpyBackend(n_sets)
    from repro.machine.backends.scalar import ScalarBackend

    return ScalarBackend(spec)
