"""The scalar reference backend: per-touch Python loops.

This is the executable specification of the cache's behaviour — the
code every vectorized backend is differentially tested against.  It
carries the two representations the simulator has always had:

* **Flat 2-way fast path** — for 2-way power-of-two geometries each
  set's LRU state is two parallel flat lists; a 2-way LRU set is a
  shift register, so hits and evictions are a few integer compares.
* **Dict-per-set fallback** — any other geometry keeps one dict per
  set whose insertion order is the LRU order (re-insertion moves a tag
  to the MRU end; eviction drops the first key).
"""

from __future__ import annotations

import typing

from repro.machine.backends import BLOCK_MASK, EMPTY
from repro.machine.params import MachineSpec


class ScalarBackend:
    """Reference LRU engine; see the module docstring."""

    name = "scalar"

    def __init__(self, spec: MachineSpec) -> None:
        n_sets = spec.cache_sets
        self.n_sets = n_sets
        self.associativity = spec.associativity
        #: the flat fast path covers 2-way caches with power-of-two sets
        self._two_way = spec.associativity == 2 and n_sets & (n_sets - 1) == 0
        if self._two_way:
            self._set_mask = n_sets - 1
            self._lru: typing.List[int] = [EMPTY] * n_sets
            self._mru: typing.List[int] = [EMPTY] * n_sets
            self._sets: typing.List[typing.Dict[int, None]] = []
        else:
            self._sets = [{} for _ in range(n_sets)]

    # -- hot path ------------------------------------------------------- #

    def access_batch(self, base: int, blocks: typing.Sequence[int]) -> int:
        if len(blocks) == 0:
            return 0
        # Whole-chunk range validation up front: a block >= 2**40 would
        # silently alias into another owner's id bits (and a negative one
        # into a lower owner's), corrupting hit/footprint accounting.
        lo = min(blocks)
        hi = max(blocks)
        if lo < 0 or hi > BLOCK_MASK:
            raise ValueError(
                f"block indices must be in [0, 2**40); got range [{lo}, {hi}]"
            )
        hits = 0
        if self._two_way:
            lru = self._lru
            mru = self._mru
            mask = self._set_mask
            # A 2-way LRU set is a shift register: a fresh tag pushes the
            # MRU down to LRU and drops the old LRU (which is EMPTY while
            # the set is filling, so cold fills need no special case).
            for block in blocks:
                i = block & mask
                tag = base + block
                m = mru[i]
                if m == tag:
                    hits += 1
                    continue
                l = lru[i]
                if l == tag:
                    lru[i] = m
                    mru[i] = tag
                    hits += 1
                    continue
                lru[i] = m
                mru[i] = tag
        else:
            sets = self._sets
            n_sets = self.n_sets
            assoc = self.associativity
            for block in blocks:
                s = sets[block % n_sets]
                tag = base + block
                if tag in s:
                    # Re-insertion moves the tag to the MRU end.
                    del s[tag]
                    s[tag] = None
                    hits += 1
                    continue
                if len(s) >= assoc:
                    del s[next(iter(s))]
                s[tag] = None
        return hits

    # -- queries -------------------------------------------------------- #

    def contains(self, base: int, block: int) -> bool:
        tag = base + block
        if self._two_way:
            i = block & self._set_mask
            return self._mru[i] == tag or self._lru[i] == tag
        return tag in self._sets[block % self.n_sets]

    def resident_lines(self) -> int:
        if self._two_way:
            return (
                2 * self.n_sets
                - self._lru.count(EMPTY)
                - self._mru.count(EMPTY)
            )
        return sum(len(s) for s in self._sets)

    def set_occupancy(self, index: int) -> int:
        if self._two_way:
            return (self._lru[index] != EMPTY) + (self._mru[index] != EMPTY)
        return len(self._sets[index])

    def resident_tags(self) -> typing.Iterator[int]:
        if self._two_way:
            for tag in self._lru:
                if tag != EMPTY:
                    yield tag
            for tag in self._mru:
                if tag != EMPTY:
                    yield tag
        else:
            for cache_set in self._sets:
                yield from cache_set

    # -- invalidation --------------------------------------------------- #

    def clear(self) -> None:
        if self._two_way:
            self._lru = [EMPTY] * self.n_sets
            self._mru = [EMPTY] * self.n_sets
        else:
            for cache_set in self._sets:
                cache_set.clear()

    def evict_tags(self, base: int, tags: typing.Iterable[int]) -> None:
        if self._two_way:
            lru = self._lru
            mru = self._mru
            mask = self._set_mask
            for tag in tags:
                i = tag & mask
                if mru[i] == tag:
                    # Promote the surviving line; the set may also be empty.
                    mru[i] = lru[i]
                lru[i] = EMPTY
        else:
            sets = self._sets
            n_sets = self.n_sets
            for tag in tags:
                del sets[(tag - base) % n_sets][tag]

    # -- test support --------------------------------------------------- #

    def snapshot(self) -> object:
        """Canonical state: exact way contents, LRU order preserved."""
        if self._two_way:
            return ("two-way", list(self._mru), list(self._lru))
        return ("assoc", [list(s) for s in self._sets])
