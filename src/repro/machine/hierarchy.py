"""The two-level cache analysis behind Section 7's sqrt(speed) assumption.

Section 7.2: "To gauge the amount by which hit rates must be increased,
we analyzed a simple model consisting of two levels of cache memory and a
single central memory.  We found that because multiprocessor hit rates
may already be expected to be quite high, there was little room for
improvement: hit rates could not be increased enough to obviate the need
for faster miss resolution.  For this reason, the model assumes that
(effective) memory speed must increase as sqrt(processor-speed)."

This module reconstructs that analysis.  The model: a reference costs

    t_eff = h1 * t1  +  (1 - h1) * [ h2 * t2 + (1 - h2) * t_mem ]

On a machine ``s`` times faster, on-chip times scale as ``t1/s`` and
``t2/s`` while main memory improves only by a factor ``m`` (``t_mem/m``).
For the processor to deliver its full factor-``s`` effective speedup, the
memory term must shrink by ``s`` as well — achievable only by shrinking
the *combined miss fraction* ``(1-h1)(1-h2)`` by ``s/m``.  Starting from
already-high hit rates, the required secondary hit rate quickly exceeds
1, i.e. is infeasible — hence the sqrt law.
"""

from __future__ import annotations

import dataclasses
import math
import typing


@dataclasses.dataclass(frozen=True)
class TwoLevelCache:
    """A two-level cache hierarchy over a single central memory.

    Times are per reference, in seconds on the base machine; hit rates
    are fractions.  Defaults follow the Symmetry-era shape: a fast L1,
    an L2 ~4x slower, memory ~25x slower than L1, and the "already quite
    high" multiprocessor hit rates the paper cites.
    """

    l1_time_s: float = 0.125e-6
    l2_time_s: float = 0.5e-6
    memory_time_s: float = 3.0e-6
    l1_hit_rate: float = 0.95
    l2_hit_rate: float = 0.80

    def __post_init__(self) -> None:
        if not 0.0 <= self.l1_hit_rate <= 1.0 or not 0.0 <= self.l2_hit_rate <= 1.0:
            raise ValueError("hit rates must be fractions in [0, 1]")
        if not 0 < self.l1_time_s <= self.l2_time_s <= self.memory_time_s:
            raise ValueError("need l1 <= l2 <= memory access times, all positive")

    @property
    def combined_miss_fraction(self) -> float:
        """Fraction of references that reach main memory."""
        return (1.0 - self.l1_hit_rate) * (1.0 - self.l2_hit_rate)

    def effective_access_time(
        self, processor_speed: float = 1.0, memory_speedup: float = 1.0
    ) -> float:
        """Mean per-reference time on a scaled machine.

        On-chip levels scale with ``processor_speed``; central memory
        only by ``memory_speedup``.
        """
        if processor_speed <= 0 or memory_speedup <= 0:
            raise ValueError("speedups must be positive")
        on_chip = (
            self.l1_hit_rate * self.l1_time_s
            + (1.0 - self.l1_hit_rate) * self.l2_hit_rate * self.l2_time_s
        )
        return (
            on_chip / processor_speed
            + self.combined_miss_fraction * self.memory_time_s / memory_speedup
        )

    def effective_speedup(
        self, processor_speed: float, memory_speedup: float = 1.0
    ) -> float:
        """Delivered speedup: base access time over scaled access time.

        With constant memory this saturates at
        ``t_eff(1) / (miss_fraction * t_mem)`` no matter how fast the
        processor gets — the memory wall.
        """
        return self.effective_access_time() / self.effective_access_time(
            processor_speed, memory_speedup
        )

    def required_l2_hit_rate(
        self, processor_speed: float, memory_speedup: float = 1.0
    ) -> float:
        """L2 hit rate needed for the *full* factor-``s`` speedup.

        Solves ``t_eff(s) = t_eff(1) / s`` for the secondary hit rate with
        everything else fixed.  A value above 1 means no hit rate
        suffices — the paper's "little room for improvement".
        """
        if processor_speed <= 0 or memory_speedup <= 0:
            raise ValueError("speedups must be positive")
        l1_miss = 1.0 - self.l1_hit_rate
        if l1_miss == 0.0:
            return 0.0  # memory never referenced; any L2 works
        # Let h2' be the unknown. t_eff(s) with scaled on-chip times:
        #   [h1*t1 + l1_miss*h2'*t2]/s + l1_miss*(1-h2')*t_mem/m
        # set equal to t_eff(1)/s and solve for h2'.
        target = self.effective_access_time() / processor_speed
        base_l1 = self.l1_hit_rate * self.l1_time_s / processor_speed
        # target = base_l1 + l1_miss*h2'*t2/s + l1_miss*(1-h2')*t_mem/m
        s = processor_speed
        m = memory_speedup
        numerator = target - base_l1 - l1_miss * self.memory_time_s / m
        denominator = l1_miss * (self.l2_time_s / s - self.memory_time_s / m)
        return numerator / denominator

    #: Practical ceiling on achievable secondary hit rates: program hit
    #: rates "grow extremely slowly as cache size increases" [Wang et al.
    #: 89], so rates above this are not realistically reachable.
    PRACTICAL_L2_CEILING = 0.98

    def is_full_speedup_feasible(
        self,
        processor_speed: float,
        memory_speedup: float = 1.0,
        max_l2_hit_rate: typing.Optional[float] = None,
    ) -> bool:
        """Can *achievable* hit-rate improvements deliver the full speedup?

        A mathematically-required rate always exists below 1 (a perfect
        L2 never touches memory), so feasibility is judged against the
        practical ceiling — which is the paper's actual argument: "there
        was little room for improvement".
        """
        ceiling = (
            max_l2_hit_rate if max_l2_hit_rate is not None else self.PRACTICAL_L2_CEILING
        )
        required = self.required_l2_hit_rate(processor_speed, memory_speedup)
        return required <= ceiling


def sqrt_memory_law_table(
    cache: typing.Optional[TwoLevelCache] = None,
    speeds: typing.Sequence[float] = (2, 4, 10, 100, 1000),
) -> typing.List[typing.Tuple[float, float, float, bool]]:
    """The Section 7.2 argument as a table.

    For each processor speed, returns ``(speed, required L2 hit rate with
    constant memory, required L2 hit rate with sqrt-speed memory,
    feasible under the sqrt law)``.  With constant memory the required
    rate blows past the practical ceiling almost immediately; under the
    sqrt law it stays achievable an order of magnitude further out —
    which is why the Figure 7 model divides the cache penalty by
    sqrt(processor-speed) rather than assuming constant-speed memory.
    """
    cache = cache if cache is not None else TwoLevelCache()
    rows = []
    for speed in speeds:
        constant_memory = cache.required_l2_hit_rate(speed, memory_speedup=1.0)
        sqrt_memory = cache.required_l2_hit_rate(
            speed, memory_speedup=math.sqrt(speed)
        )
        rows.append(
            (
                float(speed),
                constant_memory,
                sqrt_memory,
                cache.is_full_speedup_feasible(speed, math.sqrt(speed)),
            )
        )
    return rows
