"""A job: one application instance being scheduled.

The job owns its thread dependence graph, a fixed pool of worker tasks,
and a ready queue of user-level threads.  It exposes exactly the
information the paper's allocation protocol requires: the instantaneous
processor *demand* it reflects to the allocator through shared memory, and
(for affinity policies) the *desired processor* of rule A.2.
"""

from __future__ import annotations

import collections
import typing

from repro.machine.footprint import FootprintCurve
from repro.threads.data_affinity import DataAffinitySpec
from repro.threads.graph import ThreadGraph
from repro.threads.workers import WorkerState, WorkerTask


class Job:
    """Runtime state of one application instance."""

    def __init__(
        self,
        name: str,
        graph: ThreadGraph,
        curve: FootprintCurve,
        max_workers: int,
        data_affinity: typing.Optional[DataAffinitySpec] = None,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("a job needs at least one worker")
        self.name = name
        self.graph = graph
        self.curve = curve
        #: optional user-level thread affinity configuration (Section 9)
        self.data_affinity = data_affinity
        self.workers = [WorkerTask(self, i) for i in range(max_workers)]
        self.ready: typing.Deque[int] = collections.deque()
        self.arrival_time = 0.0
        self.completion_time: typing.Optional[float] = None
        self.cancelled_time: typing.Optional[float] = None
        # Accounting accumulated by the scheduling system:
        self.work_done = 0.0        # useful processor-seconds
        self.waste = 0.0            # processor-seconds held while idle
        self.n_reallocations = 0    # worker dispatches onto processors
        self.n_affine = 0           # dispatches with affinity
        self.cache_penalty_total = 0.0
        self.switch_overhead_total = 0.0
        self.allocation_integral = 0.0  # processors x seconds held

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self, now: float) -> None:
        """Reset graph state and populate the initial ready queue."""
        self.graph.reset()
        self.ready = collections.deque(self.graph.initially_ready())
        self.arrival_time = now
        self.completion_time = None
        self.cancelled_time = None

    @property
    def finished(self) -> bool:
        """True once every thread of the graph has completed."""
        return self.graph.all_done

    @property
    def cancelled(self) -> bool:
        """True once the job has been cancelled (open-system disruption)."""
        return self.cancelled_time is not None

    @property
    def response_time(self) -> float:
        """Completion minus arrival; raises if the job has not finished."""
        if self.completion_time is None:
            raise RuntimeError(f"job {self.name!r} has not completed")
        return self.completion_time - self.arrival_time

    # ------------------------------------------------------------------ #
    # demand reflection (the shared-memory protocol of Section 5.2)

    def runnable_units(self) -> int:
        """Threads ready to run plus suspended workers holding partial work."""
        suspended = sum(1 for w in self.workers if w.state == WorkerState.SUSPENDED)
        return len(self.ready) + suspended

    def running_workers(self) -> typing.List[WorkerTask]:
        """Workers currently on processors."""
        return [w for w in self.workers if w.state == WorkerState.RUNNING]

    def demand(self) -> int:
        """Processors the job can use right now, capped by its worker pool."""
        return min(len(self.workers), self.runnable_units() + len(self.running_workers()))

    def additional_request(self, allocated: int) -> int:
        """Extra processors the job would accept given ``allocated`` now."""
        return max(0, self.demand() - allocated)

    # ------------------------------------------------------------------ #
    # worker selection

    def dispatchable_workers(self) -> typing.List[WorkerTask]:
        """Workers that could use a processor right now.

        Suspended workers always qualify (they hold a partial thread); idle
        workers qualify only while unclaimed ready threads exist.
        """
        suspended = [w for w in self.workers if w.state == WorkerState.SUSPENDED]
        result = list(suspended)
        spare_threads = len(self.ready)
        for worker in self.workers:
            if spare_threads <= 0:
                break
            if worker.state == WorkerState.IDLE:
                result.append(worker)
                spare_threads -= 1
        return result

    def worker_by_key(
        self, key: typing.Tuple[str, int]
    ) -> typing.Optional[WorkerTask]:
        """Find this job's worker with ``key``, or None."""
        if key[0] != self.name:
            return None
        index = key[1]
        if 0 <= index < len(self.workers):
            return self.workers[index]
        return None

    def select_worker(
        self, processor: int, prefer_affinity: bool, history_depth: int = 1
    ) -> typing.Optional[WorkerTask]:
        """Pick the worker to dispatch on ``processor``.

        Suspended workers come first (their partial threads gate progress).
        Under an affinity policy, a dispatchable worker that ran on this
        very processor within its last ``history_depth`` stints wins —
        most recent residence first.
        """
        candidates = self.dispatchable_workers()
        if not candidates:
            return None
        if prefer_affinity:
            for depth in range(1, history_depth + 1):
                for worker in candidates:
                    if worker.affinity_within(processor, depth):
                        return worker
        return candidates[0]

    def desired_processor(self) -> typing.Optional[int]:
        """Rule A.2: where the most progress-critical task last ran.

        The most critical task is the suspended worker with the most
        remaining service (it gates the job's completion); failing that,
        the last processor of any dispatchable worker.
        """
        best: typing.Optional[WorkerTask] = None
        for worker in self.workers:
            if worker.state != WorkerState.SUSPENDED:
                continue
            if worker.last_processor is None:
                continue
            if best is None or worker.remaining_service > best.remaining_service:
                best = worker
        if best is not None:
            return best.last_processor
        for worker in self.dispatchable_workers():
            if worker.last_processor is not None:
                return worker.last_processor
        return None

    # ------------------------------------------------------------------ #
    # thread queue

    def take_ready_thread(
        self, worker: typing.Optional[WorkerTask] = None
    ) -> typing.Optional[int]:
        """Pop the next ready thread id for ``worker``.

        FIFO unless the job has a user-level data-affinity spec, in which
        case the spec's dispatch rule applies (see
        :mod:`repro.threads.data_affinity`).
        """
        from repro.threads.data_affinity import pick_thread

        if worker is not None and self.data_affinity is not None:
            return pick_thread(self, worker, self.data_affinity)
        if self.ready:
            return self.ready.popleft()
        return None

    def thread_service_for(self, worker: WorkerTask, tid: int) -> float:
        """Effective service time of ``tid`` on ``worker`` (warm-data aware)."""
        from repro.threads.data_affinity import effective_service

        return effective_service(self, worker, tid)

    def on_thread_complete(self, tid: int) -> typing.List[int]:
        """Record completion; enqueue and return newly-ready thread ids."""
        newly = self.graph.complete(tid)
        self.ready.extend(newly)
        return newly

    # ------------------------------------------------------------------ #
    # derived metrics

    def affinity_percentage(self) -> float:
        """Percent of dispatches that landed on an affine processor."""
        if not self.n_reallocations:
            return 0.0
        return 100.0 * self.n_affine / self.n_reallocations

    def average_allocation(self) -> float:
        """Time-averaged processors held over the job's lifetime."""
        if self.completion_time is None or self.completion_time <= self.arrival_time:
            return 0.0
        return self.allocation_integral / (self.completion_time - self.arrival_time)

    def __repr__(self) -> str:
        return (
            f"Job({self.name!r}, threads={self.graph.n_threads}, "
            f"done={self.graph.n_completed})"
        )
