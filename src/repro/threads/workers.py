"""Worker tasks: the kernel-schedulable threads that acquire affinity.

Each job runs its user-level threads on a small, fixed pool of worker
tasks.  A worker is the unit the allocator dispatches onto processors, and
therefore the entity that develops cache affinity ("a task has affinity
for processors on which it has previously run").
"""

from __future__ import annotations

import enum
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.threads.job import Job


class WorkerState(enum.Enum):
    """Lifecycle of a worker task."""

    #: not dispatched, holding no thread
    IDLE = "idle"
    #: executing a user-level thread on a processor
    RUNNING = "running"
    #: preempted mid-thread; holds partially-executed work
    SUSPENDED = "suspended"


class WorkerTask:
    """One kernel thread of a job.

    The worker remembers the last processor it ran on (the paper's task
    history with P = 1) and, when suspended, the thread it was executing
    with the service time still remaining.
    """

    def __init__(self, job: "Job", index: int) -> None:
        self.job = job
        self.index = index
        self.state = WorkerState.IDLE
        self.processor: typing.Optional[int] = None
        self.last_processor: typing.Optional[int] = None
        #: most-recent-first window of processors this task has run on
        #: (the paper's task history; depth consulted is policy-defined)
        self.processor_history: typing.List[int] = []
        #: data group of the last user-level thread this worker executed
        #: (drives the user-level data-affinity layer)
        self.last_data_group: typing.Optional[int] = None
        #: most-recent-first window of data groups this worker touched
        self.recent_data_groups: typing.List[int] = []
        self.current_thread: typing.Optional[int] = None
        self.remaining_service = 0.0
        #: when the current stint on a processor began (for footprint build)
        self.started_at = 0.0
        #: when execution of the current thread segment began (for work accounting)
        self.segment_start = 0.0
        #: dispatch overhead (switch + cache reload) charged at segment start
        self.stint_overhead = 0.0
        #: breakdown of the charged overhead, for refunds on immediate preemption
        self.stint_switch_charged = 0.0
        self.stint_penalty_charged = 0.0
        #: handle of the pending thread-completion event, owned by the system
        self.completion_handle: typing.Optional[object] = None
        #: lifetime dispatch statistics
        self.dispatches = 0
        self.affine_dispatches = 0

    @property
    def key(self) -> typing.Tuple[str, int]:
        """Stable hashable identity: (job name, worker index)."""
        return (self.job.name, self.index)

    @property
    def has_affinity_for(self) -> typing.Optional[int]:
        """The single processor this task has affinity for (or None)."""
        return self.last_processor

    def affinity_within(self, processor: int, depth: int = 1) -> bool:
        """True if ``processor`` is among the last ``depth`` this task used."""
        if depth < 1:
            raise ValueError("depth must be at least 1")
        return processor in self.processor_history[:depth]

    def note_dispatch(self, processor: int, now: float) -> bool:
        """Record a dispatch onto ``processor``; returns affinity hit/miss."""
        affine = self.last_processor == processor
        self.dispatches += 1
        if affine:
            self.affine_dispatches += 1
        self.state = WorkerState.RUNNING
        self.processor = processor
        self.started_at = now
        self.segment_start = now
        return affine

    def note_departure(self, now: float, suspended: bool) -> float:
        """Record leaving the processor; returns the stint duration.

        Args:
            now: current virtual time.
            suspended: True if the worker was preempted mid-thread (it keeps
                ``current_thread``/``remaining_service``); False if it left
                voluntarily with no thread in hand.
        """
        duration = max(0.0, now - self.started_at)
        self.last_processor = self.processor
        if self.processor is not None:
            if not self.processor_history or self.processor_history[0] != self.processor:
                self.processor_history.insert(0, self.processor)
                del self.processor_history[8:]
        self.processor = None
        self.state = WorkerState.SUSPENDED if suspended else WorkerState.IDLE
        if not suspended:
            self.current_thread = None
            self.remaining_service = 0.0
        return duration

    def affinity_rate(self) -> float:
        """Fraction of dispatches that landed on the affine processor."""
        if not self.dispatches:
            return 0.0
        return self.affine_dispatches / self.dispatches

    def __repr__(self) -> str:
        return (
            f"WorkerTask({self.job.name}#{self.index}, {self.state.value}, "
            f"cpu={self.processor}, last={self.last_processor})"
        )
