"""User-level thread substrate.

The paper's applications are built on user-level threads: each program is a
*thread dependence graph* (nodes = user-level threads, edges = precedence)
executed by a smaller, fixed set of *worker tasks* (kernel-schedulable
threads), one per allocated processor.  This package provides:

* :class:`~repro.threads.graph.ThreadGraph` — the dependence DAG with
  readiness tracking and the parallelism-profile computation behind the
  paper's Figures 2-4;
* :class:`~repro.threads.job.Job` — one running application instance;
* :class:`~repro.threads.workers.WorkerTask` — the kernel-thread workers
  that acquire processor affinity;
* :mod:`~repro.threads.sync` — barrier construction and the critical
  section contention model GRAVITY's phases use.
"""

from repro.threads.data_affinity import DataAffinitySpec, effective_service, pick_thread
from repro.threads.graph import ThreadGraph, ThreadNode
from repro.threads.job import Job
from repro.threads.sync import CriticalSectionModel, add_barrier
from repro.threads.workers import WorkerState, WorkerTask

__all__ = [
    "CriticalSectionModel",
    "DataAffinitySpec",
    "Job",
    "ThreadGraph",
    "ThreadNode",
    "WorkerState",
    "WorkerTask",
    "add_barrier",
    "effective_service",
    "pick_thread",
]
