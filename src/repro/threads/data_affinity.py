"""Cache affinity inside the user-level thread package (Section 9).

The paper closes: "cache effects can have a significant effect on how
applications should be programmed ... Part of our continuing work is an
investigation of these cache effects on the design of software layers
above the kernel, e.g., the user-level thread package."

This module implements that layer.  User-level threads operate on data
(a GRAVITY thread updates one partition of bodies; an MVA thread one
station column).  When a worker task runs a thread whose data it already
touched in its previous thread, that data is warm in the worker's cache
and the thread runs faster.  Two pieces model this:

* threads carry an optional ``data_group`` tag (set by the application's
  graph builder);
* a :class:`DataAffinitySpec` on the job gives the warm-data speedup and
  chooses the user-level dispatch rule — plain FIFO, or *affine*: scan a
  bounded window of the ready queue for a thread matching the worker's
  last data group before falling back to FIFO.

The scheduling system consults :func:`effective_service` at dispatch, so
the whole mechanism composes with every kernel-level allocation policy.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.threads.job import Job
    from repro.threads.workers import WorkerTask


@dataclasses.dataclass(frozen=True)
class DataAffinitySpec:
    """User-level thread scheduling configuration for one job."""

    #: fraction of a thread's service saved when its data group is still
    #: warm in the worker's cache (among its recently-touched groups)
    warm_discount: float = 0.15
    #: dispatch rule: "fifo" ignores groups, "affine" searches the window
    scheduler: str = "affine"
    #: how many ready threads the affine search may inspect
    search_window: int = 16
    #: how many recently-touched data groups stay warm per worker (the
    #: cache holds a few partitions' worth of data)
    group_memory: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.warm_discount < 1.0:
            raise ValueError("warm_discount must be in [0, 1)")
        if self.scheduler not in ("fifo", "affine"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.search_window < 1:
            raise ValueError("search_window must be at least 1")
        if self.group_memory < 1:
            raise ValueError("group_memory must be at least 1")


def _warm_groups(
    worker: "WorkerTask", spec: DataAffinitySpec
) -> typing.FrozenSet[int]:
    """The data groups currently warm in ``worker``'s cache."""
    recent = getattr(worker, "recent_data_groups", None)
    if recent:
        return frozenset(list(recent)[: spec.group_memory])
    if worker.last_data_group is not None:
        return frozenset({worker.last_data_group})
    return frozenset()


def pick_thread(
    job: "Job", worker: "WorkerTask", spec: typing.Optional[DataAffinitySpec]
) -> typing.Optional[int]:
    """Pop the next thread for ``worker`` from ``job``'s ready queue.

    FIFO by default; under an affine spec, prefer (within the search
    window) a thread whose data group is warm for this worker.
    """
    if not job.ready:
        return None
    if spec is None or spec.scheduler == "fifo":
        return job.ready.popleft()
    warm = _warm_groups(worker, spec)
    if not warm:
        return job.ready.popleft()
    window = min(spec.search_window, len(job.ready))
    for index in range(window):
        tid = job.ready[index]
        group = job.graph.node(tid).data_group
        if group is not None and group in warm:
            del job.ready[index]
            return tid
    return job.ready.popleft()


def effective_service(
    job: "Job", worker: "WorkerTask", tid: int
) -> float:
    """Service time of ``tid`` on ``worker``, with the warm-data discount.

    Also pushes the thread's group onto the worker's recent-group window,
    so group reuse within the memory horizon chains its warmth.
    """
    node = job.graph.node(tid)
    service = node.service_time
    spec = job.data_affinity
    warm = (
        spec is not None
        and node.data_group is not None
        and node.data_group in _warm_groups(worker, spec)
    )
    worker.last_data_group = node.data_group
    if node.data_group is not None:
        recent = worker.recent_data_groups
        if node.data_group in recent:
            recent.remove(node.data_group)
        recent.insert(0, node.data_group)
        del recent[8:]
    if warm:
        assert spec is not None
        return service * (1.0 - spec.warm_discount)
    return service
