"""Synchronization modeling: barriers and critical-section contention.

GRAVITY's structure (Figure 4) repeats five phases per simulated time
step, with barrier synchronizations between the parallel phases — the
parallelism briefly drops to one at each barrier.  In the dependence-graph
representation a barrier is simply a zero-service node that all threads of
one phase feed and that all threads of the next phase depend on.

The paper also notes that within some GRAVITY phases "thread times depend
on synchronization delays for critical sections of code".  The
:class:`CriticalSectionModel` captures that: when ``n`` threads of a phase
each spend fraction ``f`` of their service inside a shared critical
section, queueing at the lock inflates expected thread time.  We use the
standard serialization bound: the lock is busy ``n * f * s`` seconds of a
phase whose ideal span is ``s``, so per-thread expected delay grows with
``max(0, n * f - 1)`` extra lock occupancies, each ``f * s`` long, spread
across the phase.
"""

from __future__ import annotations

import typing

from repro.threads.graph import ThreadGraph


def add_barrier(
    graph: ThreadGraph,
    before: typing.Sequence[int],
    phase: str = "barrier",
    service_time: float = 0.0,
) -> int:
    """Insert a barrier node after the threads in ``before``.

    Returns:
        The barrier thread id.  Threads of the next phase should declare a
        dependency on it.
    """
    barrier = graph.add_thread(service_time, phase=phase)
    for tid in before:
        graph.add_dependency(tid, barrier)
    return barrier


class CriticalSectionModel:
    """Expected lock-contention inflation for a phase of parallel threads."""

    def __init__(self, critical_fraction: float) -> None:
        if not 0.0 <= critical_fraction < 1.0:
            raise ValueError("critical_fraction must be in [0, 1)")
        self.critical_fraction = critical_fraction

    def inflated_service(self, base_service: float, n_concurrent: int) -> float:
        """Expected service time of one thread among ``n_concurrent`` peers.

        With zero contenders or a zero critical fraction this is the base
        service time.  Otherwise each thread expects to wait, on average,
        for half the other threads' critical sections.
        """
        if n_concurrent < 1:
            raise ValueError("n_concurrent must be at least 1")
        if base_service < 0:
            raise ValueError("base_service must be non-negative")
        others = n_concurrent - 1
        expected_wait = 0.5 * others * self.critical_fraction * base_service
        return base_service + expected_wait
