"""Thread dependence graphs.

A :class:`ThreadGraph` is a DAG whose nodes are user-level threads (with a
service demand in processor-seconds on the base machine) and whose edges
are precedence constraints.  The graph tracks readiness incrementally so
the simulator can ask "which threads became runnable?" in O(out-degree)
per completion.

The module also computes the *parallelism profile* shown in the paper's
Figures 2-4: the percentage of elapsed time an application spends at each
level of physical parallelism when run in isolation on P processors, plus
total execution time and average processor demand.
"""

from __future__ import annotations

import dataclasses
import heapq
import typing


@dataclasses.dataclass
class ThreadNode:
    """One user-level thread.

    Attributes:
        tid: index within the graph.
        service_time: processor-seconds of work at base machine speed.
        successors: thread ids unblocked (partially) by this completion.
        n_predecessors: static in-degree.
        phase: optional label for grouping (e.g. GRAVITY's phase number).
    """

    tid: int
    service_time: float
    successors: typing.List[int] = dataclasses.field(default_factory=list)
    n_predecessors: int = 0
    phase: str = ""
    #: optional tag of the data this thread operates on; threads sharing
    #: a group benefit from running consecutively on one worker (see
    #: :mod:`repro.threads.data_affinity`)
    data_group: typing.Optional[int] = None


@dataclasses.dataclass(frozen=True)
class ParallelismProfile:
    """Isolated-run characteristics (the content of Figures 2-4)."""

    #: fraction of elapsed time at each parallelism level, level -> fraction
    time_at_level: typing.Dict[int, float]
    #: total elapsed execution time (seconds)
    execution_time: float
    #: time-averaged processor demand
    average_demand: float
    #: number of processors the run was profiled on
    n_processors: int


class ThreadGraph:
    """A precedence DAG of user-level threads with readiness tracking."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: typing.List[ThreadNode] = []
        self._blocked_count: typing.List[int] = []
        self._completed: typing.List[bool] = []
        self._n_completed = 0

    def add_thread(
        self,
        service_time: float,
        phase: str = "",
        data_group: typing.Optional[int] = None,
    ) -> int:
        """Add a thread with ``service_time`` processor-seconds of work."""
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        tid = len(self._nodes)
        self._nodes.append(
            ThreadNode(
                tid=tid,
                service_time=service_time,
                phase=phase,
                data_group=data_group,
            )
        )
        self._blocked_count.append(0)
        self._completed.append(False)
        return tid

    def add_dependency(self, before: int, after: int) -> None:
        """Require ``before`` to complete before ``after`` may start."""
        if before == after:
            raise ValueError("a thread cannot depend on itself")
        self._check_tid(before)
        self._check_tid(after)
        self._nodes[before].successors.append(after)
        self._nodes[after].n_predecessors += 1
        self._blocked_count[after] += 1

    def _check_tid(self, tid: int) -> None:
        if not 0 <= tid < len(self._nodes):
            raise IndexError(f"no such thread: {tid}")

    @property
    def n_threads(self) -> int:
        """Total number of threads."""
        return len(self._nodes)

    @property
    def n_completed(self) -> int:
        """Number of threads already completed."""
        return self._n_completed

    @property
    def all_done(self) -> bool:
        """True once every thread has completed."""
        return self._n_completed == len(self._nodes)

    def node(self, tid: int) -> ThreadNode:
        """The node record for thread ``tid``."""
        self._check_tid(tid)
        return self._nodes[tid]

    def service_time(self, tid: int) -> float:
        """Service demand of thread ``tid``."""
        return self.node(tid).service_time

    def total_work(self) -> float:
        """Sum of all service times (processor-seconds)."""
        return sum(node.service_time for node in self._nodes)

    def initially_ready(self) -> typing.List[int]:
        """Threads with no predecessors, in id order."""
        return [n.tid for n in self._nodes if n.n_predecessors == 0]

    def complete(self, tid: int) -> typing.List[int]:
        """Mark ``tid`` complete; returns threads that just became ready.

        Raises:
            RuntimeError: on double completion (a simulator bug).
        """
        self._check_tid(tid)
        if self._completed[tid]:
            raise RuntimeError(f"thread {tid} completed twice")
        self._completed[tid] = True
        self._n_completed += 1
        newly_ready = []
        for succ in self._nodes[tid].successors:
            self._blocked_count[succ] -= 1
            if self._blocked_count[succ] == 0:
                newly_ready.append(succ)
        return newly_ready

    def reset(self) -> None:
        """Return the graph to its initial (nothing completed) state."""
        self._n_completed = 0
        for tid, node in enumerate(self._nodes):
            self._completed[tid] = False
            self._blocked_count[tid] = node.n_predecessors

    def validate_acyclic(self) -> None:
        """Raise ValueError if the dependence graph has a cycle."""
        in_degree = [n.n_predecessors for n in self._nodes]
        queue = [tid for tid, deg in enumerate(in_degree) if deg == 0]
        seen = 0
        while queue:
            tid = queue.pop()
            seen += 1
            for succ in self._nodes[tid].successors:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    queue.append(succ)
        if seen != len(self._nodes):
            raise ValueError(f"dependence graph of {self.name!r} contains a cycle")

    def critical_path(self) -> float:
        """Length (seconds) of the longest dependence chain."""
        earliest_start: typing.List[float] = [0.0] * len(self._nodes)
        order = self._topological_order()
        for tid in order:
            node = self._nodes[tid]
            end = earliest_start[tid] + node.service_time
            for succ in node.successors:
                if end > earliest_start[succ]:
                    earliest_start[succ] = end
        return max(
            (earliest_start[tid] + self._nodes[tid].service_time for tid in order),
            default=0.0,
        )

    def _topological_order(self) -> typing.List[int]:
        in_degree = [n.n_predecessors for n in self._nodes]
        queue = [tid for tid, deg in enumerate(in_degree) if deg == 0]
        order: typing.List[int] = []
        while queue:
            tid = queue.pop()
            order.append(tid)
            for succ in self._nodes[tid].successors:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self._nodes):
            raise ValueError("graph contains a cycle")
        return order

    def parallelism_profile(self, n_processors: int) -> ParallelismProfile:
        """Greedy list-schedule the graph on ``n_processors`` and profile it.

        This is how the paper characterizes each application (Figures 2-4):
        run in isolation on 16 processors and record the percentage of time
        spent at each level of physical parallelism, the total execution
        time, and the average processor demand.
        """
        if n_processors <= 0:
            raise ValueError("need at least one processor")
        self.reset()
        ready = list(self.initially_ready())
        running: typing.List[typing.Tuple[float, int]] = []  # (finish, tid)
        now = 0.0
        last_change = 0.0
        time_at_level: typing.Dict[int, float] = {}
        demand_integral = 0.0

        def record(until: float) -> None:
            nonlocal last_change, demand_integral
            span = until - last_change
            if span > 0:
                level = len(running)
                time_at_level[level] = time_at_level.get(level, 0.0) + span
                demand_integral += level * span
            last_change = until

        while ready or running:
            while ready and len(running) < n_processors:
                tid = ready.pop(0)
                heapq.heappush(running, (now + self._nodes[tid].service_time, tid))
            if not running:
                raise RuntimeError("deadlock: ready empty but graph not done")
            finish = running[0][0]
            # Record the interval up to the next completion at the level
            # that actually ran during it, then drain every thread that
            # finishes at that instant.
            record(finish)
            now = finish
            while running and running[0][0] == now:
                _, tid = heapq.heappop(running)
                ready.extend(self.complete(tid))
        self.reset()
        total = now if now > 0 else 1.0
        fractions = {lvl: t / total for lvl, t in time_at_level.items()}
        return ParallelismProfile(
            time_at_level=fractions,
            execution_time=now,
            average_demand=demand_integral / total,
            n_processors=n_processors,
        )

    def max_parallelism(self) -> int:
        """Maximum number of simultaneously runnable threads (greedy, unbounded)."""
        profile = self.parallelism_profile(self.n_threads or 1)
        return max(profile.time_at_level) if profile.time_at_level else 0

    def __repr__(self) -> str:
        return f"ThreadGraph({self.name!r}, threads={self.n_threads})"
