"""A cancellable binary-heap event queue with deterministic total ordering."""

from __future__ import annotations

import heapq
import typing

from repro.engine.events import DEFAULT_PRIORITY, Event, EventHandle


class EventQueue:
    """Priority queue of :class:`Event` ordered by ``(time, priority, seq)``.

    The queue assigns each pushed event a monotonically increasing sequence
    number so that events scheduled for the same instant and priority fire
    in scheduling order.  Cancelled events are dropped lazily on pop.
    """

    def __init__(self) -> None:
        self._heap: typing.List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: typing.Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at absolute ``time``; returns a cancel handle."""
        if time != time:  # NaN guard: a NaN time would corrupt heap order
            raise ValueError("event time must not be NaN")
        event = Event(time=time, priority=priority, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event)

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> typing.Optional[float]:
        """Time of the earliest live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Inform the queue that one queued event was cancelled externally.

        :class:`EventHandle` cancellation flips the event's flag but cannot
        reach back into the queue; the simulator calls this to keep the live
        count exact.
        """
        self._live -= 1

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()
        self._live = 0
