"""A cancellable binary-heap event queue with deterministic total ordering."""

from __future__ import annotations

import heapq
import typing

from repro.engine.events import DEFAULT_PRIORITY, Event, EventHandle, EventState


class EventQueue:
    """Priority queue of :class:`Event` ordered by ``(time, priority, seq)``.

    The queue assigns each pushed event a monotonically increasing sequence
    number so that events scheduled for the same instant and priority fire
    in scheduling order.  Cancelled events are dropped lazily on pop.

    The queue is the sole owner of both the live-event count and every
    lifecycle transition: ``push`` creates events ``PENDING``, ``pop``
    marks them ``FIRED``, and handle cancellation routes back through
    :meth:`_cancel` so ``len(queue)`` is exact by construction — there is
    no external notification protocol to get wrong.
    """

    def __init__(self) -> None:
        self._heap: typing.List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (pending) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: typing.Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at absolute ``time``; returns a cancel handle."""
        if time != time:  # NaN guard: a NaN time would corrupt heap order
            raise ValueError("event time must not be NaN")
        event = Event(time=time, priority=priority, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self._cancel)

    def pop(self) -> Event:
        """Remove and return the earliest live event, marking it ``FIRED``.

        Raises:
            IndexError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.state = EventState.FIRED
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> typing.Optional[float]:
        """Time of the earliest live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def _cancel(self, event: Event) -> bool:
        """Cancel ``event`` if it is still pending; returns True on success.

        Called only through :class:`EventHandle`.  Fired or already-cancelled
        events are left untouched, so the live count can never underflow.
        """
        if not event.pending:
            return False
        event.state = EventState.CANCELLED
        self._live -= 1
        return True

    def pending_events(self) -> int:
        """Count pending events by walking the heap (O(n); for invariants).

        Always equals ``len(self)``; tests use it to assert the constant-time
        live counter never drifts from ground truth.
        """
        return sum(1 for event in self._heap if event.pending)

    def clear(self) -> None:
        """Drop every queued event, cancelling pending ones.

        Marking survivors ``CANCELLED`` (rather than merely forgetting them)
        keeps any outstanding handles truthful: their events will never fire.
        """
        for event in self._heap:
            if event.pending:
                event.state = EventState.CANCELLED
        self._heap.clear()
        self._live = 0
