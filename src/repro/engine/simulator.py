"""The discrete-event run loop."""

from __future__ import annotations

import typing

from repro.engine.clock import VirtualClock
from repro.engine.events import DEFAULT_PRIORITY, Event, EventHandle
from repro.engine.queue import EventQueue
from repro.engine.rng import RngRegistry

TraceHook = typing.Callable[[float, str], None]


class Simulator:
    """Drives a virtual clock over a cancellable event queue.

    A simulation is built by scheduling callables (``schedule``/``at``) and
    calling :meth:`run`.  Components receive the simulator instance and use
    ``sim.now`` for the current time and ``sim.schedule`` for future work.

    Trace hooks receive ``(time, label)`` for every fired event; they exist
    for tests and debugging and are never required for correctness.
    """

    def __init__(self, rng: typing.Optional[RngRegistry] = None, seed: int = 0) -> None:
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.rng = rng if rng is not None else RngRegistry(seed)
        self._trace_hooks: typing.List[TraceHook] = []
        self._events_fired = 0
        self._running = False
        self._stopped = False
        self._profiler: typing.Optional[object] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def add_trace_hook(self, hook: TraceHook) -> None:
        """Register a ``(time, label)`` observer called for each fired event."""
        self._trace_hooks.append(hook)

    def attach_tracer(self, tracer: typing.Optional[object]) -> None:
        """Wire a :class:`repro.obs.tracer.Tracer` into the run loop.

        Only a tracer that is enabled *and* asked for engine events
        (``capture_engine_events``) installs a hook; otherwise this is a
        no-op, so the run loop's hook list stays empty and the disabled
        path costs nothing per event.
        """
        if (
            tracer is not None
            and getattr(tracer, "enabled", False)
            and getattr(tracer, "capture_engine_events", False)
        ):
            self.add_trace_hook(tracer.engine_hook)  # type: ignore[attr-defined]

    def attach_profiler(self, profiler: typing.Optional[object]) -> None:
        """Wire a :class:`repro.obs.profiling.SpanProfiler` into the loop.

        When an enabled profiler is attached, :meth:`run` wraps the whole
        loop in an ``engine/run`` span and each fired event in an
        ``engine/<label-prefix>`` span (the label up to the first ``:``,
        so ``slice:GRAVITY`` aggregates under ``engine/slice``).  With no
        profiler — or a :class:`~repro.obs.profiling.NullSpanProfiler` —
        the run loop's only extra cost is one check per :meth:`run` call.
        """
        self._profiler = profiler

    def schedule(
        self,
        delay: float,
        action: typing.Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to fire ``delay`` seconds from now.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return self.queue.push(self.now + delay, action, priority=priority, label=label)

    def at(
        self,
        time: float,
        action: typing.Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at absolute virtual ``time`` (>= now).

        Raises:
            ValueError: if ``time`` precedes the current time.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: now={self.now}, time={time}")
        return self.queue.push(time, action, priority=priority, label=label)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a previously scheduled event (idempotent).

        A no-op on events that already fired or were already cancelled —
        the queue owns the lifecycle transition, so a late cancel can never
        corrupt its live accounting.  Returns True if this call cancelled
        the event.
        """
        return handle.cancel()

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def reset(self, seed: typing.Optional[int] = None) -> None:
        """Return the simulator to a pristine state for reuse.

        Cancels everything still queued, rewinds the clock to zero, and
        zeroes the fired-event counter.  Trace hooks are kept (they are
        observers, not simulation state).  Pass ``seed`` to also replace
        the RNG registry; otherwise the existing registry is kept as-is.

        Raises:
            RuntimeError: if called from within a running event.
        """
        if self._running:
            raise RuntimeError("cannot reset a running simulator")
        self.queue.clear()
        self.clock.reset()
        self._events_fired = 0
        self._stopped = False
        if seed is not None:
            self.rng = RngRegistry(seed)

    def run(self, until: typing.Optional[float] = None, max_events: typing.Optional[int] = None) -> float:
        """Execute events in order until exhaustion, ``until``, or ``stop()``.

        Args:
            until: if given, stop once the next event would fire after this
                time; the clock is advanced to ``until`` in that case.
            max_events: optional safety valve for tests.

        Returns:
            The virtual time at which the run loop stopped.

        Raises:
            RuntimeError: if called re-entrantly from within an event.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not re-entrant")
        self._running = True
        self._stopped = False
        fired_this_run = 0
        limited = False
        prof = self._profiler
        profiling = prof is not None and prof.enabled  # type: ignore[attr-defined]
        if profiling:
            prof.push("engine/run")  # type: ignore[attr-defined]
        try:
            while self.queue and not self._stopped:
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.clock.advance_to(until)
                    return self.now
                event = self.queue.pop()
                self.clock.advance_to(event.time)
                self._events_fired += 1
                fired_this_run += 1
                for hook in self._trace_hooks:
                    hook(event.time, event.label)
                if profiling:
                    # Aggregate per label family: "slice:GRAVITY" and
                    # "slice:MATRIX" both land in "engine/slice".
                    prof.push("engine/" + (event.label.split(":", 1)[0] or "event"))  # type: ignore[attr-defined]
                    try:
                        event.action()
                    finally:
                        prof.pop()  # type: ignore[attr-defined]
                else:
                    event.action()
                if max_events is not None and fired_this_run >= max_events:
                    limited = True
                    break
            # Advance to `until` only when the queue truly has nothing left
            # before it.  After a max_events or stop() break there may still
            # be events at t <= until; jumping the clock over them would make
            # the next run() raise "clock cannot run backwards".
            if until is not None and not self._stopped and not limited and self.now < until:
                self.clock.advance_to(until)
            return self.now
        finally:
            if profiling:
                prof.pop()  # type: ignore[attr-defined]
            self._running = False

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6f}, queued={len(self.queue)}, "
            f"fired={self._events_fired})"
        )
