"""Discrete-event simulation core used by every experiment in this package.

The engine is deliberately small and dependency free: a virtual clock, a
cancellable binary-heap event queue, a run loop with trace hooks, seeded
per-component random streams, and the sample statistics (mean, confidence
interval, replication driving) that the paper's methodology requires
("enough replications of each experiment so that the 95% confidence
interval is within 1% of the point estimate of the mean").
"""

from repro.engine.clock import VirtualClock
from repro.engine.events import Event, EventHandle
from repro.engine.queue import EventQueue
from repro.engine.rng import RngRegistry
from repro.engine.simulator import Simulator
from repro.engine.stats import (
    ConfidenceInterval,
    ReplicationDriver,
    SampleStats,
    mean_confidence_interval,
)

__all__ = [
    "ConfidenceInterval",
    "Event",
    "EventHandle",
    "EventQueue",
    "ReplicationDriver",
    "RngRegistry",
    "SampleStats",
    "Simulator",
    "VirtualClock",
    "mean_confidence_interval",
]
