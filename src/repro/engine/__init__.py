"""Discrete-event simulation core used by every experiment in this package.

The engine is deliberately small and dependency free: a virtual clock, a
cancellable binary-heap event queue with an explicit event lifecycle
(``PENDING → FIRED | CANCELLED``), a run loop with trace hooks, seeded
per-component random streams, the sample statistics (mean, confidence
interval, replication driving) that the paper's methodology requires
("enough replications of each experiment so that the 95% confidence
interval is within 1% of the point estimate of the mean"), and a
process-pool replication executor that parallelizes that stopping rule
without changing its answers.
"""

from repro.engine.clock import VirtualClock
from repro.engine.events import Event, EventHandle, EventState
from repro.engine.parallel import (
    BatchedConvergence,
    ConvergenceCriterion,
    map_replications,
    run_replications,
)
from repro.engine.queue import EventQueue
from repro.engine.rng import RngRegistry
from repro.engine.simulator import Simulator
from repro.engine.stats import (
    ConfidenceInterval,
    ReplicationDriver,
    SampleStats,
    mean_confidence_interval,
)

__all__ = [
    "BatchedConvergence",
    "ConfidenceInterval",
    "ConvergenceCriterion",
    "Event",
    "EventHandle",
    "EventQueue",
    "EventState",
    "ReplicationDriver",
    "RngRegistry",
    "SampleStats",
    "Simulator",
    "VirtualClock",
    "map_replications",
    "mean_confidence_interval",
    "run_replications",
]
