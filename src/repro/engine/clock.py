"""Virtual simulation clock."""

from __future__ import annotations


class VirtualClock:
    """Monotonic virtual clock measured in seconds.

    The clock only advances through :meth:`advance_to`; the simulator is the
    sole caller.  Attempting to move backwards is a programming error and
    raises immediately rather than silently corrupting causality.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            ValueError: if ``time`` precedes the current time.
        """
        if time < self._now:
            raise ValueError(
                f"clock cannot run backwards: now={self._now!r}, requested={time!r}"
            )
        self._now = float(time)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used between replications)."""
        self._now = float(start)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.9f})"
