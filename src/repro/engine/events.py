"""Event records for the discrete-event simulator.

Events are ordered by ``(time, priority, seq)``.  ``priority`` breaks ties
between events scheduled for the same instant (smaller runs first), and
``seq`` — a monotonically increasing sequence number assigned by the queue —
makes the ordering total and therefore deterministic: two runs with the same
seed schedule and pop events in exactly the same order.
"""

from __future__ import annotations

import dataclasses
import typing


#: Default tie-break priority for events that do not care about intra-instant
#: ordering.  Policies that must observe a consistent state (e.g. the
#: allocator reacting *after* all thread completions at an instant) use
#: larger values.
DEFAULT_PRIORITY = 100


@dataclasses.dataclass
class Event:
    """A single scheduled occurrence.

    Attributes:
        time: absolute virtual time (seconds) at which the event fires.
        priority: intra-instant ordering; lower fires first.
        seq: queue-assigned sequence number; makes ordering total.
        action: zero-argument callable invoked when the event fires.
        label: human-readable tag used by trace hooks and tests.
        cancelled: set by :meth:`EventHandle.cancel`; cancelled events are
            skipped (lazily) when popped.
    """

    time: float
    priority: int
    seq: int
    action: typing.Callable[[], None]
    label: str = ""
    cancelled: bool = False

    def sort_key(self) -> typing.Tuple[float, int, int]:
        """Total ordering key used by the event queue."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()


class EventHandle:
    """Opaque handle returned when scheduling, usable to cancel the event.

    Cancellation is *lazy*: the event stays in the heap but is skipped when
    it reaches the front.  This keeps cancellation O(1) and is the standard
    trick for binary-heap event queues.
    """

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute virtual time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        """The label the event was scheduled with."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self._event.time:.6f}, {self._event.label!r}, {state})"
