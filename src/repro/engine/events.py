"""Event records for the discrete-event simulator.

Events are ordered by ``(time, priority, seq)``.  ``priority`` breaks ties
between events scheduled for the same instant (smaller runs first), and
``seq`` — a monotonically increasing sequence number assigned by the queue —
makes the ordering total and therefore deterministic: two runs with the same
seed schedule and pop events in exactly the same order.

Every event moves through an explicit lifecycle::

    PENDING ──pop──▶ FIRED
       │
       └──cancel──▶ CANCELLED

The transitions are one-way: a fired event can never become cancelled and
vice versa, so late ``cancel()`` calls on handles whose event already ran
are harmless no-ops instead of corrupting the queue's live accounting.
"""

from __future__ import annotations

import dataclasses
import enum
import typing


#: Default tie-break priority for events that do not care about intra-instant
#: ordering.  Policies that must observe a consistent state (e.g. the
#: allocator reacting *after* all thread completions at an instant) use
#: larger values.
DEFAULT_PRIORITY = 100


class EventState(enum.Enum):
    """Lifecycle state of a scheduled event."""

    PENDING = "pending"
    FIRED = "fired"
    CANCELLED = "cancelled"


@dataclasses.dataclass
class Event:
    """A single scheduled occurrence.

    Attributes:
        time: absolute virtual time (seconds) at which the event fires.
        priority: intra-instant ordering; lower fires first.
        seq: queue-assigned sequence number; makes ordering total.
        action: zero-argument callable invoked when the event fires.
        label: human-readable tag used by trace hooks and tests.
        state: lifecycle state; only the owning :class:`~repro.engine.queue.
            EventQueue` transitions it (``PENDING → FIRED`` on pop,
            ``PENDING → CANCELLED`` on cancellation).
    """

    time: float
    priority: int
    seq: int
    action: typing.Callable[[], None]
    label: str = ""
    state: EventState = EventState.PENDING

    @property
    def pending(self) -> bool:
        """True while the event is queued and may still fire."""
        return self.state is EventState.PENDING

    @property
    def fired(self) -> bool:
        """True once the event has been popped for execution."""
        return self.state is EventState.FIRED

    @property
    def cancelled(self) -> bool:
        """True once the event has been cancelled (and will never fire)."""
        return self.state is EventState.CANCELLED

    def sort_key(self) -> typing.Tuple[float, int, int]:
        """Total ordering key used by the event queue."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()


class EventHandle:
    """Opaque handle returned when scheduling, usable to cancel the event.

    Cancellation is *lazy*: the event stays in the heap but is skipped when
    it reaches the front.  This keeps cancellation O(1) and is the standard
    trick for binary-heap event queues.  The handle routes cancellation
    through the queue that owns the event, so the queue's live count stays
    exact without callers having to notify it separately.
    """

    def __init__(self, event: Event, canceller: typing.Callable[[Event], bool]) -> None:
        self._event = event
        self._canceller = canceller

    @property
    def time(self) -> float:
        """Absolute virtual time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        """The label the event was scheduled with."""
        return self._event.label

    @property
    def state(self) -> EventState:
        """Current lifecycle state of the underlying event."""
        return self._event.state

    @property
    def pending(self) -> bool:
        """True while the event is queued and may still fire."""
        return self._event.pending

    @property
    def fired(self) -> bool:
        """True once the event has been executed."""
        return self._event.fired

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` succeeded before the event fired."""
        return self._event.cancelled

    def cancel(self) -> bool:
        """Prevent the event from firing, if it has not fired already.

        Idempotent and safe in every state:

        * ``PENDING`` — transitions to ``CANCELLED``; returns True.
        * ``CANCELLED`` — no-op; returns False.
        * ``FIRED`` — no-op; returns False.  (Before the lifecycle state
          machine, cancelling a fired event silently corrupted the queue's
          live count.)
        """
        return self._canceller(self._event)

    def __repr__(self) -> str:
        return (
            f"EventHandle(t={self._event.time:.6f}, {self._event.label!r}, "
            f"{self._event.state.value})"
        )
