"""Parallel replication execution for the experiment harness.

The paper's stopping rule ("enough replications of each experiment so that
the 95% confidence interval is within 1% of the point estimate of the
mean") is inherently sequential: whether replication ``r+1`` runs depends
on the statistics of replications ``0..r``.  This module parallelizes it
*without changing its answers* by separating execution order from commit
order:

* up to ``workers`` replications run concurrently in a process pool, each
  seeded deterministically from its replication index;
* results are *committed* strictly in replication order, and the stopping
  rule is evaluated after every commit — exactly the prefixes the serial
  loop would have examined;
* once some prefix satisfies the rule, later replications (which a serial
  run would never have executed) are discarded.

Consequently ``workers=N`` produces bit-identical committed results to
``workers=1`` for the same seeds; parallelism costs at most ``workers-1``
replications of wasted (discarded) work at the stopping point.

Replication callables must be picklable (module-level functions or
``functools.partial`` over them) when ``workers > 1``, since they cross a
process boundary.
"""

from __future__ import annotations

import concurrent.futures
import functools
import typing

from repro.engine.stats import ConfidenceInterval, SampleStats

T = typing.TypeVar("T")
U = typing.TypeVar("U")

#: Default absolute half-width below which a metric counts as converged
#: regardless of its relative half-width.  This is the escape hatch for
#: zero-mean metrics, whose relative half-width is infinite: without it a
#: single all-but-constant metric centred on 0 forces every experiment to
#: burn ``max_replications``.
DEFAULT_TARGET_ABSOLUTE = 1e-9


def resolve_workers(workers: typing.Optional[int]) -> int:
    """Normalize a ``workers`` argument; ``None`` means serial (1).

    Raises:
        ValueError: if ``workers`` is given and not a positive integer.
    """
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError(f"workers must be a positive integer, got {workers!r}")
    return int(workers)


class ConvergenceCriterion:
    """The paper's 1%-relative stopping rule with an absolute escape hatch.

    A confidence interval converges when its half-width is within
    ``target_relative`` of the mean *or* at most ``target_absolute`` in
    absolute terms.  The absolute tolerance is what lets zero-mean metrics
    (infinite relative half-width) terminate.
    """

    def __init__(
        self,
        target_relative: float = 0.01,
        target_absolute: float = DEFAULT_TARGET_ABSOLUTE,
    ) -> None:
        if target_relative < 0 or target_absolute < 0:
            raise ValueError("convergence tolerances must be non-negative")
        self.target_relative = target_relative
        self.target_absolute = target_absolute

    def interval_converged(self, ci: ConfidenceInterval) -> bool:
        """True when ``ci`` satisfies either tolerance."""
        if ci.half_width <= self.target_absolute:
            return True
        return ci.relative_half_width() <= self.target_relative


class BatchedConvergence(typing.Generic[T]):
    """Incremental stopping-rule check over replication results.

    Parallel execution delivers results in waves; this accumulator folds
    each newly committed replication into per-metric :class:`SampleStats`
    via the Chan et al. pairwise merge (the same reduction that combines
    partial statistics across workers) and answers "has every tracked
    metric converged?" for each committed prefix.  It is shared by the
    serial and parallel paths so both stop at the identical replication.
    """

    def __init__(
        self,
        extract: typing.Callable[[T], typing.Mapping[str, float]],
        criterion: ConvergenceCriterion,
    ) -> None:
        self._extract = extract
        self._criterion = criterion
        self._samples: typing.Dict[str, SampleStats] = {}
        self._committed = 0

    @property
    def samples(self) -> typing.Dict[str, SampleStats]:
        """Per-metric statistics over every committed replication."""
        return self._samples

    def __call__(self, committed: typing.Sequence[T]) -> bool:
        """Fold any new results in ``committed`` and test convergence."""
        for result in committed[self._committed:]:
            part_values = self._extract(result)
            for name, value in part_values.items():
                part = SampleStats()
                part.add(float(value))
                self._samples.setdefault(name, SampleStats()).merge(part)
            self._committed += 1
        if not self._samples:
            return False
        return all(
            self._criterion.interval_converged(stats.confidence_interval())
            for stats in self._samples.values()
        )


def run_replications(
    run_once: typing.Callable[[int], T],
    min_replications: int,
    max_replications: int,
    converged: typing.Callable[[typing.Sequence[T]], bool],
    workers: typing.Optional[int] = None,
    on_commit: typing.Optional[typing.Callable[[int, T], None]] = None,
) -> typing.List[T]:
    """Run ``run_once(0..)`` until the serial stopping rule holds.

    ``converged`` is called with the committed prefix after every commit
    once ``min_replications`` have accumulated; the first prefix it accepts
    is returned.  With ``workers > 1``, replications execute concurrently
    in a :class:`~concurrent.futures.ProcessPoolExecutor` but are committed
    in index order, so the returned list is identical to a serial run.

    ``on_commit(index, result)`` fires after each commit, in commit (==
    replication) order whatever the worker count — the progress signal
    the telemetry layer surfaces.  It observes results; it must not
    mutate them.
    """
    if min_replications < 1:
        raise ValueError("min_replications must be positive")
    if max_replications < min_replications:
        raise ValueError("max_replications must be >= min_replications")
    n_workers = resolve_workers(workers)
    if n_workers == 1:
        committed: typing.List[T] = []
        for replication in range(max_replications):
            committed.append(run_once(replication))
            if on_commit is not None:
                on_commit(replication, committed[-1])
            if len(committed) >= min_replications and converged(committed):
                break
        return committed

    committed = []
    with concurrent.futures.ProcessPoolExecutor(max_workers=n_workers) as pool:
        in_flight: typing.Dict[int, "concurrent.futures.Future[T]"] = {}
        next_index = 0
        try:
            while True:
                while next_index < max_replications and len(in_flight) < n_workers:
                    in_flight[next_index] = pool.submit(run_once, next_index)
                    next_index += 1
                if not in_flight:
                    break
                # Block on the lowest outstanding index: commits must happen
                # in replication order for the stopping rule to see the same
                # prefixes a serial run would.
                lowest = min(in_flight)
                committed.append(in_flight.pop(lowest).result())
                if on_commit is not None:
                    on_commit(lowest, committed[-1])
                if len(committed) >= min_replications and converged(committed):
                    break
        finally:
            for future in in_flight.values():
                future.cancel()
    return committed


def map_replications(
    run_once: typing.Callable[[int], T],
    count: int,
    workers: typing.Optional[int] = None,
    on_commit: typing.Optional[typing.Callable[[int, T], None]] = None,
) -> typing.List[T]:
    """Run a *fixed* number of replications, optionally in parallel.

    Unlike :func:`run_replications` there is no stopping rule, so this is a
    plain deterministic fan-out: result ``r`` is always ``run_once(r)``,
    whatever the worker count.  ``on_commit(index, result)`` fires per
    result in index order (see :func:`run_replications`).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    n_workers = resolve_workers(workers)
    if n_workers == 1 or count <= 1:
        results: typing.List[T] = []
        for replication in range(count):
            results.append(run_once(replication))
            if on_commit is not None:
                on_commit(replication, results[-1])
        return results
    with concurrent.futures.ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(run_once, replication) for replication in range(count)]
        results = []
        for replication, future in enumerate(futures):
            results.append(future.result())
            if on_commit is not None:
                on_commit(replication, results[-1])
        return results


def _apply_item(
    fn: typing.Callable[[U], T], items: typing.Tuple[U, ...], index: int
) -> T:
    """Picklable bridge from an item index to ``fn(items[index])``."""
    return fn(items[index])


def map_items(
    fn: typing.Callable[[U], T],
    items: typing.Sequence[U],
    workers: typing.Optional[int] = None,
    on_commit: typing.Optional[typing.Callable[[int, T], None]] = None,
) -> typing.List[T]:
    """Map ``fn`` over arbitrary items with ordered commits.

    The item-shaped face of :func:`map_replications`: result ``i`` is
    always ``fn(items[i])`` and ``on_commit`` fires in item order for
    any worker count.  With ``workers > 1`` both ``fn`` and the items
    cross a process boundary, so both must pickle.
    """
    item_tuple = tuple(items)
    return map_replications(
        functools.partial(_apply_item, fn, item_tuple),
        len(item_tuple),
        workers=workers,
        on_commit=on_commit,
    )
