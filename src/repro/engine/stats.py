"""Sample statistics and the replication protocol the paper uses.

Section 6: "The average values shown represent enough replications of each
experiment so that the 95% confidence interval is within 1% of the point
estimate of the mean."  :class:`ReplicationDriver` implements exactly that
stopping rule (with a hard cap so degenerate cases terminate).
"""

from __future__ import annotations

import dataclasses
import math
import typing

#: Two-sided Student-t critical values at 95% confidence, indexed by degrees
#: of freedom.  Entries beyond the table fall back to the normal quantile.
_T_TABLE_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}
_Z_95 = 1.960


def t_critical_95(dof: int) -> float:
    """Two-sided 95% Student-t critical value for ``dof`` degrees of freedom."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if dof in _T_TABLE_95:
        return _T_TABLE_95[dof]
    lower = max(k for k in _T_TABLE_95 if k <= dof) if dof > 1 else 1
    if dof > 120:
        return _Z_95
    return _T_TABLE_95[lower]


@dataclasses.dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float = 0.95
    n: int = 0

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean == 0:
            return math.inf if self.half_width > 0 else 0.0
        return abs(self.half_width / self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


class SampleStats:
    """Streaming mean/variance via Welford's algorithm."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: typing.Iterable[float]) -> None:
        """Incorporate several observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "SampleStats") -> None:
        """Fold ``other``'s observations into this accumulator in O(1).

        Uses the pairwise update of Chan, Golub & LeVeque (1979), the
        standard numerically-stable way to combine two Welford states, so
        partial statistics computed in parallel workers can be reduced
        without replaying the raw samples.
        """
        if other._n == 0:
            return
        if self._n == 0:
            self._n = other._n
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        n_a, n_b = self._n, other._n
        n = n_a + n_b
        delta = other._mean - self._mean
        self._mean += delta * n_b / n
        self._m2 += other._m2 + delta * delta * n_a * n_b / n
        self._n = n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @classmethod
    def merged(cls, parts: typing.Iterable["SampleStats"]) -> "SampleStats":
        """Combine several partial accumulators into a fresh one."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    @property
    def n(self) -> int:
        """Number of observations."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean

    @property
    def minimum(self) -> float:
        """Smallest observation (inf when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (-inf when empty)."""
        return self._max

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 for n < 2)."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def confidence_interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        """95% (only) Student-t confidence interval for the mean."""
        if confidence != 0.95:
            raise ValueError("only 95% confidence is tabulated")
        if self._n < 2:
            return ConfidenceInterval(self._mean, math.inf, n=self._n)
        half = t_critical_95(self._n - 1) * self.stddev / math.sqrt(self._n)
        return ConfidenceInterval(self._mean, half, n=self._n)


def mean_confidence_interval(values: typing.Sequence[float]) -> ConfidenceInterval:
    """Convenience: 95% CI for the mean of ``values``."""
    stats = SampleStats()
    stats.extend(values)
    return stats.confidence_interval()


class ReplicationDriver:
    """Runs replications of an experiment until the paper's stopping rule.

    The rule: stop when the 95% confidence half-width of every tracked
    metric's mean is within ``target_relative`` (default 1%) of the mean —
    or within ``target_absolute`` in absolute terms, the escape hatch for
    zero-mean metrics whose relative half-width is infinite — or
    ``max_replications`` is reached.  A ``min_replications`` floor avoids
    stopping on the meaningless CI of one or two samples.

    With ``workers > 1``, replications execute concurrently in a process
    pool but the stopping rule is applied to the identical replication
    prefixes a serial run examines, so the returned intervals do not depend
    on the worker count.  ``run_once`` must then be picklable (a
    module-level function or a ``functools.partial`` over one).
    """

    def __init__(
        self,
        run_once: typing.Callable[[int], typing.Mapping[str, float]],
        target_relative: float = 0.01,
        min_replications: int = 3,
        max_replications: int = 50,
        target_absolute: typing.Optional[float] = None,
        workers: typing.Optional[int] = None,
    ) -> None:
        from repro.engine.parallel import (
            DEFAULT_TARGET_ABSOLUTE,
            ConvergenceCriterion,
            resolve_workers,
        )

        if min_replications < 2:
            raise ValueError("need at least 2 replications to form an interval")
        if max_replications < min_replications:
            raise ValueError("max_replications must be >= min_replications")
        self._run_once = run_once
        self._criterion = ConvergenceCriterion(
            target_relative,
            DEFAULT_TARGET_ABSOLUTE if target_absolute is None else target_absolute,
        )
        self._min = min_replications
        self._max = max_replications
        self._workers = resolve_workers(workers)

    def run(self) -> typing.Dict[str, ConfidenceInterval]:
        """Execute replications; returns the CI per metric name."""
        from repro.engine.parallel import BatchedConvergence, run_replications

        check: BatchedConvergence = BatchedConvergence(lambda m: m, self._criterion)
        run_replications(
            self._run_once, self._min, self._max, check, workers=self._workers
        )
        return {
            name: stats.confidence_interval() for name, stats in check.samples.items()
        }
