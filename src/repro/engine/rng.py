"""Seeded per-component random streams.

Every stochastic component of the simulation (each application's reference
generator, each job's thread service times, the allocator's tie-breaks)
draws from its own named stream derived deterministically from the master
seed.  This gives two properties the experiments rely on:

* reproducibility — the same master seed replays the identical run;
* isolation — adding draws to one component does not perturb another
  component's sequence, so policy comparisons under a common seed use
  common random numbers for the workload.
"""

from __future__ import annotations

import hashlib
import random
import typing


class RngRegistry:
    """Factory of named, independently-seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: typing.Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this registry was constructed with."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a SHA-256 digest of the master seed and the
        name, so distinct names give statistically independent streams and
        the mapping is stable across processes and Python versions
        (``hash()`` is not, because of string-hash randomization).
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self._master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def spawn(self, salt: str) -> "RngRegistry":
        """Derive a child registry (used per replication).

        The child's master seed mixes the parent seed with ``salt`` so that
        replications are independent but reproducible.
        """
        digest = hashlib.sha256(
            f"{self._master_seed}/{salt}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
