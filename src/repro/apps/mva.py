"""The MVA application: wavefront dynamic programming.

Figure 2's application is a Mean Value Analysis computation — a dynamic
programming problem over a (customers x stations) grid in which cell
``(n, k)`` depends on ``(n-1, k)`` and ``(n, k-1)``.  The anti-diagonal
wavefront gives parallelism that first slowly grows (1, 2, ..., min(N, K))
and then slowly shrinks back to 1 — the paper calls this representative of
many "wave front" computations.

The real computation this models is implemented in
:mod:`repro.kernels.mva_solver`; this module encodes only its scheduling
shape and cache behaviour.
"""

from __future__ import annotations

import dataclasses
import random

from repro.apps.base import AppSpec
from repro.apps.reference import ReferenceSpec
from repro.threads.graph import ThreadGraph


@dataclasses.dataclass(frozen=True)
class MvaParams:
    """Structural knobs of the MVA workload."""

    customers: int = 24
    stations: int = 24
    mean_service_s: float = 0.16
    service_jitter: float = 0.2


class MvaSpec(AppSpec):
    """MVA: moderate working set, wavefront parallelism profile."""

    name = "MVA"
    description = (
        "Dynamic-programming wavefront (Mean Value Analysis); parallelism "
        "slowly grows to min(N, K) and then slowly shrinks"
    )

    #: Calibrated against Table 1's MVA row: a ~1100-line persistent hot
    #: set (the MVA recurrence table) re-touched constantly, plus a slow
    #: (~5k lines/s) sequential scan through the 3500-line data.
    _REFERENCE = ReferenceSpec(
        data_blocks=3500,
        p_reuse=0.9875,
        refs_per_touch=20,
        reuse_window=1100,
        cold_pattern="sequential",
    )

    def __init__(self, params: MvaParams = MvaParams()) -> None:
        if params.customers < 1 or params.stations < 1:
            raise ValueError("grid must be at least 1x1")
        if not 0.0 <= params.service_jitter < 1.0:
            raise ValueError("service_jitter must be in [0, 1)")
        self.params = params

    @property
    def reference(self) -> ReferenceSpec:
        return self._REFERENCE

    def max_parallelism_hint(self) -> int:
        return min(self.params.customers, self.params.stations)

    def build_graph(self, rng: random.Random) -> ThreadGraph:
        """The (customers x stations) wavefront grid."""
        p = self.params
        graph = ThreadGraph(name=self.name)
        ids = [[0] * p.stations for _ in range(p.customers)]
        for n in range(p.customers):
            for k in range(p.stations):
                jitter = 1.0 + p.service_jitter * (2.0 * rng.random() - 1.0)
                service = p.mean_service_s * jitter
                # Column k's cells share the station-k data (data group).
                ids[n][k] = graph.add_thread(
                    service, phase=f"wave{n + k}", data_group=k
                )
        for n in range(p.customers):
            for k in range(p.stations):
                if n > 0:
                    graph.add_dependency(ids[n - 1][k], ids[n][k])
                if k > 0:
                    graph.add_dependency(ids[n][k - 1], ids[n][k])
        return graph


#: Default instance used by the paper's workload mixes.
MVA = MvaSpec()
