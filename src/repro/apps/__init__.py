"""The paper's three applications: MVA, MATRIX, and GRAVITY.

Each application is described by an :class:`~repro.apps.base.AppSpec`
providing (a) a builder for its thread dependence graph (the structures
pictured in Figures 2-4), (b) a memory reference model driving the
stateful cache simulator in the Section 4 penalty experiments, and (c) the
derived footprint curve used by the scheduling simulations.
"""

from repro.apps.base import AppSpec
from repro.apps.gravity import GRAVITY, GravitySpec
from repro.apps.matrix import MATRIX, MatrixSpec
from repro.apps.mva import MVA, MvaSpec
from repro.apps.reference import ReferenceGenerator, ReferenceSpec

APPLICATIONS = {spec.name: spec for spec in (MVA, MATRIX, GRAVITY)}

__all__ = [
    "APPLICATIONS",
    "AppSpec",
    "GRAVITY",
    "GravitySpec",
    "MATRIX",
    "MatrixSpec",
    "MVA",
    "MvaSpec",
    "ReferenceGenerator",
    "ReferenceSpec",
]
