"""The GRAVITY application: Barnes-Hut N-body simulation.

Figure 4's application implements the Barnes & Hut clustering algorithm
for gravitational interaction.  Each simulated time step repeats five
phases — the first sequential (tree build), the remaining four parallel —
with a barrier synchronization between the parallel phases at which the
parallelism briefly drops to one.  Thread execution times differ across
phases, and within some phases depend on synchronization delays for
critical sections.

The real quadtree N-body computation is implemented in
:mod:`repro.kernels.barnes_hut`.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.apps.base import AppSpec
from repro.apps.reference import ReferenceSpec
from repro.threads.graph import ThreadGraph
from repro.threads.sync import CriticalSectionModel, add_barrier


@dataclasses.dataclass(frozen=True)
class GravityPhase:
    """One parallel phase of a time step."""

    name: str
    n_threads: int
    mean_service_s: float
    service_jitter: float = 0.3
    #: fraction of thread time inside a shared critical section
    critical_fraction: float = 0.0


@dataclasses.dataclass(frozen=True)
class GravityParams:
    """Structural knobs of the GRAVITY workload."""

    n_timesteps: int = 50
    #: the Barnes-Hut tree build: a substantial sequential fraction
    sequential_service_s: float = 0.20
    #: fine-grained parallel phases — "this encourages the use of many
    #: threads, which are supported by a smaller, fixed number of workers"
    phases: typing.Tuple[GravityPhase, ...] = (
        GravityPhase("partition", n_threads=96, mean_service_s=0.020),
        GravityPhase("force", n_threads=128, mean_service_s=0.015),
        GravityPhase("update", n_threads=128, mean_service_s=0.015, critical_fraction=0.008),
        GravityPhase("collect", n_threads=64, mean_service_s=0.010),
    )


class GravitySpec(AppSpec):
    """GRAVITY: large slowly-built footprint, bursty barrier-phase parallelism."""

    name = "GRAVITY"
    description = (
        "Barnes-Hut N-body; 5 phases per time step (1 sequential + 4 "
        "parallel) with barriers between, variable thread times"
    )

    #: Calibrated against Table 1's GRAVITY row: a tiny hot set (the
    #: current tree path) with a fast (~17k lines/s) walk over the body
    #: and tree data — the smallest penalty at Q = 25 ms (little touched
    #: yet) but the largest at Q = 400 ms (nearly everything touched).
    _REFERENCE = ReferenceSpec(
        data_blocks=3250,
        p_reuse=0.966,
        refs_per_touch=16,
        reuse_window=64,
        cold_pattern="sequential",
    )

    def __init__(self, params: GravityParams = GravityParams()) -> None:
        if params.n_timesteps < 1:
            raise ValueError("need at least one time step")
        if not params.phases:
            raise ValueError("need at least one parallel phase")
        self.params = params

    @property
    def reference(self) -> ReferenceSpec:
        return self._REFERENCE

    def max_parallelism_hint(self) -> int:
        return max(phase.n_threads for phase in self.params.phases)

    def build_graph(self, rng: random.Random) -> ThreadGraph:
        """Chain of time steps, each: sequential -> 4 barrier-separated phases."""
        p = self.params
        graph = ThreadGraph(name=self.name)
        previous_join: typing.Optional[int] = None
        for step in range(p.n_timesteps):
            sequential = graph.add_thread(
                p.sequential_service_s, phase=f"step{step}/treebuild"
            )
            if previous_join is not None:
                graph.add_dependency(previous_join, sequential)
            fan_in = sequential
            for phase in p.phases:
                contention = CriticalSectionModel(phase.critical_fraction)
                thread_ids = []
                for body_partition in range(phase.n_threads):
                    jitter = 1.0 + phase.service_jitter * (2.0 * rng.random() - 1.0)
                    service = contention.inflated_service(
                        phase.mean_service_s * jitter, phase.n_threads
                    )
                    # Thread i of every phase and time step works on body
                    # partition i: the data-affinity tag the user-level
                    # thread layer can exploit (Section 9 future work).
                    tid = graph.add_thread(
                        service,
                        phase=f"step{step}/{phase.name}",
                        data_group=body_partition,
                    )
                    graph.add_dependency(fan_in, tid)
                    thread_ids.append(tid)
                fan_in = add_barrier(
                    graph, thread_ids, phase=f"step{step}/{phase.name}-barrier"
                )
            previous_join = fan_in
        return graph


#: Default instance used by the paper's workload mixes.
GRAVITY = GravitySpec()
