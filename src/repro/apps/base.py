"""Common shape of an application description."""

from __future__ import annotations

import abc
import random

import typing

from repro.machine.footprint import FootprintCurve
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.apps.reference import ReferenceSpec
from repro.threads.data_affinity import DataAffinitySpec
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job


class AppSpec(abc.ABC):
    """Everything the experiments need to know about one application.

    Concrete subclasses provide the thread dependence graph builder and
    the memory reference model.  The footprint curve used by the
    scheduling simulations is *derived* from the reference model, so the
    two cache representations cannot drift apart.
    """

    #: short name used in tables ("MVA", "MATRIX", "GRAVITY")
    name: str = ""
    #: one-line description for documentation output
    description: str = ""

    @property
    @abc.abstractmethod
    def reference(self) -> ReferenceSpec:
        """The application's memory reference model."""

    @abc.abstractmethod
    def build_graph(self, rng: random.Random) -> ThreadGraph:
        """Construct a fresh thread dependence graph instance.

        Thread service times may be jittered through ``rng`` so that
        replications see statistically-varying workloads.
        """

    def footprint_curve(self, machine: MachineSpec = SEQUENT_SYMMETRY) -> FootprintCurve:
        """Working-set growth law on ``machine`` (derived from the reference model)."""
        return self.reference.footprint_curve(machine)

    def make_job(
        self,
        rng: random.Random,
        instance: int = 0,
        n_processors: int = 16,
        machine: MachineSpec = SEQUENT_SYMMETRY,
        data_affinity: typing.Optional[DataAffinitySpec] = None,
    ) -> Job:
        """Instantiate a schedulable job running this application.

        The worker pool is sized to ``min(graph max parallelism,
        n_processors)`` — the paper's structure of "many user-level threads
        supported by a smaller, fixed number of workers".
        """
        graph = self.build_graph(rng)
        graph.validate_acyclic()
        max_workers = min(self.max_parallelism_hint(), n_processors)
        name = self.name if instance == 0 else f"{self.name}-{instance}"
        return Job(
            name=name,
            graph=graph,
            curve=self.footprint_curve(machine),
            max_workers=max(1, max_workers),
            data_affinity=data_affinity,
        )

    @abc.abstractmethod
    def max_parallelism_hint(self) -> int:
        """Upper bound on simultaneously runnable threads (sizes worker pools)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
