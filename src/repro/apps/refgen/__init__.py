"""Pluggable engines for the reference-stream generator.

The other half of the Section 4 hot path.  PR 6 put the cache's set/LRU
mechanics behind :mod:`repro.machine.backends`; this package gives the
:class:`~repro.apps.reference.ReferenceGenerator` the same treatment,
because after the cache was vectorized the generator's per-touch Python
loop dominated the full-fidelity experiments:

* ``scalar`` (:mod:`repro.apps.refgen.scalar`) — the ring-buffer touch
  loop, verbatim.  This engine is the **executable reference
  specification**: its stream *defines* what every other engine must
  reproduce bit-for-bit (blocks emitted, random words consumed, final
  hot-set state).  No third-party imports; always works.
* ``numpy`` (:mod:`repro.apps.refgen.numpy_backend`) — a vectorized
  engine that mirrors the generator's Mersenne Twister into numpy,
  draws the raw word stream in bulk, and *parses* it into touches with
  array passes (speculative sync-block chains stitched into the true
  orbit).  Emits the identical stream for any chunking and leaves the
  Python ``random.Random`` in the identical state.

Selection reuses the cache-backend machinery — the same names, the same
``REPRO_BACKEND`` environment variable, the same precedence (explicit
argument > env var > scalar) — so one knob flips both halves of the hot
path at once.  Mirroring :func:`repro.machine.backends.make_backend`:
asking for ``numpy`` without numpy installed raises (an explicit request
must never silently degrade), while asking for it on a stream the
vectorized engine cannot reproduce exactly (phased specs, >32-bit block
spaces, a non-MT19937 rng) silently returns the scalar engine — check
``ReferenceGenerator.backend_name`` to see what actually runs.

The numpy engine assumes it *owns* the generator's ``random.Random``:
between calls the Python rng object lags the mirrored stream until the
engine flushes, so drawing from that rng elsewhere while a vectorized
generator is live would fork the stream.  Every driver in this
repository gives each generator a private named stream
(:class:`~repro.engine.rng.RngRegistry`), which satisfies this.

``tests/apps/test_refgen_backends.py`` holds the differential harness
driving both engines over random specs, seeds, and chunkings, asserting
exact stream + final-state agreement.
"""

from __future__ import annotations

import random
import typing

from repro.machine.backends import (  # noqa: F401  (re-exported)
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    numpy_available,
    resolve_backend_name,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.reference import ReferenceGenerator, ReferenceSpec


class GeneratorBackend(typing.Protocol):
    """Stream-producing engine behind :class:`ReferenceGenerator`.

    An engine reads and writes the generator's hot-set/scan/rng state;
    the generator keeps everything else (the spec, the public API).
    """

    #: Which engine this is ("scalar" or "numpy") — after any fallback.
    name: str

    def next_blocks(self, n: int) -> typing.List[int]:
        """The next ``n`` touches as a Python list of ints."""

    def next_blocks_array(self, n: int):
        """The next ``n`` touches as a numpy ``int64`` array.

        The fused path into ``SetAssociativeCache.access_batch``: the
        vectorized engine returns its native array without building a
        list.  Requires numpy (the scalar engine converts on demand).
        """

    def invalidate(self) -> None:
        """Materialize all engine-side state back onto the generator.

        Called before external mutation of generator state (``reset``),
        so the Python-visible ring buffer and rng are authoritative
        again.  A no-op for engines that keep no private state.
        """


def generator_vectorizable(spec: "ReferenceSpec", rng: random.Random) -> bool:
    """True when the numpy engine can reproduce this stream bit-exactly.

    The vectorized parse covers single-phase streams whose hot-set and
    cold-pick rejection sampling consume one 32-bit word per attempt
    (``_randbelow`` with ``n.bit_length() <= 32``), driven by a stock
    CPython ``random.Random`` whose Mersenne Twister state can be
    mirrored.  Anything else falls back to the scalar specification.
    """
    if spec.n_phases != 1:
        return False
    if spec.reuse_window.bit_length() > 32 or spec.data_blocks.bit_length() > 32:
        return False
    if not isinstance(rng, random.Random):
        return False
    cls = type(rng)
    # A subclass overriding any drawing method (random.SystemRandom, a
    # test double) breaks the word-stream accounting; the scalar loop is
    # the only safe engine there.
    return (
        cls.random is random.Random.random
        and cls.getrandbits is random.Random.getrandbits
        and cls.randrange is random.Random.randrange
        and cls.getstate is random.Random.getstate
        and cls.setstate is random.Random.setstate
        and getattr(cls, "_randbelow", None) is getattr(random.Random, "_randbelow")
    )


def make_generator_backend(
    name: typing.Optional[str], gen: "ReferenceGenerator"
) -> "GeneratorBackend":
    """Build the stream engine for ``gen`` after resolving ``name``.

    Mirrors :func:`repro.machine.backends.make_backend`: ``numpy``
    without numpy installed raises :class:`RuntimeError`; ``numpy`` on a
    stream the vectorized engine cannot reproduce exactly returns the
    scalar reference engine instead (check the instance's ``name``).
    """
    name = resolve_backend_name(name)
    if name == "numpy":
        if not numpy_available():
            raise RuntimeError(
                "generator backend 'numpy' requested but numpy is not installed"
            )
        if generator_vectorizable(gen.spec, gen._rng):
            from repro.apps.refgen.numpy_backend import NumpyGeneratorBackend

            return NumpyGeneratorBackend(gen)
    from repro.apps.refgen.scalar import ScalarGeneratorBackend

    return ScalarGeneratorBackend(gen)
