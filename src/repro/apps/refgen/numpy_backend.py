"""Vectorized reference-stream engine: parse the raw MT19937 word stream.

The scalar specification draws from a ``random.Random`` one touch at a
time: two words for the reuse deviate (``random()``), then a
rejection-sampled ``_randbelow`` run (one word per attempt) for a
hot-set pick or a uniform cold pick.  Because every draw's word count
is decidable from the raw words themselves, the whole stream can be
produced the other way around — mirror the generator's Mersenne
Twister into ``numpy.random.RandomState``, pull the *tempered word
stream* in bulk, and parse it into touches with array passes:

1. **Statics** — per word position ``p``, decide vectorized whether a
   touch's ``random()`` starting at ``p`` is a cold pick (exact 53-bit
   integer compare, done in two 32-bit halves), and whether a
   ``_randbelow`` attempt at ``p`` is accepted (one 32-bit compare
   against the precomputed acceptance threshold).
2. **The successor function** ``F[p]`` — where the *next* touch's
   deviate starts if the current one starts at ``p``.  Hot touches
   skip the rejected attempt run after ``p+2`` (a windowed-minimum
   sweep with a sparse straggler walk); sequential cold touches
   consume no extra words; uniform cold picks skip their own
   rejection run (vectorized 8-deep probe, or a dense accept-position
   table when cold picks dominate).
3. **The orbit** — the touch positions are ``p0, F[p0], F[F[p0]], …``,
   an inherently serial recurrence.  It is cracked speculatively:
   chains started every ``WBLK`` words all walk ``F`` in lockstep
   (each step one vectorized gather), and because consecutive chains
   coalesce — any shared position makes them identical forever — each
   chain's true segment is the slice from its start until it first
   lands on its successor chain's stamped positions.  Stamps are
   epoch-coded so no per-call clearing is needed; a scalar rescue walk
   bridges the rare chain that never merges inside the window.
4. **Values** — with touch positions in hand, hot indices, cold
   blocks, and the ring-buffer evolution are all batch gathers: the
   hot set only changes at cold picks, so the ring's whole history is
   a growing array ``hist`` and touch ``t`` reads
   ``hist[appends_before(t) + draw(t)]``.

The engine is exact: for any chunking it emits the same blocks, leaves
the same hot-set ring, and — via :meth:`_VecState.resync`, which
untempers a mirrored output block back into MT19937 key words — puts
the Python ``random.Random`` into the state the scalar loop would have
left.  Paths the parse does not cover (ring not yet full, phased
specs, chunks under :data:`MIN_VEC`) run the scalar specification,
after flushing engine state; an unparseable stream demotes the engine
to the scalar loop permanently for that generator (never an error).

Tuning notes (measured on the 100k-touch benchmark stream): sync-block
size ``WBLK_FAST=192`` wins while rejected ``_randbelow`` attempts are
dense, because chains can only coalesce where a reject breaks the
fixed words-per-touch stride; below :data:`RDENSE` rejects per word,
neighbouring chains phase-lock (``F[p] ~ p + const``) and merges
become so rare that the safe ``WBLK_SAFE=96`` blocks (with a shorter
stitch window) are required for convergence.  ``_segment`` demotes
from fast to safe blocks on the first parse failure before assuming
word-stream exhaustion.
"""

from __future__ import annotations

import math
import typing

import numpy as np

from repro.apps.refgen.scalar import next_blocks_spec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.reference import ReferenceGenerator

#: 2**53: random() is (a << 26 | b) / 2**53 with a, b the tempered
#: word's top 27 and 26 bits.
TWO53 = 9007199254740992.0
#: Touches per internal parse segment (bounds scratch memory; ~3.3
#: words per touch on the benchmark stream keeps arrays L3-resident).
SEG_MAX = 65536
#: Below this many touches the fixed array-pass overhead loses to the
#: scalar loop; such calls flush and fall back.
MIN_VEC = 512
#: Speculative sync-block size when rejects are dense (chains merge fast).
WBLK_FAST = 192
#: Conservative block size: chains coalesce only at rejected attempts,
#: and a low reject density phase-locks neighbouring walks.
WBLK_SAFE = 96
#: Reject-density threshold (rejected words per word) for WBLK_FAST.
RDENSE = 0.08
#: Chain steps stamped for the stitch (visibility window for successors).
JSTAMP = 28

U32 = np.uint32
I32 = np.int32


def _untemper(words: np.ndarray) -> np.ndarray:
    """Invert MT19937's output tempering on an array of 32-bit words."""
    y = words.astype(U32, copy=True)
    y ^= y >> U32(18)
    y ^= (y << U32(15)) & U32(0xEFC60000)
    x = y.copy()
    for _ in range(4):
        x = y ^ ((x << U32(7)) & U32(0x9D2C5680))
    y = x
    x = y.copy()
    for _ in range(2):
        x = y ^ (x >> U32(11))
    return x


def _params(spec) -> tuple:
    """Constant per-spec parse parameters.

    Returns ``(seq, data_blocks, k_hot, t_hot, k_cold, wpt, var,
    reject_density)`` where ``wpt``/``var`` are the mean and variance
    of words consumed per touch (2 for the deviate plus geometric
    rejection runs) and ``reject_density`` is the expected fraction of
    words that are rejected ``_randbelow`` attempts — the coalescence
    opportunities the speculative chains depend on.
    """
    cap = spec.reuse_window
    p = spec.p_reuse
    seq = spec.cold_pattern == "sequential"
    db = spec.data_blocks
    k_hot = cap.bit_length()
    t_hot = U32(cap << (32 - k_hot)) if k_hot < 32 else U32(cap)
    k_cold = db.bit_length()
    acc_hot = cap / (1 << k_hot)
    acc_cold = db / (1 << k_cold)
    wpt = 2.0 + p / acc_hot + (0.0 if seq else (1.0 - p) / acc_cold)
    var = p * (1 - acc_hot) / acc_hot ** 2
    rej = p * (1.0 / acc_hot - 1.0)
    if not seq:
        var += (1 - p) * (1 - acc_cold) / acc_cold ** 2
        rej += (1 - p) * (1.0 / acc_cold - 1.0)
    return seq, db, k_hot, t_hot, k_cold, wpt, var, rej / wpt


class _VecState:
    """Mirrored rng + word store + scratch buffers for one generator.

    While ``valid``, the engine's mirror of the Mersenne Twister and
    the normalized ring history ``hist`` are authoritative and the
    generator's Python-visible state (``_recent_buf``, the rng object)
    lags behind; :meth:`flush` materializes it back.
    """

    def __init__(self, gen: "ReferenceGenerator") -> None:
        self.gen = gen
        self.rs = np.random.RandomState(0)  # reused; state always overwritten
        self.valid = False          # mirror + hist arrays authoritative?
        self.wstore = np.empty(0, dtype=U32)  # persistent extraction store
        self.wlen = 0               # valid words in wstore
        self.woff = 0               # consumed offset into wstore
        self.store_c0 = 0           # consumed-words value at wstore[0]
        self.pos0 = 0               # python MT position at mirror time
        self.key0: typing.Optional[tuple] = None  # python key at mirror time
        self.gauss0: typing.Optional[float] = None
        self.ver0 = 3
        self.consumed = 0           # words consumed since mirror
        self.dirty = False          # python rng state lags the mirror
        self.hist: typing.Optional[np.ndarray] = None  # ring history (>= cap)
        self.params = _params(gen.spec)
        self.hdtype = np.int64 if gen.spec.data_blocks > 2 ** 31 - 1 else I32
        self.scratch: typing.Dict[str, typing.Any] = {}
        self.epoch = 0

    # -- scratch -------------------------------------------------------
    def buf(self, key: str, size: int, dtype) -> np.ndarray:
        """A reusable scratch array of at least ``size`` elements."""
        b = self.scratch.get(key)
        if b is None or b.shape[0] < size:
            b = np.empty(int(size * 1.25) + 16, dtype=dtype)
            self.scratch[key] = b
        return b

    # -- mirror lifecycle ---------------------------------------------
    def attach(self) -> None:
        """Mirror the generator's rng and ring into engine state."""
        gen = self.gen
        ver, key, gauss = gen._rng.getstate()
        self.ver0, self.key0, self.gauss0 = ver, key, gauss
        self.pos0 = key[-1]
        self.rs.set_state(
            ("MT19937", np.array(key[:-1], dtype=U32), self.pos0, 0, 0.0)
        )
        self.consumed = 0
        self.wlen = 0
        self.woff = 0
        self.store_c0 = 0
        self.dirty = False
        # Normalized ring history: oldest..newest, start folded away.
        start = gen._recent_start
        buf = gen._recent_buf
        self.hist = np.array(buf[start:] + buf[:start], dtype=self.hdtype)
        self.valid = True

    def ensure_words(self, need: int) -> np.ndarray:
        """A contiguous view of at least ``need`` unconsumed words.

        Extraction is block-aligned to MT19937's 624-word state so the
        store always contains whole output blocks — :meth:`resync`
        untempers one of them to rebuild the Python key.
        """
        have = self.wlen - self.woff
        if have >= need:
            return self.wstore[self.woff:self.wlen]
        # Compact the store's front, but never drop past the start of
        # the 624-word block holding the current position: resync must
        # untemper that whole block to rebuild the Python key, and the
        # position only moves forward, so keeping it suffices forever.
        if self.woff:
            v1 = self.pos0 + self.store_c0 + self.woff
            b_keep = (v1 - 1) // 624 if v1 > 0 else 0
            drop = min(
                self.woff, max(0, b_keep * 624 - self.pos0 - self.store_c0)
            )
            if drop:
                keep = self.wlen - drop
                self.wstore[:keep] = self.wstore[drop:self.wlen]
                self.store_c0 += drop
                self.wlen = keep
                self.woff -= drop
        virt_end = self.pos0 + self.consumed + have
        target = self.pos0 + self.consumed + need
        target = ((target + 623) // 624) * 624  # block-align (virtual index)
        n_new = target - virt_end
        if self.wlen + n_new > self.wstore.shape[0]:
            grown = np.empty(self.wlen + n_new + 1024, dtype=U32)
            grown[:self.wlen] = self.wstore[:self.wlen]
            self.wstore = grown
        # randint over the full 32-bit range returns the tempered MT
        # output words themselves.
        self.wstore[self.wlen:self.wlen + n_new] = self.rs.randint(
            0, 2 ** 32, size=n_new, dtype=U32
        )
        self.wlen += n_new
        return self.wstore[self.woff:self.wlen]

    def advance(self, nwords: int) -> None:
        self.woff += nwords
        self.consumed += nwords
        self.dirty = True

    def resync(self) -> None:
        """Write the exact Python rng state for ``consumed`` words."""
        if not self.dirty:
            return
        v = self.pos0 + self.consumed
        b_eff = (v - 1) // 624 if v > 0 else 0
        pos_fin = v - b_eff * 624 if v > 0 else self.pos0
        if b_eff == 0:
            key = self.key0[:-1]
        else:
            lo = b_eff * 624 - self.pos0 - self.store_c0
            block = self.wstore[lo:lo + 624]
            key = tuple(_untemper(block).tolist())
        self.gen._rng.setstate((self.ver0, tuple(key) + (pos_fin,), self.gauss0))
        self.dirty = False

    def flush(self) -> None:
        """Materialize scalar-visible state (list ring + Python rng)."""
        gen = self.gen
        if self.valid and self.hist is not None:
            cap = gen.spec.reuse_window
            gen._recent_buf = self.hist[-cap:].tolist()
            gen._recent_start = 0
            gen._recent_len = cap
        self.resync()
        self.valid = False


class NumpyGeneratorBackend:
    """The vectorized engine behind :class:`ReferenceGenerator`."""

    name = "numpy"

    def __init__(self, gen: "ReferenceGenerator") -> None:
        self._gen = gen
        self._state = _VecState(gen)
        self._demoted = False  # permanent scalar fallback after a parse failure

    def next_blocks(self, n: int) -> typing.List[int]:
        return self._draw(n).tolist()

    def next_blocks_array(self, n: int) -> np.ndarray:
        return self._draw(n)

    def invalidate(self) -> None:
        if self._state.valid:
            self._state.flush()

    def _draw(self, n: int) -> np.ndarray:
        """``n`` touches, vectorized with internal segmentation."""
        gen = self._gen
        spec = gen.spec
        st = self._state
        out = np.empty(n, dtype=np.int64)
        if self._demoted:
            out[:n] = next_blocks_spec(gen, n)
            return out
        filled = 0
        primed = False
        while filled < n:
            if gen._recent_len < spec.reuse_window:
                # Warmup: scalar until the ring fills (the parse needs
                # the steady-state fixed hot-set length).
                if st.valid:
                    st.flush()
                step = min(n - filled, 256)
                out[filled:filled + step] = next_blocks_spec(gen, step)
                filled += step
                continue
            if not st.valid:
                st.attach()
            seg = min(n - filled, SEG_MAX)
            if seg < MIN_VEC:
                st.flush()
                out[filled:n] = next_blocks_spec(gen, n - filled)
                return out
            if not primed:
                # One extraction covering the whole call; segments then
                # re-extract only on the rare word-estimate overrun.
                wpt, var = st.params[5], st.params[6]
                rem = n - filled
                st.ensure_words(int(rem * wpt + 6.0 * (rem * var) ** 0.5 + 80))
                primed = True
            try:
                _segment(gen, st, out[filled:filled + seg], seg)
            except RuntimeError:
                # Unparseable stream (should not happen for gated specs;
                # kept as a safety net): hand the generator back to the
                # scalar specification for good.
                st.flush()
                self._demoted = True
                out[filled:n] = next_blocks_spec(gen, n - filled)
                return out
            filled += seg
        return out


def _segment(gen, st: _VecState, outseg: np.ndarray, m: int) -> None:
    """Parse ``m`` touches into ``outseg`` and consume their words."""
    seq, db, k_hot, t_hot, k_cold, wpt, var, rdens = st.params
    M = int(m * wpt + 6.0 * (m * var) ** 0.5 + 80)
    wblk = WBLK_FAST if rdens >= RDENSE else WBLK_SAFE
    for _attempt in range(9):
        W = st.ensure_words(M)[:M]
        consumed = _parse(
            gen, st, W, m, outseg, seq, db, k_hot, t_hot, k_cold, wpt, var, wblk
        )
        if consumed is not None:
            break
        if wblk != WBLK_SAFE:
            wblk = WBLK_SAFE  # stitch trouble: demote to the safe sync blocks
        else:
            M = M * 2         # then assume we ran out of extracted words
    else:
        raise RuntimeError("vectorized parse failed to converge")
    st.advance(consumed)


def _parse(gen, st, W, m, outseg, seq, db, k_hot, t_hot, k_cold, wpt, var, wblk):
    """One parse attempt over word window ``W``.

    Returns the number of words consumed, or None when the window ends
    before ``m`` touches (caller extends and retries) or the stitch
    fails to cover the orbit (caller retries with safe sync blocks).
    Generator/engine state is only written on success.
    """
    spec = gen.spec
    cap = spec.reuse_window
    M = W.shape[0]

    idxb = st.buf("idx", M + 4, I32)
    if st.scratch.get("idx_len", 0) < M + 4:
        idxb[:] = np.arange(idxb.shape[0], dtype=I32)
        st.scratch["idx_len"] = idxb.shape[0]

    # --- cold[p]: the deviate at (p, p+1) says "not reuse".  random()
    # is a 53-bit integer over 2**53; compare exactly in two 32-bit
    # halves (float compares would mis-round near the threshold).
    p_scaled = spec.p_reuse * TWO53
    cold = st.buf("cold", M, bool)[:M]
    if p_scaled >= TWO53:
        cold[:M - 1] = False
        cold[M - 1] = True
    else:
        thr = math.ceil(p_scaled) if p_scaled != int(p_scaled) else int(p_scaled)
        hi = thr >> 26
        lo = U32(thr & ((1 << 26) - 1))
        hi5 = U32(hi << 5)
        np.greater_equal(W[:-1], hi5, out=cold[:M - 1])
        band = st.buf("band", M, U32)[:M - 1]
        np.subtract(W[:-1], hi5, out=band)
        eqm = st.buf("eqm", M, bool)[:M - 1]
        np.less(band, U32(32), out=eqm)
        cold[M - 1] = True
        if eqm.any():
            # First words on the threshold boundary: the low half decides.
            sel = np.flatnonzero(eqm)
            cold[sel] = (W[sel + 1] >> U32(6)) >= lo

    # --- F[p] = next deviate start after a touch whose deviate starts
    # at p.  Hot: F[p] = (next hot-accepted word >= p+2) + 1.  Reject
    # density is 1 - acc_hot (can approach 50%), so a dense windowed
    # sweep beats any sparse reject-run fixup.
    acc = st.buf("acc", M, bool)[:M]
    np.less(W, t_hot, out=acc)
    wa = st.buf("wa", M + 16, I32)
    wb = st.buf("wb", M + 16, I32)
    np.subtract(idxb[1:M + 1], I32(M), out=wa[:M])
    np.multiply(wa[:M], acc, out=wa[:M])  # acc ? idx+1-M : 0
    np.add(wa[:M], I32(M), out=wa[:M])    # acc ? idx+1 : M  (the F value itself)
    # 8-wide windowed min by doubling (SIMD beats the serial running
    # min); reject runs longer than 8 are finished off by sparse
    # stride-8 jumps.  The +1 is folded into the blend and the final
    # pass writes straight into F at the p+2 offset, so no separate
    # shift-and-add pass remains.
    wa[M:M + 9] = I32(M)
    np.minimum(wa[:M + 8], wa[1:M + 9], out=wb[:M + 8])
    np.minimum(wb[:M + 6], wb[2:M + 8], out=wa[:M + 6])
    Fb = st.buf("F", M + 8, I32)
    F = Fb[:M + 1]
    np.minimum(wa[2:M + 2], wa[6:M + 6], out=F[:M])  # win8 at p+2
    F[M] = M
    strag = np.flatnonzero(F[:M - 2] == M)
    if strag.size:
        orig = strag
        q = strag + 10
        for _ in range(64):
            if q.size == 0:
                break
            inb = q < M
            qi = q[inb]
            oi = orig[inb]
            if qi.size == 0:
                break
            v = F[qi - 2]  # win8 window starting at qi
            done = v < M
            F[oi[done]] = v[done]
            q = qi[~done] + 8
            orig = oi[~done]
    # Cold deviate-starts follow the cold path instead.
    cpos = np.flatnonzero(cold[:M - 2])
    ncp = cpos.shape[0]
    if seq:
        F[cpos] = cpos + 2
    elif ncp:
        t_cold = U32(db << (32 - k_cold)) if k_cold < 32 else U32(db)
        if ncp * 16 > M:
            # Cold picks dominate: dense accept-position table.
            np.less(W, t_cold, out=acc)
            AC = np.flatnonzero(acc)
            if AC.size:
                j = np.searchsorted(AC, cpos + 2)
                jc = np.minimum(j, AC.size - 1)
                v = AC[jc] + 1
                v[j == AC.size] = M
            else:
                v = np.full(ncp, M, dtype=np.int64)
            F[cpos] = v
        else:
            # Few cold picks: probe 8 words ahead of each, walk stragglers.
            q0 = cpos + 2
            off = np.arange(8)[:, None]
            cand = q0[None, :] + off
            valid = cand < M
            np.minimum(cand, M - 1, out=cand)
            hitm = W.take(cand) < t_cold
            hitm &= valid
            first = np.argmax(hitm, axis=0)
            found = hitm.ravel().take(first * ncp + np.arange(ncp))
            res = q0 + first + 1
            miss = np.flatnonzero(~found)
            for i in miss:
                q = int(q0[i]) + 8
                while q < M and W[q] >= t_cold:
                    q += 1
                res[i] = q + 1 if q < M else M
            F[cpos] = res

    # --- speculative sync-block orbit --------------------------------
    est = m * wpt
    sdw = max(1.0, (m * max(0.1, wpt - 2.0) * 3.0) ** 0.5)
    cov = min(M, int(est + 4.5 * sdw) + wblk)
    K = max(1, (cov + wblk - 1) // wblk)  # ceil: a truncated tail block can
    # cost up to wblk words of orbit coverage, more than the word margin
    sd_n = (wblk * var / (wpt ** 3)) ** 0.5
    S = min(int(wblk / wpt + 4.0 * sd_n) + 14, 63 if wblk == WBLK_SAFE else 127)
    S1 = S + 1
    J = min(JSTAMP, S1)
    # Any step >= the true merge point is a valid coincidence point, so
    # the match window can start at mean - 4 sigma; earlier merges
    # still match later.
    smin = max(0, int(wblk / wpt - 4.0 * sd_n) - 2)
    smin = min(smin, max(0, S - 8))
    nwin = S1 - smin
    C = st.buf("C", S1 * K, I32)[:S1 * K].reshape(S1, K)
    kk = st.buf("kk", K, I32)[:K]
    if st.scratch.get("kk_len", 0) < K:
        kk[:] = np.arange(K, dtype=I32)
        st.scratch["kk_len"] = K
    np.multiply(kk, I32(wblk), out=C[0])
    for s in range(S):
        F.take(C[s], mode="clip", out=C[s + 1])

    # Epoch-coded stamps: each segment writes codes offset by a fresh
    # epoch base, so stale stamps from earlier segments fall outside
    # the [0, J) validity window after subtraction — no per-segment fill.
    stamp_full = st.scratch.get("stamp")
    if stamp_full is None or stamp_full.shape[0] < M + 2:
        stamp_full = np.empty(int((M + 2) * 1.25) + 16, dtype=I32)
        stamp_full.fill(-1)
        st.scratch["stamp"] = stamp_full
        st.epoch = 0
    span = (K + 2) << 6
    if st.epoch + 2 * span > (1 << 30):
        stamp_full.fill(-1)
        st.epoch = 0
    eb = st.epoch
    st.epoch = eb + span
    stamp = stamp_full[:M + 1]
    codes = st.buf("codes", J * K, I32)[:J * K].reshape(K, J)
    if st.scratch.get("codes_key") != (K, J):
        codes[:] = (
            (np.arange(K, dtype=I32)[:, None] << I32(6))
            | np.arange(J, dtype=I32)[None, :]
        )
        kshift = st.buf("kshift", K, I32)[:K]
        kshift[:] = (kk + I32(1)) << I32(6)
        st.scratch["codes_key"] = (K, J)
    kshift = st.buf("kshift", K, I32)[:K]
    codes_eb = st.buf("codes_eb", J * K, I32)[:J * K].reshape(K, J)
    np.add(codes, I32(eb), out=codes_eb)
    kshift_eb = st.buf("kshift_eb", K, I32)[:K]
    np.add(kshift, I32(eb), out=kshift_eb)
    stamp[C[:J].T.ravel()] = codes_eb.ravel()
    stamp[M] = I32(2 ** 31 - 2)  # sentinel position: never a valid code
    rel = st.buf("rel", nwin * K, I32)[:nwin * K].reshape(nwin, K)
    stamp.take(C[smin:], mode="clip", out=rel)
    np.subtract(rel, kshift_eb, out=rel)
    # Matching steps carry rel = j in [0, J) with j increasing along s;
    # every non-match is >= 64 or negative (huge as u32), so the first
    # match is exactly the u32 argmin — no boolean mask pass needed.
    i_k = np.argmin(rel.view(U32), axis=0).astype(I32)
    flat_idx = i_k * K + kk
    sp = rel.ravel().take(flat_idx)
    has = sp.view(U32) < U32(J)
    i_k += I32(smin)

    # Assemble the true orbit from per-chain slot ranges.  Usually a
    # single run (every chain k lands on chain k+1's stamps); if a
    # chain's walk never merges with its successor's (slow-coalescing
    # specs), a scalar rescue walk carries the orbit forward until it
    # hits a later chain.
    Cflat = C.ravel()
    span_codes = (K + 1) << 6
    segments = []
    tcount = 0
    k0, v0 = 0, 0
    while True:
        sub = has[k0:]
        nomatch = np.flatnonzero(~sub)
        term = k0 + int(nomatch[0]) if nomatch.size else K - 1
        nrun = term - k0 + 1
        vvr = np.empty(nrun, dtype=I32)
        vvr[0] = v0
        if nrun > 1:
            vvr[1:] = sp[k0:term]
        iur = i_k[k0:term + 1].copy()
        sent_hits = C[:, term] >= M
        hit_sent = bool(sent_hits.any())
        iur[-1] = int(np.argmax(sent_hits)) if hit_sent else S1
        if np.any(vvr > iur):
            return None
        # Run slots [vvr_r, iur_r) of chains k0..term, extracted by flat
        # index into C (position of slot j of chain k is C[j, k]); the
        # flat indices stay within S1*K < 2**31, so int32 throughout.
        sizes = iur - vvr
        total_r = int(sizes.sum())
        if total_r:
            csz = np.cumsum(sizes, dtype=I32)
            base = vvr * I32(K)
            base += np.arange(k0, term + 1, dtype=I32)
            base -= (csz - sizes) * I32(K)
            flat = np.repeat(base, sizes)
            flat += np.multiply(idxb[:total_r], I32(K))
            segments.append(Cflat.take(flat))
        tcount += total_r
        if tcount >= m + 1:
            break
        if hit_sent:
            return None  # ran out of extracted words: extend and retry
        # Rescue walk from the end of the truth-carrying chain.
        pos = int(C[S, term])
        rpos = []
        limit_code = (term + 1) << 6
        for _ in range(8 * wblk):
            pos = int(F[pos])
            if pos >= M:
                return None
            code = int(stamp[pos]) - eb
            if limit_code <= code < span_codes:
                break
            rpos.append(pos)
        else:
            return None
        k0 = code >> 6
        v0 = code & 63
        if rpos:
            segments.append(np.array(rpos, dtype=I32))
            tcount += len(rpos)
    orbit = segments[0] if len(segments) == 1 else np.concatenate(segments)
    if orbit.shape[0] < m + 1:
        return None
    p_t = orbit[:m]
    p_next = orbit[1:m + 1]
    consumed = int(orbit[m])

    # --- values -------------------------------------------------------
    hdt = st.hdtype
    cold_t = st.buf("cold_t", m, bool)[:m]
    cold.take(p_t, mode="clip", out=cold_t)
    pm1 = st.buf("pm1", m, I32)[:m]
    np.subtract(p_next, I32(1), out=pm1)
    accw = st.buf("accw", m, U32)[:m]
    W.take(pm1, mode="clip", out=accw)
    cold_pos = np.flatnonzero(cold_t)
    n_cold = cold_pos.shape[0]
    hist = st.hist
    last0 = int(hist[-1])
    if seq:
        scan0 = gen._scan
        cvals = (np.asarray(scan0, dtype=hdt) + np.arange(n_cold, dtype=hdt)) % db
        scan_fin = int((scan0 + n_cold) % db)
    else:
        cvals = (accw.take(cold_pos, mode="clip") >> U32(32 - k_cold)).astype(hdt)
        scan_fin = gen._scan
    appf = np.empty(n_cold, dtype=bool)
    if n_cold:
        # A cold block enters the ring only when it differs from the
        # previous appended block (the generator's dedup rule).
        appf[0] = cvals[0] != last0
        np.not_equal(cvals[1:], cvals[:-1], out=appf[1:])
    if n_cold:
        # P[t] = number of appends before touch t: a step function that
        # increments after each appending cold touch — materialized
        # with one repeat over the inter-append gap lengths.
        ecp = cold_pos[appf]
        bounds = np.empty(ecp.shape[0] + 2, dtype=np.intp)
        bounds[0] = 0
        bounds[1:-1] = ecp
        bounds[1:-1] += 1
        bounds[-1] = m
        P = np.repeat(np.arange(ecp.shape[0] + 1, dtype=I32), np.diff(bounds))
    else:
        P = st.buf("P", m, I32)[:m]
        P.fill(0)
    shbuf = st.buf("sh", m, U32)[:m]
    np.right_shift(accw, U32(32 - k_hot), out=shbuf)
    np.add(P, shbuf, out=P, casting="unsafe")
    newhist = np.concatenate([hist[-cap:], cvals[appf]]) if n_cold else hist[-cap:]
    hotv = st.buf("hotv", m, hdt)[:m]
    newhist.take(P, mode="clip", out=hotv)
    outseg[:] = hotv
    outseg[cold_pos] = cvals
    # --- state writeback ---------------------------------------------
    st.hist = newhist
    gen._scan = scan_fin
    return consumed
