"""The scalar reference-stream engine: the executable specification.

This is the ring-buffer touch loop that used to live inside
``ReferenceGenerator.next_blocks``, extracted unchanged.  Its behaviour
— which blocks are emitted, which random draws are consumed, how the
hot-set ring evolves — *defines* the stream; the vectorized engine in
:mod:`repro.apps.refgen.numpy_backend` must reproduce it bit-for-bit
and falls back to this loop wherever it cannot (warmup, phased specs,
tiny chunks).

The loop works directly on the generator's state attributes so that
engines can be swapped (or fallen back to mid-call) without copying
state around.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.reference import ReferenceGenerator


def next_blocks_spec(gen: "ReferenceGenerator", n: int) -> typing.List[int]:
    """The next ``n`` touches of ``gen``'s stream, one touch at a time.

    Stream-equivalent to any chunking of itself: the same random draws
    produce the same blocks and leave the generator in the same state.
    """
    spec = gen.spec
    rng = gen._rng
    random_ = rng.random
    randrange = rng.randrange
    # Random.choice(seq) is seq[rng._randbelow(len(seq))]; drawing the
    # index directly keeps the stream identical to the deque-based
    # formulation while the ring makes the lookup O(1).
    randbelow = getattr(rng, "_randbelow", randrange)
    p_reuse = spec.p_reuse
    n_phases = spec.n_phases
    phase_touches = spec.phase_touches
    sequential = spec.cold_pattern == "sequential"
    data_blocks = spec.data_blocks
    region = gen._region_size
    region_draw = region if region >= 1 else 1
    cap = spec.reuse_window
    buf = gen._recent_buf
    start = gen._recent_start
    length = gen._recent_len
    phase = gen._phase
    tip = gen._touches_in_phase
    scan = gen._scan
    last = buf[(start + length - 1) % cap] if length else -1
    out: typing.List[int] = []
    append_out = out.append
    for _ in range(n):
        if n_phases > 1:
            tip += 1
            if tip > phase_touches:
                # Advance to the next region and drop the hot set
                # (a new computation begins).
                phase = (phase + 1) % n_phases
                tip = 0
                start = 0
                length = 0
                last = -1
                scan = phase * region
        if length and random_() < p_reuse:
            # Hot-set revisit: does not enter the recency window.
            append_out(buf[(start + randbelow(length)) % cap])
            continue
        if sequential:
            block = scan
            scan += 1
            if n_phases > 1:
                base = phase * region
                if scan >= base + region:
                    scan = base
            elif scan >= data_blocks:
                scan = 0
        elif n_phases > 1:
            block = phase * region + randrange(region_draw)
        else:
            block = randrange(data_blocks)
        if block != last:
            if length < cap:
                buf[(start + length) % cap] = block
                length += 1
            else:
                buf[start] = block
                start += 1
                if start == cap:
                    start = 0
            last = block
        append_out(block)
    gen._recent_start = start
    gen._recent_len = length
    gen._phase = phase
    gen._touches_in_phase = tip
    gen._scan = scan
    return out


class ScalarGeneratorBackend:
    """The reference engine: delegates to :func:`next_blocks_spec`."""

    name = "scalar"

    def __init__(self, gen: "ReferenceGenerator") -> None:
        self._gen = gen

    def next_blocks(self, n: int) -> typing.List[int]:
        return next_blocks_spec(self._gen, n)

    def next_blocks_array(self, n: int):
        # Import on demand: the scalar engine itself never needs numpy;
        # only the fused array path (used when a caller mixes a scalar
        # generator with an array-consuming cache) does.
        import numpy

        return numpy.asarray(next_blocks_spec(self._gen, n), dtype=numpy.int64)

    def invalidate(self) -> None:
        """No engine-side state: the generator is always authoritative."""
