"""The MATRIX application: blocked parallel matrix multiply.

Figure 3's application computes C = A x B with a cache-blocked algorithm:
each thread owns one square block of the output matrix and multiplies
block pairs sized to fit the processor cache, "resulting in very high
cache hit rates, and so good application performance".  Scheduling-wise
MATRIX is an embarrassingly parallel flat fan of long-running threads —
massive, constant parallelism.

The real blocked multiply is implemented in :mod:`repro.kernels.matmul`.
"""

from __future__ import annotations

import dataclasses
import random

from repro.apps.base import AppSpec
from repro.apps.reference import ReferenceSpec
from repro.threads.graph import ThreadGraph


@dataclasses.dataclass(frozen=True)
class MatrixParams:
    """Structural knobs of the MATRIX workload."""

    #: number of output blocks, i.e. independent threads (8x8 grid)
    n_blocks: int = 64
    mean_service_s: float = 12.0
    service_jitter: float = 0.05


class MatrixSpec(AppSpec):
    """MATRIX: cache-resident working set, massive flat parallelism."""

    name = "MATRIX"
    description = (
        "Blocked parallel matrix multiply; one long thread per output "
        "block, massive constant parallelism, cache-resident working set"
    )

    #: Calibrated against Table 1's MATRIX row: the cache-sized resident
    #: block tiles (~1150 lines, re-touched with very high reuse) plus a
    #: slow (~2.7k lines/s) stream through the input matrices.
    _REFERENCE = ReferenceSpec(
        data_blocks=2400,
        p_reuse=0.99325,
        refs_per_touch=20,
        reuse_window=1150,
        cold_pattern="sequential",
    )

    def __init__(self, params: MatrixParams = MatrixParams()) -> None:
        if params.n_blocks < 1:
            raise ValueError("need at least one output block")
        if not 0.0 <= params.service_jitter < 1.0:
            raise ValueError("service_jitter must be in [0, 1)")
        self.params = params

    @property
    def reference(self) -> ReferenceSpec:
        return self._REFERENCE

    def max_parallelism_hint(self) -> int:
        return self.params.n_blocks

    def build_graph(self, rng: random.Random) -> ThreadGraph:
        """A flat fan: one independent thread per output block."""
        p = self.params
        graph = ThreadGraph(name=self.name)
        for _ in range(p.n_blocks):
            jitter = 1.0 + p.service_jitter * (2.0 * rng.random() - 1.0)
            graph.add_thread(p.mean_service_s * jitter, phase="multiply")
        return graph


#: Default instance used by the paper's workload mixes.
MATRIX = MatrixSpec()
