"""Memory reference models for the applications.

The Section 4 penalty experiments drive the stateful cache simulator with
per-application reference streams.  Simulating every reference is
intractable in Python, so the generator works at *touch* granularity: one
touch is ``refs_per_touch`` consecutive references to a single block (the
temporal-locality runs real programs exhibit).  Only the first reference of
a run can miss, so touch granularity preserves miss behaviour exactly for
run-structured traces.

The stream itself is a two-level locality model:

* with probability ``p_reuse`` the next touch revisits a block drawn
  uniformly from the last ``reuse_window`` distinct blocks (the hot set);
* otherwise it picks a block uniformly from the application's
  ``data_blocks``-block address space.

Uniform cold picks give the classic coupon-collector working-set growth
``distinct(t) = D * (1 - exp(-r t / D))`` — the saturating curve behind the
paper's observation that penalties grow with the rescheduling interval Q.
The derived :class:`~repro.machine.footprint.FootprintCurve` (``w_max = D``,
``tau = D / r``) is therefore the *same model*, which is what lets the
scheduling simulations use the analytic form the penalty experiment
validates.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.apps.refgen import make_generator_backend
from repro.machine.footprint import FootprintCurve, LinearFootprintCurve
from repro.machine.params import MachineSpec


@dataclasses.dataclass(frozen=True)
class ReferenceSpec:
    """Parameters of one application's reference stream."""

    #: size of the touched address space, in cache-line-sized blocks
    data_blocks: int
    #: probability a touch revisits the hot set instead of a cold block
    p_reuse: float
    #: consecutive references represented by one touch
    refs_per_touch: int
    #: number of recent distinct blocks forming the hot set
    reuse_window: int
    #: execution phases: cold picks stay within the current 1/n_phases
    #: region of the address space (1 = uniform over everything)
    n_phases: int = 1
    #: touches per phase before moving to the next region (0 = no rotation)
    phase_touches: int = 0
    #: how cold picks walk the address space: "uniform" random (coupon
    #: collector working-set growth) or "sequential" scan (sharp-knee
    #: linear growth — streaming through input data, tree walks)
    cold_pattern: str = "uniform"

    def __post_init__(self) -> None:
        if self.data_blocks <= 0:
            raise ValueError("data_blocks must be positive")
        if not 0.0 <= self.p_reuse < 1.0:
            raise ValueError("p_reuse must be in [0, 1)")
        if self.refs_per_touch < 1:
            raise ValueError("refs_per_touch must be at least 1")
        if self.reuse_window < 1:
            raise ValueError("reuse_window must be at least 1")
        if self.n_phases < 1:
            raise ValueError("n_phases must be at least 1")
        if self.n_phases > self.data_blocks:
            # Each phase owns a data_blocks // n_phases region; more
            # phases than blocks would make every region empty.
            raise ValueError("n_phases cannot exceed data_blocks")
        if self.n_phases > 1 and self.phase_touches < 1:
            raise ValueError("phased streams need phase_touches >= 1")
        if self.cold_pattern not in ("uniform", "sequential"):
            raise ValueError(f"unknown cold_pattern {self.cold_pattern!r}")

    def touch_rate(self, spec: MachineSpec) -> float:
        """Touches per second when every touch hits."""
        return 1.0 / (self.refs_per_touch * spec.hit_time_s)

    def cold_pick_rate(self, spec: MachineSpec) -> float:
        """Uniform cold picks per second (the working-set growth rate)."""
        return self.touch_rate(spec) * (1.0 - self.p_reuse)

    def footprint_curve(self, spec: MachineSpec) -> typing.Union[FootprintCurve, LinearFootprintCurve]:
        """The analytic working-set growth law this stream follows.

        Uniform cold picks give the coupon-collector exponential; a
        sequential scan gives the sharp-knee linear form (hot set loads
        almost immediately, then the scan adds ``rate`` lines/second).
        """
        rate = self.cold_pick_rate(spec)
        if self.cold_pattern == "sequential":
            return LinearFootprintCurve(
                hot=float(self.reuse_window),
                rate=rate,
                cap=float(self.data_blocks),
            )
        return FootprintCurve(w_max=float(self.data_blocks), tau=self.data_blocks / rate)

    def reduced(self, scale: int) -> "ReferenceSpec":
        """A fidelity-reduced stream for a ``reduced``-scale machine.

        Dividing the address space by ``scale`` while multiplying
        ``refs_per_touch`` by it keeps every *time* quantity (working-set
        build time, reload penalties in seconds) unchanged while cutting
        the number of simulated touches by ``scale``.  Used together with
        :func:`reduced_machine`.
        """
        if scale < 1:
            raise ValueError("scale must be at least 1")
        return ReferenceSpec(
            data_blocks=max(self.n_phases, self.data_blocks // scale),
            p_reuse=self.p_reuse,
            refs_per_touch=self.refs_per_touch * scale,
            reuse_window=max(1, self.reuse_window // scale),
            n_phases=self.n_phases,
            phase_touches=max(1, self.phase_touches // scale) if self.phase_touches else 0,
            cold_pattern=self.cold_pattern,
        )


def reduced_machine(spec: MachineSpec, scale: int) -> MachineSpec:
    """A fidelity-reduced machine matching :meth:`ReferenceSpec.reduced`.

    The cache shrinks by ``scale`` and the miss time grows by ``scale``, so
    the full-cache fill time — and hence every penalty measured in seconds —
    is preserved while the simulator does ``scale`` times less work.
    """
    if scale < 1:
        raise ValueError("scale must be at least 1")
    if scale == 1:
        return spec
    return dataclasses.replace(
        spec,
        name=f"{spec.name} (1/{scale} fidelity)",
        cache_size_bytes=spec.cache_size_bytes // scale,
        miss_time_s=spec.miss_time_s * scale,
    )


class ReferenceGenerator:
    """Stateful generator of block touches for one task.

    The hot set lives in a fixed-size ring buffer rather than a deque:
    picking a uniform member of a deque costs O(reuse_window) per touch
    (deque indexing is linear), while the ring gives an O(1) pick and an
    O(1) bounded append.  The element order and random-number consumption
    match the deque formulation exactly, so streams are unchanged.

    Stream production is delegated to a pluggable engine
    (:mod:`repro.apps.refgen`): the scalar ring-buffer loop is the
    executable specification, and the numpy engine reproduces its stream
    bit-for-bit by parsing the raw Mersenne Twister word stream in bulk.
    ``backend`` selects the engine like the cache backends do (explicit
    argument > ``REPRO_BACKEND`` env var > scalar); requesting ``numpy``
    on a stream the vectorized engine cannot cover (phased specs, a
    non-stock rng) silently falls back — ``backend_name`` reports the
    engine actually running.

    :meth:`next_blocks` is the batch entry point used by the chunked
    Section 4 drivers; :meth:`next_blocks_array` is the fused path that
    hands the numpy engine's native ``int64`` array straight to
    ``SetAssociativeCache.access_batch`` without building a Python list.
    Both are stream-equivalent to calling :meth:`next_block` the same
    number of times, for any chunking (property-tested in
    ``tests/apps/test_reference.py`` and differentially tested across
    engines in ``tests/apps/test_refgen_backends.py``).
    """

    def __init__(
        self,
        spec: ReferenceSpec,
        rng: random.Random,
        backend: typing.Optional[str] = None,
    ) -> None:
        self.spec = spec
        self._rng = rng
        # Ring buffer of the last `reuse_window` appended blocks:
        # logical order oldest..newest is buf[start], buf[start+1], ...
        # (indices mod the window size); `length` counts the filled slots.
        self._recent_buf: typing.List[int] = [0] * spec.reuse_window
        self._recent_start = 0
        self._recent_len = 0
        self._phase = 0
        self._touches_in_phase = 0
        self._region_size = spec.data_blocks // spec.n_phases
        self._scan = 0
        self._engine = make_generator_backend(backend, self)

    @property
    def backend_name(self) -> str:
        """Name of the stream engine in use (after any fallback)."""
        return self._engine.name

    @property
    def current_phase(self) -> int:
        """Index of the current execution phase (region of the data)."""
        return self._phase

    def next_block(self) -> int:
        """The block index of the next touch."""
        return self.next_blocks(1)[0]

    def next_blocks(self, n: int) -> typing.List[int]:
        """The block indices of the next ``n`` touches.

        Stream-equivalent to ``[self.next_block() for _ in range(n)]``:
        the same random draws produce the same blocks and leave the
        generator in the same state, for any chunking of the stream.
        """
        return self._engine.next_blocks(n)

    def next_blocks_array(self, n: int):
        """The next ``n`` touches as a numpy ``int64`` array.

        Same stream as :meth:`next_blocks`, but the numpy engine returns
        its native array directly — the fused generator→cache path.
        Requires numpy regardless of engine (the scalar engine converts).
        """
        return self._engine.next_blocks_array(n)

    def reset(self) -> None:
        """Forget the hot set (e.g. at an application phase change)."""
        # Engine state (mirrored rng, normalized ring history) must be
        # materialized back onto this object before we mutate the ring.
        self._engine.invalidate()
        self._recent_start = 0
        self._recent_len = 0
