"""The extended response time model for future machines (Figure 7).

::

    RT = [ (work + waste) / speed
           + N x ( realloc-time / speed  +  penalty_future / sqrt(speed) )
         ] / average-allocation

    penalty_future = %affinity x P^A / cache-size
                   + %no-affinity x P^NA x sqrt(cache-size)

Assumptions, as argued in Section 7.1:

* computation scales linearly with processor speed (optimistic);
* miss resolution speeds up only as sqrt(processor-speed) ([Jouppi 90]),
  so the cache penalty divides by sqrt(speed) rather than speed;
* larger caches preserve more of a returning task's image across
  intervening tasks — the affinity penalty divides by cache-size —
* but also let applications cache more data, so the no-affinity penalty
  grows as sqrt(cache-size) (chosen between the constant and linear
  extremes, per [Wang et al. 89]).

The paper plots relative response time against the *product*
``processor-speed x cache-size``, observing that along the technology
trajectory where both grow together, results depend on the product to
better than three significant digits; :func:`sweep_relative` follows the
same presentation (``speed = cache = sqrt(product)``).
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.model.params import PenaltyParameters, PolicyObservation
from repro.model.response_time import cache_penalty


class FutureMachineModel:
    """Evaluates the Figure 7 model for one machine lineage."""

    def __init__(
        self,
        penalties: typing.Mapping[str, PenaltyParameters],
        base_machine: MachineSpec = SEQUENT_SYMMETRY,
    ) -> None:
        self.penalties = dict(penalties)
        self.base_machine = base_machine

    def penalty_future(
        self,
        observation: PolicyObservation,
        cache_size: float,
    ) -> float:
        """The future cache penalty of one reallocation (seconds)."""
        if cache_size <= 0:
            raise ValueError("cache_size factor must be positive")
        if observation.app not in self.penalties:
            raise KeyError(f"no penalties for application {observation.app!r}")
        p = self.penalties[observation.app]
        return cache_penalty(
            observation.pct_affinity,
            p.p_a / cache_size,
            p.p_na * math.sqrt(cache_size),
        )

    def response_time(
        self,
        observation: PolicyObservation,
        processor_speed: float = 1.0,
        cache_size: float = 1.0,
    ) -> float:
        """Predicted response time on a ``(speed, cache)``-scaled machine."""
        if processor_speed <= 0:
            raise ValueError("processor_speed factor must be positive")
        penalty = self.penalty_future(observation, cache_size)
        compute = (observation.work + observation.waste) / processor_speed
        per_realloc = (
            self.base_machine.context_switch_s / processor_speed
            + penalty / math.sqrt(processor_speed)
        )
        numerator = compute + observation.n_reallocations * per_realloc
        return numerator / observation.average_allocation

    def relative_response_time(
        self,
        observation: PolicyObservation,
        baseline: PolicyObservation,
        processor_speed: float = 1.0,
        cache_size: float = 1.0,
    ) -> float:
        """RT of ``observation`` divided by RT of ``baseline`` on the same machine."""
        mine = self.response_time(observation, processor_speed, cache_size)
        theirs = self.response_time(baseline, processor_speed, cache_size)
        return mine / theirs


@dataclasses.dataclass(frozen=True)
class RelativeSeries:
    """One curve of Figures 8-13: relative RT vs speed x cache product."""

    policy: str
    job: str
    products: typing.Tuple[float, ...]
    ratios: typing.Tuple[float, ...]

    def crossover_product(self) -> typing.Optional[float]:
        """First product at which the policy stops beating the baseline.

        Returns None if the curve stays below 1 over the whole sweep.
        """
        for product, ratio in zip(self.products, self.ratios):
            if ratio >= 1.0:
                return product
        return None


#: Default sweep: 1x (the Symmetry) to 10^6x speed-times-cache.
DEFAULT_PRODUCTS: typing.Tuple[float, ...] = tuple(
    10 ** (exponent / 2.0) for exponent in range(0, 13)
)


def sweep_relative(
    model: FutureMachineModel,
    observation: PolicyObservation,
    baseline: PolicyObservation,
    products: typing.Sequence[float] = DEFAULT_PRODUCTS,
) -> RelativeSeries:
    """Sweep the technology trajectory ``speed = cache = sqrt(product)``."""
    ratios = []
    for product in products:
        if product <= 0:
            raise ValueError("products must be positive")
        factor = math.sqrt(product)
        ratios.append(
            model.relative_response_time(
                observation, baseline, processor_speed=factor, cache_size=factor
            )
        )
    return RelativeSeries(
        policy=observation.policy,
        job=observation.job,
        products=tuple(products),
        ratios=tuple(ratios),
    )
