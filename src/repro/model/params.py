"""Model parameter extraction (Section 7.3).

"We obtained P^A and P^NA from the measurements made for each of our
applications (Section 4).  We extracted the other parameters from the
results of scheduling various workloads with each of our allocation
policies (Section 6)."

:func:`penalties_from_table` turns a measured :class:`PenaltyTable` into
per-application penalty constants; :func:`observations_from_comparison`
turns Section 6 run summaries into per-job :class:`PolicyObservation`
records the future-machine model consumes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.measure.penalty import PenaltyTable
from repro.measure.runner import MixComparison


@dataclasses.dataclass(frozen=True)
class PenaltyParameters:
    """Per-application cache penalties (seconds per reallocation)."""

    p_a: float
    p_na: float

    def __post_init__(self) -> None:
        if self.p_a < 0 or self.p_na < 0:
            raise ValueError("penalties must be non-negative")


#: Penalties measured by ``PenaltyExperiment(scale=16).table1(...)`` at
#: Q = 400 ms — the paper's "rough estimate of the frequency with which a
#: dynamic space sharing policy might perform reallocations" — with P^A
#: averaged over the three intervening workloads.  Regenerate with
#: ``python -m repro table1`` / :func:`penalties_from_table`.
DEFAULT_PENALTIES: typing.Dict[str, PenaltyParameters] = {
    "MATRIX": PenaltyParameters(p_a=800e-6, p_na=1564e-6),
    "MVA": PenaltyParameters(p_a=1504e-6, p_na=2188e-6),
    "GRAVITY": PenaltyParameters(p_a=1723e-6, p_na=2358e-6),
}


def penalties_from_table(
    table: PenaltyTable, q_s: float = 0.400
) -> typing.Dict[str, PenaltyParameters]:
    """Reduce a measured Table 1 to per-app model constants.

    ``P^A`` depends on the intervening workload; following the paper's
    workload-agnostic use of the model we average over the measured
    partners.
    """
    out = {}
    for app in table.apps():
        result = table.result(app, q_s)
        p_as = [result.p_a_s(partner) for partner in result.multiprog]
        out[app] = PenaltyParameters(
            p_a=sum(p_as) / len(p_as) if p_as else 0.0,
            p_na=result.p_na_s,
        )
    return out


@dataclasses.dataclass(frozen=True)
class PolicyObservation:
    """Everything equation (1) needs about one job under one policy."""

    job: str
    app: str
    policy: str
    work: float
    waste: float
    n_reallocations: float
    pct_affinity: float
    average_allocation: float

    def __post_init__(self) -> None:
        if self.average_allocation <= 0:
            raise ValueError("average_allocation must be positive")


def observations_from_comparison(
    comparison: MixComparison,
) -> typing.Dict[str, typing.Dict[str, PolicyObservation]]:
    """Extract per-policy, per-job model parameters from Section 6 runs.

    Returns:
        ``{policy name: {job name: observation}}``.
    """
    out: typing.Dict[str, typing.Dict[str, PolicyObservation]] = {}
    for policy, jobs in comparison.summaries.items():
        out[policy] = {}
        for name, summary in jobs.items():
            out[policy][name] = PolicyObservation(
                job=name,
                app=summary.app,
                policy=policy,
                work=summary.work,
                waste=summary.waste,
                n_reallocations=summary.n_reallocations,
                pct_affinity=summary.pct_affinity,
                average_allocation=summary.average_allocation,
            )
    return out
