"""Equations (1) and (2) of the paper (Figure 1).

::

    RT(X, j) = [ work + waste + #reallocations x (reallocation-time
                 + cache-penalty) ] / average-allocation          (1)

    cache-penalty(X, j) = %affinity x P^A + %no-affinity x P^NA   (2)

All times in seconds; ``pct_affinity`` in percent (0-100), matching the
paper's tables.
"""

from __future__ import annotations


def cache_penalty(pct_affinity: float, p_a: float, p_na: float) -> float:
    """Equation (2): expected cache penalty of one reallocation.

    Args:
        pct_affinity: percentage of reallocations that resume a task on a
            processor for which the task has affinity (0-100).
        p_a: average penalty when resuming *with* affinity (seconds).
        p_na: average penalty when resuming *without* affinity (seconds).
    """
    if not 0.0 <= pct_affinity <= 100.0:
        raise ValueError("pct_affinity must be a percentage in [0, 100]")
    if p_a < 0 or p_na < 0:
        raise ValueError("penalties must be non-negative")
    affinity = pct_affinity / 100.0
    return affinity * p_a + (1.0 - affinity) * p_na


def response_time(
    work: float,
    waste: float,
    n_reallocations: float,
    reallocation_time: float,
    penalty: float,
    average_allocation: float,
) -> float:
    """Equation (1): job response time under one policy.

    Args:
        work: useful processor-seconds of the job.
        waste: processor-seconds spent holding processors with no work.
        n_reallocations: processor reallocations the job experiences.
        reallocation_time: kernel path length of one reallocation (seconds).
        penalty: cache penalty of one reallocation (equation (2)).
        average_allocation: mean processors held over the job's lifetime.
    """
    if average_allocation <= 0:
        raise ValueError("average_allocation must be positive")
    if min(work, waste, n_reallocations, reallocation_time, penalty) < 0:
        raise ValueError("all model terms must be non-negative")
    numerator = work + waste + n_reallocations * (reallocation_time + penalty)
    return numerator / average_allocation
