"""The [Squillante & Lazowska 89] affinity-queueing model — the baseline.

Section 8.2: "Our experimental work was preceded by the modeling work of
[Squillante & Lazowska 89].  Using an analytic model of cache footprint
behavior, and an analytic model of a multiprogrammed system and its
workload, they concluded that affinity scheduling can have a pronounced
effect on performance."  The paper then argues the disagreement comes
from domain: S&L model *time-sharing-like* systems with short run
intervals, where tasks interleave rapidly and footprints survive across
few intervening tasks.

This module implements that baseline model so the disagreement can be
exhibited rather than asserted.  The system: ``n_tasks`` tasks cycle
between *thinking* (exponential) and *running* (exponential service) on
``n_processors`` processors.  A dispatched task first reloads the part of
its cache footprint lost to intervening tasks:

    reload(j) = footprint x miss_time x (1 - survival^j)

where ``j`` counts tasks dispatched on that processor since this task
last left it (``j = infinity`` on a fresh processor).  Four disciplines,
as in S&L:

* **FCFS** — head of a global queue goes to any free processor;
* **FP** (fixed processor) — each task is bound to one processor, with a
  per-processor queue (perfect affinity, no load balancing);
* **LP** (last processor) — a free processor first searches the queue
  for a task whose last run was here, falling back to the head;
* **MI** (minimum intervening) — over (queued task, free processor)
  pairs, dispatch the pair with the fewest intervening dispatches,
  breaking ties toward the longest-waiting task.

The benchmark (``benchmarks/bench_squillante_lazowska.py``) sweeps the
mean run interval: at short, time-sharing-like intervals affinity
disciplines beat FCFS clearly (S&L's conclusion); at the long intervals
space sharing produces, the gap collapses (this paper's conclusion).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.engine.rng import RngRegistry
from repro.engine.simulator import Simulator
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec

POLICIES = ("FCFS", "FP", "LP", "MI")

#: Intervening-task count treated as "no affinity at all".
_FRESH = 10 ** 9


@dataclasses.dataclass(frozen=True)
class QueueingConfig:
    """Parameters of the affinity-queueing system."""

    n_processors: int = 4
    n_tasks: int = 8
    #: mean useful service per run interval (exponential), seconds
    mean_service_s: float = 0.010
    #: mean think/blocked time between runs (exponential), seconds
    mean_think_s: float = 0.010
    #: cache lines a task's footprint occupies
    footprint_lines: float = 1500.0
    #: fraction of a footprint surviving one intervening dispatch
    survival: float = 0.5
    policy: str = "FCFS"

    def __post_init__(self) -> None:
        if self.n_processors < 1 or self.n_tasks < 1:
            raise ValueError("need at least one processor and one task")
        if self.mean_service_s <= 0 or self.mean_think_s <= 0:
            raise ValueError("service and think times must be positive")
        if self.footprint_lines < 0:
            raise ValueError("footprint must be non-negative")
        if not 0.0 <= self.survival < 1.0:
            raise ValueError("survival must be in [0, 1)")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; one of {POLICIES}")


@dataclasses.dataclass
class QueueingStats:
    """Outcome of one queueing-model run."""

    completions: int = 0
    total_wait_s: float = 0.0
    total_reload_s: float = 0.0
    total_service_s: float = 0.0
    affine_dispatches: int = 0
    dispatches: int = 0

    @property
    def mean_wait_s(self) -> float:
        """Mean queueing delay per run interval."""
        return self.total_wait_s / self.completions if self.completions else 0.0

    @property
    def mean_reload_s(self) -> float:
        """Mean cache reload per dispatch."""
        return self.total_reload_s / self.dispatches if self.dispatches else 0.0

    @property
    def mean_cycle_s(self) -> float:
        """Mean wait + reload + service per run interval."""
        if not self.completions:
            return 0.0
        return (
            self.total_wait_s + self.total_reload_s + self.total_service_s
        ) / self.completions

    @property
    def pct_affinity(self) -> float:
        """Percent of dispatches landing on the task's last processor."""
        return 100.0 * self.affine_dispatches / self.dispatches if self.dispatches else 0.0


class _Task:
    __slots__ = ("tid", "last_processor", "ready_since")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.last_processor: typing.Optional[int] = None
        self.ready_since = 0.0


class AffinityQueueingModel:
    """Discrete-event evaluation of the S&L queueing system."""

    def __init__(
        self,
        config: QueueingConfig,
        machine: MachineSpec = SEQUENT_SYMMETRY,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.machine = machine
        self.sim = Simulator(seed=seed)
        self._rng = RngRegistry(seed).stream("queueing")
        self.stats = QueueingStats()
        self._tasks = [_Task(i) for i in range(config.n_tasks)]
        self._ready: typing.List[_Task] = []
        self._busy: typing.Dict[int, _Task] = {}
        # Per-processor dispatch counter and the counter value at each
        # task's last departure from that processor; the difference is
        # the intervening-dispatch count j.
        self._dispatch_counter = [0] * config.n_processors
        self._marks: typing.Dict[typing.Tuple[int, int], int] = {}
        if config.policy == "FP":
            self._binding = {
                task.tid: task.tid % config.n_processors for task in self._tasks
            }

    # ------------------------------------------------------------------ #

    def run(self, n_completions: int) -> QueueingStats:
        """Simulate until ``n_completions`` run intervals finish."""
        if n_completions < 1:
            raise ValueError("need at least one completion")
        self._target = n_completions
        for task in self._tasks:
            self.sim.schedule(
                self._rng.expovariate(1.0 / self.config.mean_think_s),
                lambda t=task: self._becomes_ready(t),
            )
        self.sim.run()
        return self.stats

    # ------------------------------------------------------------------ #

    def _intervening(self, task: _Task, processor: int) -> int:
        mark = self._marks.get((task.tid, processor))
        if mark is None:
            return _FRESH
        return self._dispatch_counter[processor] - mark

    def _reload_s(self, task: _Task, processor: int) -> float:
        j = self._intervening(task, processor)
        if j >= _FRESH:
            surviving = 0.0
        else:
            surviving = self.config.survival ** j
        lost = self.config.footprint_lines * (1.0 - surviving)
        return lost * self.machine.miss_time_s

    def _free_processors(self) -> typing.List[int]:
        return [
            cpu for cpu in range(self.config.n_processors) if cpu not in self._busy
        ]

    def _becomes_ready(self, task: _Task) -> None:
        task.ready_since = self.sim.now
        self._ready.append(task)
        self._try_dispatch()

    def _try_dispatch(self) -> None:
        while self._ready:
            free = self._free_processors()
            if not free:
                return
            pair = self._choose_pair(free)
            if pair is None:
                return
            task, processor = pair
            self._ready.remove(task)
            self._dispatch(task, processor)

    def _choose_pair(
        self, free: typing.List[int]
    ) -> typing.Optional[typing.Tuple["_Task", int]]:
        """Pick the (queued task, free processor) pair per the discipline."""
        policy = self.config.policy
        if policy == "FCFS":
            return self._ready[0], free[0]
        if policy == "FP":
            for task in self._ready:  # earliest task whose processor is free
                bound = self._binding[task.tid]
                if bound in free:
                    return task, bound
            return None
        if policy == "LP":
            for task in self._ready:  # earliest task with its last cpu free
                if task.last_processor in free:
                    return task, task.last_processor
            return self._ready[0], free[0]
        # MI: globally minimal intervening count; ties to earliest task.
        best: typing.Optional[typing.Tuple[int, int, "_Task", int]] = None
        for position, task in enumerate(self._ready):
            for cpu in free:
                key = (self._intervening(task, cpu), position)
                if best is None or key < (best[0], best[1]):
                    best = (key[0], key[1], task, cpu)
        assert best is not None
        return best[2], best[3]

    def _dispatch(self, task: _Task, processor: int) -> None:
        self.stats.dispatches += 1
        if task.last_processor == processor:
            self.stats.affine_dispatches += 1
        wait = self.sim.now - task.ready_since
        reload = self._reload_s(task, processor)
        service = self._rng.expovariate(1.0 / self.config.mean_service_s)
        self.stats.total_wait_s += wait
        self.stats.total_reload_s += reload
        self.stats.total_service_s += service
        self._busy[processor] = task
        self._dispatch_counter[processor] += 1
        self.sim.schedule(
            reload + service, lambda: self._completes(task, processor)
        )

    def _completes(self, task: _Task, processor: int) -> None:
        del self._busy[processor]
        task.last_processor = processor
        self._marks[(task.tid, processor)] = self._dispatch_counter[processor]
        self.stats.completions += 1
        if self.stats.completions >= self._target:
            self.sim.stop()
            return
        self.sim.schedule(
            self._rng.expovariate(1.0 / self.config.mean_think_s),
            lambda: self._becomes_ready(task),
        )
        self._try_dispatch()


def compare_disciplines(
    base: QueueingConfig,
    n_completions: int = 20000,
    seed: int = 0,
) -> typing.Dict[str, QueueingStats]:
    """Run every discipline on the same configuration."""
    results = {}
    for policy in POLICIES:
        config = dataclasses.replace(base, policy=policy)
        model = AffinityQueueingModel(config, seed=seed)
        results[policy] = model.run(n_completions)
    return results
