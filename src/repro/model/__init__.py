"""The analytic response time model (Sections 2 and 7).

* :mod:`~repro.model.response_time` — equations (1) and (2): response time
  from work, waste, reallocations, and the affinity-weighted cache penalty.
* :mod:`~repro.model.future` — the Figure 7 extension: ``processor-speed``
  and ``cache-size`` scaling with square-root miss-resolution and
  no-affinity-penalty growth.
* :mod:`~repro.model.params` — extraction of model parameters from
  simulation results and measured penalties.
"""

from repro.model.affinity_queueing import (
    AffinityQueueingModel,
    QueueingConfig,
    QueueingStats,
    compare_disciplines,
)
from repro.model.future import FutureMachineModel, RelativeSeries, sweep_relative
from repro.model.params import (
    DEFAULT_PENALTIES,
    PenaltyParameters,
    PolicyObservation,
    observations_from_comparison,
    penalties_from_table,
)
from repro.model.response_time import cache_penalty, response_time

__all__ = [
    "AffinityQueueingModel",
    "DEFAULT_PENALTIES",
    "FutureMachineModel",
    "PenaltyParameters",
    "PolicyObservation",
    "QueueingConfig",
    "QueueingStats",
    "RelativeSeries",
    "cache_penalty",
    "compare_disciplines",
    "observations_from_comparison",
    "penalties_from_table",
    "response_time",
    "sweep_relative",
]
