"""repro — reproduction of Vaswani & Zahorjan (SOSP 1991).

"The Implications of Cache Affinity on Processor Scheduling for
Multiprogrammed, Shared Memory Multiprocessors."

The package provides:

* :mod:`repro.engine` — discrete-event simulation core;
* :mod:`repro.machine` — the Sequent Symmetry machine model (caches,
  footprints, bus);
* :mod:`repro.threads` — user-level threads, jobs and worker tasks;
* :mod:`repro.apps` — the MVA, MATRIX and GRAVITY applications;
* :mod:`repro.kernels` — the real computations the applications model;
* :mod:`repro.core` — the allocator and the five space-sharing policies
  (the paper's contribution);
* :mod:`repro.model` — the analytic response time model of Sections 2/7;
* :mod:`repro.measure` — the Table 1 penalty experiment and the Section 6
  workload runner;
* :mod:`repro.reporting` — table and ASCII-figure rendering.

Quickstart::

    from repro import run_mix, DYN_AFF
    result = run_mix(5, DYN_AFF, seed=1)
    print(result.mean_response_time())
"""

from repro.apps import APPLICATIONS, GRAVITY, MATRIX, MVA
from repro.core import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
    POLICIES,
    Policy,
    SchedulingSystem,
)
from repro.machine import SEQUENT_SYMMETRY, MachineSpec, future_machine
from repro.measure import (
    MIXES,
    PenaltyExperiment,
    compare_policies,
    make_jobs,
    run_mix,
)

__version__ = "1.0.0"

__all__ = [
    "APPLICATIONS",
    "DYNAMIC",
    "DYN_AFF",
    "DYN_AFF_DELAY",
    "DYN_AFF_NOPRI",
    "EQUIPARTITION",
    "GRAVITY",
    "MATRIX",
    "MIXES",
    "MVA",
    "MachineSpec",
    "POLICIES",
    "PenaltyExperiment",
    "Policy",
    "SEQUENT_SYMMETRY",
    "SchedulingSystem",
    "compare_policies",
    "future_machine",
    "make_jobs",
    "run_mix",
    "__version__",
]
