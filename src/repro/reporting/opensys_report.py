"""Rendering and export of open-system matrix results."""

from __future__ import annotations

import json
import typing

from repro.reporting.tables import format_table
from repro.workloads.opensys.scenario import MatrixComparison


def render_matrix_table(comparison: MatrixComparison) -> str:
    """ASCII summary of a (scenario x policy) matrix, one row per cell."""
    headers = [
        "scenario",
        "policy",
        "jobs",
        "done",
        "canc",
        "fail",
        "mean RT",
        "p50",
        "p90",
        "p99",
        "util",
        "reallocs",
    ]
    rows = []
    for scenario in comparison.scenarios:
        for policy in comparison.policies:
            cell = comparison.cells[(scenario, policy)]
            rows.append(
                [
                    scenario,
                    policy,
                    cell.n_jobs,
                    cell.n_completed,
                    cell.n_cancelled,
                    cell.n_failures,
                    f"{cell.mean_response:.4f}",
                    f"{cell.p50_response:.4f}",
                    f"{cell.p90_response:.4f}",
                    f"{cell.p99_response:.4f}",
                    f"{cell.mean_utilization:.3f}",
                    cell.total_reallocations,
                ]
            )
    seeds = ", ".join(str(s) for s in comparison.seeds)
    return format_table(
        headers, rows, title=f"Open-system matrix (seeds {seeds})"
    )


def matrix_to_json(comparison: MatrixComparison) -> str:
    """Key-sorted JSON document of the per-cell summaries."""
    cells: typing.Dict[str, typing.Dict[str, object]] = {}
    for (scenario, policy), cell in comparison.cells.items():
        cells[f"{scenario}/{policy}"] = {
            "n_jobs": cell.n_jobs,
            "n_completed": cell.n_completed,
            "n_cancelled": cell.n_cancelled,
            "n_failures": cell.n_failures,
            "mean_response_s": cell.mean_response,
            "p50_response_s": cell.p50_response,
            "p90_response_s": cell.p90_response,
            "p99_response_s": cell.p99_response,
            "mean_utilization": cell.mean_utilization,
            "total_reallocations": cell.total_reallocations,
        }
    document = {
        "schema": "repro.opensys/1",
        "seeds": list(comparison.seeds),
        "scenarios": list(comparison.scenarios),
        "policies": list(comparison.policies),
        "cells": cells,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
