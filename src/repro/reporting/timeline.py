"""ASCII per-CPU timeline: the run at a glance in a terminal.

One row per processor, one character per time column, states from the
attribution sweep:

* ``.`` — free (unallocated)
* ``=`` — held idle by its owning job
* ``s`` — executing a context switch
* ``r`` — reloading its cache (the affinity penalty, the paper's subject)
* ``#`` — useful compute

A column spanning multiple states shows the one the CPU spent the most
time in during that column (exact Fraction-weighted vote), so a
reload-heavy policy visibly streaks ``r`` after every reallocation wave.
"""

from __future__ import annotations

import typing
from fractions import Fraction

from repro.obs.analysis.attribution import cpu_state_segments
from repro.obs.records import RunConfig, TraceRecord

#: state -> glyph, in increasing "interestingness" (ties break upward).
STATE_GLYPHS: typing.Dict[str, str] = {
    "free": ".",
    "held": "=",
    "switch": "s",
    "reload": "r",
    "compute": "#",
}

_STATE_RANK = {state: i for i, state in enumerate(STATE_GLYPHS)}


def render_cpu_timeline(
    records: typing.Sequence[TraceRecord],
    width: int = 80,
) -> str:
    """Render a trace as one timeline row per CPU.

    Args:
        records: a complete trace (``run_config`` first, ``run_end`` last).
        width: number of time columns.

    Raises:
        ValueError: on a malformed trace or non-positive width.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width!r}")
    config = records[0] if records else None
    if not isinstance(config, RunConfig):
        raise ValueError("timeline needs a trace starting with run_config")
    segments = cpu_state_segments(records)
    t0 = Fraction(config.time)
    end = Fraction(records[-1].time)
    span = end - t0
    lines = [
        f"cpu timeline  policy={config.policy}  seed={config.seed}  "
        f"span=[{float(t0):g}, {float(end):g}]s  "
        f"({float(span) / width:.4g}s/column)",
        "legend: " + "  ".join(f"{g}={s}" for s, g in STATE_GLYPHS.items()),
    ]
    if span <= 0:
        for cpu in sorted(segments):
            lines.append(f"cpu {cpu:>3} |" + " " * width + "|")
        return "\n".join(lines)
    column = span / width
    for cpu in sorted(segments):
        runs = segments[cpu]
        glyphs = []
        cursor = 0
        for i in range(width):
            lo = t0 + column * i
            hi = t0 + column * (i + 1)
            # Majority state within [lo, hi), exact overlap arithmetic.
            weights: typing.Dict[str, Fraction] = {}
            while cursor < len(runs) and Fraction(runs[cursor][1]) <= lo:
                cursor += 1
            j = cursor
            while j < len(runs):
                seg_lo, seg_hi, state = runs[j]
                if Fraction(seg_lo) >= hi:
                    break
                overlap = min(hi, Fraction(seg_hi)) - max(lo, Fraction(seg_lo))
                if overlap > 0:
                    weights[state] = weights.get(state, Fraction(0)) + overlap
                j += 1
            if not weights:
                glyphs.append(STATE_GLYPHS["free"])
                continue
            best = max(weights.items(), key=lambda kv: (kv[1], _STATE_RANK[kv[0]]))
            glyphs.append(STATE_GLYPHS[best[0]])
        lines.append(f"cpu {cpu:>3} |{''.join(glyphs)}|")
    return "\n".join(lines)
