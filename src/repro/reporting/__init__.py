"""Rendering of the paper's tables and figures as text and CSV."""

from repro.reporting.figures import ascii_chart, parallelism_histogram
from repro.reporting.tables import (
    format_table,
    render_table1,
    render_table3,
    render_table4,
    render_relative_rt_table,
)
from repro.reporting.export import rows_to_csv

__all__ = [
    "ascii_chart",
    "format_table",
    "parallelism_histogram",
    "render_relative_rt_table",
    "render_table1",
    "render_table3",
    "render_table4",
    "rows_to_csv",
]
