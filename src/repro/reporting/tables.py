"""ASCII rendering of the paper's tables."""

from __future__ import annotations

import typing

from repro.measure.penalty import PenaltyTable
from repro.measure.runner import MixComparison

Row = typing.Sequence[typing.Union[str, float, int]]


def format_table(
    headers: typing.Sequence[str],
    rows: typing.Iterable[Row],
    title: str = "",
) -> str:
    """Render a simple aligned ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: typing.Union[str, float, int]) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table1(table: PenaltyTable) -> str:
    """Table 1: P^A and P^NA (microseconds) per app per Q.

    One block per Q, mirroring the paper's layout: rows are the measured
    applications, the first column is P^NA, the remaining columns are P^A
    against each intervening workload.
    """
    blocks = []
    partners = list(table.partner_names)
    for q_s in table.quanta():
        headers = ["app", "P^NA"] + [f"P^A({p[:4]})" for p in partners]
        rows = []
        for app in table.apps():
            result = table.result(app, q_s)
            rows.append(
                [app, round(result.p_na_us)]
                + [round(result.p_a_us(p)) for p in partners]
            )
        blocks.append(
            format_table(headers, rows, title=f"Q = {q_s * 1000:.0f} msec. (values in usec.)")
        )
    return "\n\n".join(blocks)


def render_relative_rt_table(
    comparison: MixComparison, baseline: str = "Equipartition"
) -> str:
    """Figure 5/6 as a table: relative response times per policy per job."""
    policies = [p for p in comparison.policies() if p != baseline]
    headers = ["job"] + policies + [f"RT under {baseline} (s)"]
    rows = []
    for job in comparison.job_names():
        row: typing.List[typing.Union[str, float]] = [job]
        for policy in policies:
            row.append(round(comparison.relative_response_time(policy, job, baseline), 3))
        row.append(round(comparison.summaries[baseline][job].response_time.mean, 2))
        rows.append(row)
    return format_table(
        headers, rows, title=f"Workload #{comparison.mix.mix_id}: RT relative to {baseline}"
    )


def render_table3(
    comparison: MixComparison,
    policies: typing.Sequence[str] = ("Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"),
) -> str:
    """Table 3: influence of affinity on scheduling (per job per policy)."""
    headers = ["metric"] + [
        f"{policy[:12]}/{job}"
        for policy in policies
        for job in comparison.job_names()
    ]
    metric_rows: typing.List[Row] = []
    metrics = (
        ("%affinity", lambda s: f"{s.pct_affinity:.0f}%"),
        ("#reallocations", lambda s: f"{s.n_reallocations:.0f}"),
        ("realloc interval (ms)", lambda s: f"{s.reallocation_interval * 1000:.0f}"),
        ("response time (s)", lambda s: f"{s.response_time.mean:.1f}"),
    )
    for label, extract in metrics:
        row: typing.List[typing.Union[str, float]] = [label]
        for policy in policies:
            for job in comparison.job_names():
                row.append(extract(comparison.summaries[policy][job]))
        metric_rows.append(row)
    return format_table(
        headers,
        metric_rows,
        title=f"Workload #{comparison.mix.mix_id}: influence of affinity on scheduling",
    )


def render_table4(
    results: typing.Mapping[int, typing.Mapping[str, float]]
) -> str:
    """Table 4: average job response time for the homogeneous workloads.

    Args:
        results: ``{mix id: {policy name: mean RT seconds}}``.
    """
    policies = sorted({p for by_policy in results.values() for p in by_policy})
    headers = ["workload"] + policies
    rows = []
    for mix_id in sorted(results):
        row: typing.List[typing.Union[str, float]] = [f"#{mix_id}"]
        row.extend(round(results[mix_id].get(p, float("nan")), 2) for p in policies)
        rows.append(row)
    return format_table(
        headers, rows, title="Average job response time (homogeneous workloads, s)"
    )
