"""ASCII rendering of the trace-analytics results.

Human-facing counterparts of the machine-readable exporters in
:mod:`repro.reporting.obs_export`: the attribution table, the interval
series, the trace-diff report, and the self-profile table, all built on
the same :func:`repro.reporting.tables.format_table` the paper tables
use.
"""

from __future__ import annotations

import typing

from repro.obs.analysis.attribution import BUCKETS, TimeAttribution
from repro.obs.analysis.diff import TraceDiff
from repro.obs.analysis.intervals import WINDOW_FIELDS, IntervalSeries
from repro.reporting.tables import format_table


def render_attribution_table(attribution: TimeAttribution) -> str:
    """The two-view decomposition as aligned ASCII tables."""
    span = float(attribution.makespan - attribution.t0)
    title = (
        f"time attribution  policy={attribution.policy}  "
        f"seed={attribution.seed}  makespan={span:.6g}s  "
        f"P={attribution.n_processors}"
    )
    cpu_rows: typing.List[typing.List[object]] = []
    for cpu in sorted(attribution.per_cpu):
        buckets = attribution.cpu_buckets(cpu)
        cpu_rows.append([f"cpu {cpu}"] + [buckets[b] for b in BUCKETS])
    totals = attribution.totals()
    cpu_rows.append(["total"] + [totals[b] for b in BUCKETS])
    cpu_table = format_table(
        ["cpu-seconds"] + list(BUCKETS), cpu_rows, title=title
    )
    job_rows: typing.List[typing.List[object]] = []
    for job in sorted(attribution.per_job):
        buckets = attribution.job_buckets(job)
        rt = attribution.response_times.get(job)
        job_rows.append(
            [job]
            + [buckets[b] for b in BUCKETS]
            + [float(rt) if rt is not None else ""]
        )
    job_table = format_table(
        ["wall-clock s"] + list(BUCKETS) + ["response"],
        job_rows,
        title="per-job decomposition (buckets sum exactly to response time)",
    )
    return cpu_table + "\n\n" + job_table


def render_interval_series(series: IntervalSeries, max_rows: int = 40) -> str:
    """The windowed series as an aligned ASCII table.

    Long runs are subsampled evenly to ``max_rows`` windows (the JSON/CSV
    exports always carry every window).
    """
    title = (
        f"interval series  policy={series.policy}  seed={series.seed}  "
        f"window={series.window_s:g}s  windows={len(series.windows)}"
    )
    windows = list(series.windows)
    if len(windows) > max_rows:
        step = len(windows) / max_rows
        windows = [windows[int(i * step)] for i in range(max_rows)]
        title += f"  (showing every ~{step:.1f}th)"
    rows = [[w[field] for field in WINDOW_FIELDS] for w in windows]
    return format_table(list(WINDOW_FIELDS), rows, title=title)


def render_diff_report(diff: TraceDiff) -> str:
    """The trace diff as a human-readable report."""
    lines = [
        f"trace diff  A={diff.label_a}  B={diff.label_b}",
        f"identical: {diff.identical}",
    ]
    if diff.identical:
        lines.append("the two traces are record-for-record identical")
        return "\n".join(lines)
    lines.append(
        f"mean response-time delta (B - A): {diff.mean_response_delta:+.6g}s"
        f"   makespan delta: {diff.makespan_delta:+.6g}s"
    )
    rows: typing.List[typing.List[object]] = []
    for job in sorted(diff.job_deltas):
        entry = diff.job_deltas[job]
        rows.append(
            [job, entry["response_time_delta"]]
            + [entry["buckets"][b] for b in BUCKETS]
        )
    lines.append("")
    lines.append(
        format_table(
            ["job", "rt delta"] + list(BUCKETS),
            rows,
            title="per-job response-time deltas, attributed (B - A, seconds)",
        )
    )
    totals_rows = [
        ["A " + diff.label_a] + [diff.totals_a[b] for b in BUCKETS],
        ["B " + diff.label_b] + [diff.totals_b[b] for b in BUCKETS],
        ["B - A"] + [diff.totals_b[b] - diff.totals_a[b] for b in BUCKETS],
    ]
    lines.append("")
    lines.append(
        format_table(
            ["cpu-seconds"] + list(BUCKETS),
            totals_rows,
            title="machine totals (compute is ~policy-invariant; the gap "
            "lives in reload/switch/wait/idle)",
        )
    )
    if diff.jobs_only_a or diff.jobs_only_b:
        lines.append("")
        lines.append(f"jobs only in A: {list(diff.jobs_only_a)}")
        lines.append(f"jobs only in B: {list(diff.jobs_only_b)}")
    if diff.first_divergence is not None:
        lines.append("")
        lines.append(f"first divergent record: index {diff.first_divergence.index}")
        lines.append(f"  A: {diff.first_divergence.a}")
        lines.append(f"  B: {diff.first_divergence.b}")
    if diff.first_divergent_decision is not None:
        d = diff.first_divergent_decision
        lines.append("")
        lines.append(f"first divergent policy decision: decision #{d.index}")
        lines.append(f"  A: {d.a}")
        lines.append(f"  B: {d.b}")
        if diff.credit_differences:
            lines.append("  credit evidence differing at that decision:")
            for job, (a, b) in sorted(diff.credit_differences.items()):
                lines.append(f"    {job}: A={a!r}  B={b!r}")
    counts = sorted(set(diff.decision_rule_counts_a) | set(diff.decision_rule_counts_b))
    if counts:
        rows = [
            [
                rule,
                diff.decision_rule_counts_a.get(rule, 0),
                diff.decision_rule_counts_b.get(rule, 0),
            ]
            for rule in counts
        ]
        lines.append("")
        lines.append(
            format_table(
                ["rule", "A", "B"], rows, title="Section 5 decisions per rule"
            )
        )
    return "\n".join(lines)


def render_profile_table(snapshot: typing.Mapping[str, typing.Any]) -> str:
    """A :meth:`SpanProfiler.snapshot` as an inclusive-time-sorted table."""
    spans = snapshot.get("spans", {})
    ordered = sorted(
        spans.items(), key=lambda kv: kv[1]["inclusive_s"], reverse=True
    )
    rows = [
        [
            name,
            data["calls"],
            data["inclusive_s"],
            data["exclusive_s"],
            data["max_s"],
            (data["inclusive_s"] / data["calls"]) if data["calls"] else 0.0,
        ]
        for name, data in ordered
    ]
    return format_table(
        ["span", "calls", "inclusive s", "exclusive s", "max s", "s/call"],
        rows,
        title="simulator self-profile (wall clock, sorted by inclusive time)",
    )
