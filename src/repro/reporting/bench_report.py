"""Benchmark-regression report: fresh pytest-benchmark JSON vs committed.

The repo commits a reference ``BENCH_simulator.json`` (pytest-benchmark's
``--benchmark-json`` output); CI and developers produce a fresh one.
:func:`compare_benchmarks` matches benchmarks by name, computes the
mean-time ratio per benchmark, and flags anything slower than a
configurable threshold — ``repro bench-report`` turns that into a table
and a non-zero exit, so a perf regression fails the build instead of
rotting silently next to the committed baseline.

Benchmarks present on only one side are *reported* but never fail the
check: a new benchmark has no baseline to regress against, and a removed
one is a review question, not a perf problem.
"""

from __future__ import annotations

import dataclasses
import json
import typing

#: Default slowdown gate: mean time beyond baseline × this ratio fails.
DEFAULT_THRESHOLD = 1.25


@dataclasses.dataclass(frozen=True)
class BenchDelta:
    """One benchmark's baseline-vs-fresh mean comparison."""

    name: str
    baseline_mean: float
    fresh_mean: float

    @property
    def ratio(self) -> float:
        """Fresh mean over baseline mean (> 1 means slower)."""
        if self.baseline_mean <= 0:
            return float("inf") if self.fresh_mean > 0 else 1.0
        return self.fresh_mean / self.baseline_mean


@dataclasses.dataclass(frozen=True)
class BenchReport:
    """Everything one comparison produced."""

    deltas: typing.Tuple[BenchDelta, ...]
    #: benchmarks only in the fresh run (no baseline to compare against)
    new: typing.Tuple[str, ...]
    #: benchmarks only in the baseline (removed or not run)
    missing: typing.Tuple[str, ...]
    threshold: float

    @property
    def regressions(self) -> typing.Tuple[BenchDelta, ...]:
        """Deltas slower than the threshold, worst first."""
        slow = [d for d in self.deltas if d.ratio > self.threshold]
        return tuple(sorted(slow, key=lambda d: -d.ratio))


def load_benchmark_means(path: str) -> typing.Dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON file.

    Raises:
        ValueError: if the file is unreadable or not pytest-benchmark
            output (missing the ``benchmarks`` list or per-entry stats).
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise ValueError(f"cannot read benchmark JSON {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        # str(exc) carries the line/column of the damage.
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    # A top-level list/string/number is valid JSON but not pytest-benchmark
    # output; .get on it would be an AttributeError, i.e. a raw traceback.
    benchmarks = payload.get("benchmarks") if isinstance(payload, dict) else None
    if not isinstance(benchmarks, list):
        raise ValueError(
            f"{path}: no 'benchmarks' list; not pytest-benchmark output"
        )
    means: typing.Dict[str, float] = {}
    for i, entry in enumerate(benchmarks):
        try:
            name = entry["name"]
            mean = float(entry["stats"]["mean"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"{path}: malformed benchmark entry #{i} ({exc})"
            ) from exc
        if not isinstance(name, str):
            raise ValueError(
                f"{path}: benchmark entry #{i} has a non-string name {name!r}"
            )
        means[name] = mean
    return means


def compare_benchmarks(
    fresh_path: str,
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchReport:
    """Compare a fresh benchmark JSON against the committed baseline."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    fresh = load_benchmark_means(fresh_path)
    baseline = load_benchmark_means(baseline_path)
    shared = sorted(set(fresh) & set(baseline))
    deltas = tuple(
        BenchDelta(name=name, baseline_mean=baseline[name], fresh_mean=fresh[name])
        for name in shared
    )
    return BenchReport(
        deltas=deltas,
        new=tuple(sorted(set(fresh) - set(baseline))),
        missing=tuple(sorted(set(baseline) - set(fresh))),
        threshold=threshold,
    )


def render_bench_report(report: BenchReport) -> str:
    """The per-benchmark delta table plus a verdict line."""
    lines = [
        f"{'benchmark':<52} {'baseline':>12} {'fresh':>12} {'ratio':>8}",
    ]
    for delta in report.deltas:
        flag = "  REGRESSION" if delta.ratio > report.threshold else ""
        lines.append(
            f"{delta.name:<52} {delta.baseline_mean:>12.6f} "
            f"{delta.fresh_mean:>12.6f} {delta.ratio:>8.3f}{flag}"
        )
    for name in report.new:
        lines.append(f"{name:<52} {'-':>12} {'(new)':>12}")
    for name in report.missing:
        lines.append(f"{name:<52} {'(missing from fresh run)':>12}")
    regressions = report.regressions
    if regressions:
        lines.append(
            f"FAIL: {len(regressions)} benchmark(s) slower than "
            f"{report.threshold:.2f}x baseline"
        )
    else:
        lines.append(
            f"OK: {len(report.deltas)} benchmark(s) within "
            f"{report.threshold:.2f}x of baseline"
        )
    return "\n".join(lines)
