"""Exporters for the observability layer.

Deterministic byte-for-byte formats for every observability artifact:

* **JSONL traces** — one record per line, keys sorted, newline
  terminated; ``trace_from_jsonl`` round-trips the stream back into
  typed records (which is what lets a written trace be replayed as a
  correctness oracle later, or on another machine);
* **metrics snapshots** — the :meth:`MetricsRegistry.snapshot` dict as
  key-sorted JSON, or flattened to key-sorted CSV rows;
* **analysis results** — time attribution, interval series and trace
  diffs as schema-tagged key-sorted JSON/CSV, mirroring the snapshot
  discipline.

Every export is validated before serialization, so a malformed snapshot
fails loudly at the producer rather than silently downstream; every
*import* goes through :func:`validate_stream`, which turns a truncated
or mid-record JSONL artifact into a :class:`TraceStreamError` naming the
offending line instead of a bare ``json.JSONDecodeError``.
"""

from __future__ import annotations

import json
import typing

from repro import ioutil
from repro.obs.analysis.attribution import BUCKETS, TimeAttribution
from repro.obs.analysis.diff import TraceDiff
from repro.obs.analysis.intervals import WINDOW_FIELDS, IntervalSeries
from repro.obs.metrics import validate_snapshot
from repro.obs.records import (
    RunConfig,
    RunEnd,
    TraceRecord,
    record_from_dict,
    record_to_dict,
)
from repro.reporting.export import rows_to_csv

#: Time-attribution export schema identifier.
ATTRIBUTION_SCHEMA = "repro.analysis.attribution/1"


def write_artifact(path: str, text: str) -> None:
    """Write an exporter's output to ``path`` crash-safely.

    All the serializers in this module return strings; this is the one
    sanctioned way to put them on disk.  The write is atomic (same-
    directory temp file + :func:`os.replace`), so a process killed
    mid-write can never leave a truncated artifact at the destination —
    the loaders' truncation refusal then only ever fires on artifacts
    damaged by something other than our own writers.
    """
    ioutil.atomic_write_text(path, text)


class TraceStreamError(ValueError):
    """A trace artifact is truncated, malformed, or incomplete.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the old error keep working; the message always names the line (or
    framing record) at fault.
    """


def trace_to_jsonl(records: typing.Iterable[TraceRecord]) -> str:
    """Serialize records as JSON Lines (sorted keys, newline terminated)."""
    lines = [json.dumps(record_to_dict(r), sort_keys=True) for r in records]
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> typing.List[TraceRecord]:
    """Parse a JSONL trace back into typed records.

    Raises:
        TraceStreamError: on an unknown record kind, a malformed line, or
            a truncated (mid-record) final line.
    """
    if text and not text.endswith("\n"):
        # Our writers always newline-terminate; a missing final newline
        # means the artifact was cut off mid-write.
        last = text.rsplit("\n", 1)[-1]
        raise TraceStreamError(
            "trace is truncated: final line has no newline terminator "
            f"(starts {last[:60]!r}); the artifact was cut off mid-record"
        )
    records: typing.List[TraceRecord] = []
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceStreamError(
                f"trace line {i} is not valid JSON ({exc}); the artifact "
                "is corrupt or was truncated mid-record"
            ) from exc
        try:
            records.append(record_from_dict(payload))
        except ValueError as exc:
            raise TraceStreamError(f"trace line {i}: {exc}") from exc
    return records


def validate_stream(
    records: typing.Sequence[TraceRecord], source: str = "trace"
) -> typing.List[TraceRecord]:
    """Check that ``records`` form one complete run and return them.

    A complete run starts with exactly one ``run_config`` and ends with a
    ``run_end`` — the framing the analysis layer (attribution, interval
    series, diff) requires.

    Raises:
        TraceStreamError: naming what is missing or out of place.
    """
    records = list(records)
    if not records:
        raise TraceStreamError(f"{source} is empty")
    if not isinstance(records[0], RunConfig):
        raise TraceStreamError(
            f"{source} does not start with a run_config record "
            f"(got {records[0].kind!r}); not a complete run artifact"
        )
    if not isinstance(records[-1], RunEnd):
        raise TraceStreamError(
            f"{source} does not end with a run_end record "
            f"(got {records[-1].kind!r}); the run was cut off"
        )
    for i, record in enumerate(records[1:-1], start=2):
        if isinstance(record, RunConfig):
            raise TraceStreamError(
                f"{source} record {i} is a second run_config; "
                "analysis expects one run per artifact"
            )
        if isinstance(record, RunEnd):
            raise TraceStreamError(
                f"{source} record {i} is a premature run_end"
            )
    return records


def stream_trace(
    path: str, fmt: typing.Optional[str] = None
) -> typing.Iterator[TraceRecord]:
    """Stream a frame-checked trace from ``path``, record by record.

    Accepts both JSONL and columnar trace files (``fmt`` forces one;
    ``None`` sniffs by content).  Applies :func:`validate_stream`'s
    framing rules *incrementally* — exactly one leading ``run_config``,
    exactly one trailing ``run_end`` — so a truncated or incomplete
    artifact still fails loudly, but a million-record trace is never
    materialized: memory is O(1) in trace length.

    Being a generator, framing errors surface during iteration; batch
    callers that need all-or-nothing semantics use :func:`load_trace`.

    Raises:
        TraceStreamError: on unreadable, truncated, malformed, corrupt,
            or incomplete artifacts — always naming the file.
    """
    from repro.obs.store import ColumnarFormatError, iter_trace_file

    try:
        iterator = iter_trace_file(path, fmt=fmt)
    except (ColumnarFormatError, ValueError) as exc:
        raise TraceStreamError(str(exc)) from exc
    n = 0
    ended = False
    while True:
        try:
            record = next(iterator)
        except StopIteration:
            break
        except ColumnarFormatError as exc:
            raise TraceStreamError(str(exc)) from exc
        n += 1
        if n == 1:
            if not isinstance(record, RunConfig):
                raise TraceStreamError(
                    f"{path} does not start with a run_config record "
                    f"(got {record.kind!r}); not a complete run artifact"
                )
        else:
            if ended:
                raise TraceStreamError(
                    f"{path} record {n - 1} is a premature run_end"
                )
            if isinstance(record, RunConfig):
                raise TraceStreamError(
                    f"{path} record {n} is a second run_config; "
                    "analysis expects one run per artifact"
                )
        if isinstance(record, RunEnd):
            ended = True
        yield record
    if n == 0:
        raise TraceStreamError(f"{path} is empty")
    if not ended:
        raise TraceStreamError(
            f"{path} does not end with a run_end record; the run was cut off"
        )


def load_trace(
    path: str, fmt: typing.Optional[str] = None
) -> typing.List[TraceRecord]:
    """Read, parse and frame-check a trace file (JSONL or columnar).

    The batch counterpart of :func:`stream_trace`: same sniffing, same
    framing checks, but all-or-nothing — the record list is returned
    only once the whole artifact has been accepted.

    Raises:
        TraceStreamError: on unreadable, truncated, malformed, or
            incomplete artifacts — always naming the file.
    """
    return list(stream_trace(path, fmt=fmt))


def snapshot_to_json(snapshot: typing.Mapping[str, typing.Any]) -> str:
    """A metrics snapshot as key-sorted, newline-terminated JSON."""
    validate_snapshot(snapshot)
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


def snapshot_to_csv(snapshot: typing.Mapping[str, typing.Any]) -> str:
    """Flatten a metrics snapshot to key-sorted CSV.

    One row per scalar: counters and gauges directly, histograms as
    their ``count``/``sum``/``min``/``max``/``mean`` summary fields.
    """
    validate_snapshot(snapshot)
    rows: typing.List[typing.Sequence[object]] = []
    for name, value in sorted(snapshot["counters"].items()):
        rows.append(["counter", name, "value", value])
    for name, value in sorted(snapshot["gauges"].items()):
        rows.append(["gauge", name, "value", value])
    for name, data in sorted(snapshot["histograms"].items()):
        # v2 snapshots carry the derived mean; export it verbatim.
        for field in ("count", "sum", "mean", "min", "max"):
            rows.append(["histogram", name, field, data[field]])
    return rows_to_csv(["section", "name", "field", "value"], rows)


def snapshots_to_csv(
    snapshots: typing.Sequence[typing.Mapping[str, typing.Any]],
    labels: typing.Optional[typing.Sequence[str]] = None,
) -> str:
    """Several snapshots as one wide CSV under a *stable* union header.

    One row per snapshot (first column: its label), one column per
    flattened metric — ``counter:<name>``, ``gauge:<name>``, or
    ``histogram:<name>:<field>``.  The header is the key-sorted union
    over **all** snapshots, so snapshots with disjoint key sets (a
    failures cell has ``cpu/failures``; a steady cell does not) still
    align column-for-column; a metric a snapshot never touched exports
    as an empty cell.  Per-snapshot sorting alone cannot give this —
    columns would shift between rows.
    """
    snapshots = list(snapshots)
    if labels is None:
        labels = [str(i) for i in range(len(snapshots))]
    labels = list(labels)
    if len(labels) != len(snapshots):
        raise ValueError(
            f"{len(snapshots)} snapshots but {len(labels)} labels"
        )
    flattened: typing.List[typing.Dict[str, object]] = []
    for snapshot in snapshots:
        validate_snapshot(snapshot)
        row: typing.Dict[str, object] = {}
        for name, value in snapshot["counters"].items():
            row[f"counter:{name}"] = value
        for name, value in snapshot["gauges"].items():
            row[f"gauge:{name}"] = value
        for name, data in snapshot["histograms"].items():
            for field in ("count", "sum", "mean", "min", "max"):
                row[f"histogram:{name}:{field}"] = data[field]
        flattened.append(row)
    columns = sorted(set().union(*flattened)) if flattened else []
    header = ["label"] + columns
    rows = [
        [label] + [row.get(column, "") for column in columns]
        for label, row in zip(labels, flattened)
    ]
    return rows_to_csv(header, rows)


# --------------------------------------------------------------------- #
# analysis exports


def attribution_to_dict(
    attribution: TimeAttribution,
) -> typing.Dict[str, typing.Any]:
    """A :class:`TimeAttribution` as a schema-tagged plain dict.

    Exact Fractions become floats here — this is the reporting boundary;
    conservation has already been checked upstream in rational
    arithmetic.
    """
    return {
        "schema": ATTRIBUTION_SCHEMA,
        "policy": attribution.policy,
        "seed": attribution.seed,
        "n_processors": attribution.n_processors,
        "t0": float(attribution.t0),
        "makespan": float(attribution.makespan),
        "buckets": list(BUCKETS),
        "per_cpu": {
            str(cpu): attribution.cpu_buckets(cpu)
            for cpu in sorted(attribution.per_cpu)
        },
        "per_job": {
            job: attribution.job_buckets(job)
            for job in sorted(attribution.per_job)
        },
        "totals": attribution.totals(),
        "response_times": {
            job: float(rt)
            for job, rt in sorted(attribution.response_times.items())
        },
    }


def attribution_to_json(attribution: TimeAttribution) -> str:
    """Time attribution as key-sorted, newline-terminated JSON."""
    return json.dumps(attribution_to_dict(attribution), sort_keys=True, indent=2) + "\n"


def attribution_to_csv(attribution: TimeAttribution) -> str:
    """Time attribution flattened to CSV: one row per (view, entity, bucket)."""
    rows: typing.List[typing.Sequence[object]] = []
    for cpu in sorted(attribution.per_cpu):
        buckets = attribution.cpu_buckets(cpu)
        for bucket in BUCKETS:
            rows.append(["cpu", str(cpu), bucket, buckets[bucket]])
    for job in sorted(attribution.per_job):
        buckets = attribution.job_buckets(job)
        for bucket in BUCKETS:
            rows.append(["job", job, bucket, buckets[bucket]])
    return rows_to_csv(["view", "entity", "bucket", "seconds"], rows)


def intervals_to_json(series: IntervalSeries) -> str:
    """An interval series as key-sorted, newline-terminated JSON."""
    return json.dumps(series.to_dict(), sort_keys=True, indent=2) + "\n"


def intervals_to_csv(series: IntervalSeries) -> str:
    """An interval series as CSV, one row per window."""
    rows = [
        [window[field] for field in WINDOW_FIELDS] for window in series.windows
    ]
    return rows_to_csv(list(WINDOW_FIELDS), rows)


def diff_to_json(diff: TraceDiff) -> str:
    """A trace diff as key-sorted, newline-terminated JSON."""
    return json.dumps(diff.to_dict(), sort_keys=True, indent=2) + "\n"
