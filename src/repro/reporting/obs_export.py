"""Exporters for the observability layer.

Two formats, both deterministic byte-for-byte for a given input:

* **JSONL traces** — one record per line, keys sorted, newline
  terminated; ``trace_from_jsonl`` round-trips the stream back into
  typed records (which is what lets a written trace be replayed as a
  correctness oracle later, or on another machine);
* **metrics snapshots** — the :meth:`MetricsRegistry.snapshot` dict as
  key-sorted JSON, or flattened to key-sorted CSV rows.

Every export is validated before serialization, so a malformed snapshot
fails loudly at the producer rather than silently downstream.
"""

from __future__ import annotations

import json
import typing

from repro.obs.metrics import validate_snapshot
from repro.obs.records import TraceRecord, record_from_dict, record_to_dict
from repro.reporting.export import rows_to_csv


def trace_to_jsonl(records: typing.Iterable[TraceRecord]) -> str:
    """Serialize records as JSON Lines (sorted keys, newline terminated)."""
    lines = [json.dumps(record_to_dict(r), sort_keys=True) for r in records]
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> typing.List[TraceRecord]:
    """Parse a JSONL trace back into typed records.

    Raises:
        ValueError: on an unknown record kind or malformed line.
    """
    records: typing.List[TraceRecord] = []
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {i} is not valid JSON: {exc}") from exc
        records.append(record_from_dict(payload))
    return records


def snapshot_to_json(snapshot: typing.Mapping[str, typing.Any]) -> str:
    """A metrics snapshot as key-sorted, newline-terminated JSON."""
    validate_snapshot(snapshot)
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


def snapshot_to_csv(snapshot: typing.Mapping[str, typing.Any]) -> str:
    """Flatten a metrics snapshot to key-sorted CSV.

    One row per scalar: counters and gauges directly, histograms as
    their ``count``/``sum``/``min``/``max``/``mean`` summary fields.
    """
    validate_snapshot(snapshot)
    rows: typing.List[typing.Sequence[object]] = []
    for name, value in sorted(snapshot["counters"].items()):
        rows.append(["counter", name, "value", value])
    for name, value in sorted(snapshot["gauges"].items()):
        rows.append(["gauge", name, "value", value])
    for name, data in sorted(snapshot["histograms"].items()):
        count = data["count"]
        mean = data["sum"] / count if count else 0.0
        for field in ("count", "sum", "min", "max"):
            rows.append(["histogram", name, field, data[field]])
        rows.append(["histogram", name, "mean", mean])
    return rows_to_csv(["section", "name", "field", "value"], rows)
