"""ASCII charts for the paper's figures."""

from __future__ import annotations

import math
import typing

from repro.threads.graph import ParallelismProfile


def ascii_chart(
    series: typing.Mapping[str, typing.Sequence[typing.Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    log_x: bool = False,
    y_label: str = "",
) -> str:
    """Plot named (x, y) series on one character grid.

    Each series is drawn with its own marker (assigned in order), with a
    legend below; used for Figures 5/6 (bars become markers per job) and
    8-13 (relative RT vs speed x cache product, log x-axis).
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*o+x#@%&"
    points = {
        name: [(math.log10(x) if log_x else x, y) for x, y in pts]
        for name, pts in series.items()
    }
    all_x = [x for pts in points.values() for x, _ in pts]
    all_y = [y for pts in points.values() for _, y in pts]
    if not all_x:
        raise ValueError("series contain no points")
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    for index, (name, pts) in enumerate(points.items()):
        marker = markers[index % len(markers)]
        for x, y in pts:
            place(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(pad)
        elif r == height - 1:
            prefix = bottom_label.rjust(pad)
        elif r == height // 2 and y_label:
            prefix = y_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(prefix + " |" + "".join(row))
    x_axis_lo = f"{10 ** x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    x_axis_hi = f"{10 ** x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + "  " + x_axis_lo + " " * max(1, width - len(x_axis_lo) - len(x_axis_hi)) + x_axis_hi
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(points)
    )
    lines.append(legend)
    return "\n".join(lines)


def parallelism_histogram(
    profile: ParallelismProfile, app_name: str, width: int = 50
) -> str:
    """Figures 2-4: percentage of time at each parallelism level.

    Also prints the total execution time and average processor demand the
    paper reports beneath each application's graph.
    """
    lines = [
        f"{app_name}: parallelism profile on {profile.n_processors} processors"
    ]
    max_fraction = max(profile.time_at_level.values()) if profile.time_at_level else 1.0
    for level in sorted(profile.time_at_level):
        fraction = profile.time_at_level[level]
        bar = "#" * max(1, int(fraction / max_fraction * width)) if fraction > 0 else ""
        lines.append(f"  {level:3d} | {bar} {fraction * 100:.1f}%".rstrip())
    lines.append(f"  total execution time: {profile.execution_time:.2f} s")
    lines.append(f"  average processor demand: {profile.average_demand:.2f}")
    return "\n".join(lines)
