"""CSV export of experiment results."""

from __future__ import annotations

import csv
import io
import typing


def rows_to_csv(
    headers: typing.Sequence[str],
    rows: typing.Iterable[typing.Sequence[object]],
) -> str:
    """Serialize rows as CSV text (RFC 4180 quoting via csv module)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but header has {len(headers)}"
            )
        writer.writerow(list(row))
    return buffer.getvalue()
