"""Running workload mixes under policies (the Section 6 experiments)."""

from __future__ import annotations

import dataclasses
import typing

from repro.core.policies.base import Policy
from repro.core.system import JobMetrics, SchedulingSystem, SystemResult
from repro.engine.rng import RngRegistry
from repro.engine.stats import ConfidenceInterval, SampleStats
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.measure.workloads import MIXES, WorkloadMix, make_jobs

#: Default processor count: the paper profiles and schedules on 16 of the
#: Symmetry's 20 processors (the rest ran the OS and the allocator).
DEFAULT_PROCESSORS = 16


def run_mix(
    mix: typing.Union[int, WorkloadMix],
    policy: Policy,
    seed: int = 0,
    n_processors: int = DEFAULT_PROCESSORS,
    machine: MachineSpec = SEQUENT_SYMMETRY,
) -> SystemResult:
    """Run one mix once under one policy; returns per-job metrics.

    The workload RNG stream is derived from ``seed`` but *not* from the
    policy, so different policies scheduling the same seed see the same
    jobs — the common-random-numbers pairing the paper's relative response
    times rely on.
    """
    rng = RngRegistry(seed)
    jobs = make_jobs(mix, rng.spawn("workload"), n_processors=n_processors, machine=machine)
    system = SchedulingSystem(
        jobs,
        policy,
        machine=machine,
        n_processors=n_processors,
        seed=seed,
        rng=rng.spawn(f"system/{policy.name}"),
    )
    return system.run()


@dataclasses.dataclass(frozen=True)
class JobSummary:
    """Replication-averaged metrics for one job under one policy."""

    name: str
    response_time: ConfidenceInterval
    n_reallocations: float
    pct_affinity: float
    reallocation_interval: float
    work: float
    waste: float
    average_allocation: float

    @property
    def app(self) -> str:
        """Application name (job name without instance suffix)."""
        return self.name.split("-")[0]


@dataclasses.dataclass(frozen=True)
class MixComparison:
    """One mix run under several policies with replications."""

    mix: WorkloadMix
    n_replications: int
    summaries: typing.Dict[str, typing.Dict[str, JobSummary]]  # policy -> job -> summary

    def policies(self) -> typing.List[str]:
        """Policy names present."""
        return list(self.summaries)

    def job_names(self) -> typing.List[str]:
        """Job names (consistent across policies)."""
        first = next(iter(self.summaries.values()))
        return list(first)

    def relative_response_time(self, policy: str, job: str, baseline: str) -> float:
        """RT under ``policy`` divided by RT under ``baseline`` for ``job``."""
        rt = self.summaries[policy][job].response_time.mean
        base = self.summaries[baseline][job].response_time.mean
        return rt / base

    def mean_response_time(self, policy: str) -> float:
        """Average of per-job mean response times under ``policy``."""
        jobs = self.summaries[policy]
        return sum(s.response_time.mean for s in jobs.values()) / len(jobs)


def compare_policies(
    mix: typing.Union[int, WorkloadMix],
    policies: typing.Sequence[Policy],
    replications: int = 5,
    base_seed: int = 0,
    n_processors: int = DEFAULT_PROCESSORS,
    machine: MachineSpec = SEQUENT_SYMMETRY,
) -> MixComparison:
    """Run ``mix`` under each policy for ``replications`` seeds.

    Replication ``r`` of every policy shares workload seed ``base_seed + r``
    (common random numbers), following the paper's paired comparisons
    against Equipartition.
    """
    if isinstance(mix, int):
        mix = MIXES[mix]
    if replications < 1:
        raise ValueError("need at least one replication")
    per_policy: typing.Dict[str, typing.Dict[str, typing.List[JobMetrics]]] = {}
    for policy in policies:
        collected: typing.Dict[str, typing.List[JobMetrics]] = {}
        for r in range(replications):
            result = run_mix(
                mix, policy, seed=base_seed + r, n_processors=n_processors, machine=machine
            )
            for name, metrics in result.jobs.items():
                collected.setdefault(name, []).append(metrics)
        per_policy[policy.name] = collected

    summaries: typing.Dict[str, typing.Dict[str, JobSummary]] = {}
    for policy_name, collected in per_policy.items():
        summaries[policy_name] = {
            name: _summarize(name, samples) for name, samples in collected.items()
        }
    return MixComparison(mix=mix, n_replications=replications, summaries=summaries)


def _summarize(name: str, samples: typing.List[JobMetrics]) -> JobSummary:
    rt = SampleStats()
    for m in samples:
        rt.add(m.response_time)
    n = len(samples)
    return JobSummary(
        name=name,
        response_time=rt.confidence_interval(),
        n_reallocations=sum(m.n_reallocations for m in samples) / n,
        pct_affinity=sum(m.pct_affinity for m in samples) / n,
        reallocation_interval=sum(m.reallocation_interval for m in samples) / n,
        work=sum(m.work for m in samples) / n,
        waste=sum(m.waste for m in samples) / n,
        average_allocation=sum(m.average_allocation for m in samples) / n,
    )


def compare_policies_to_confidence(
    mix: typing.Union[int, WorkloadMix],
    policies: typing.Sequence[Policy],
    target_relative: float = 0.01,
    min_replications: int = 3,
    max_replications: int = 50,
    base_seed: int = 0,
    n_processors: int = DEFAULT_PROCESSORS,
    machine: MachineSpec = SEQUENT_SYMMETRY,
) -> MixComparison:
    """Run replications until the paper's confidence criterion is met.

    Section 6: "enough replications of each experiment so that the 95%
    confidence interval is within 1% of the point estimate of the mean" —
    applied to every job's response time under every policy (with a cap
    so pathological cases terminate; the paper does not state one).
    """
    if isinstance(mix, int):
        mix = MIXES[mix]
    if min_replications < 2:
        raise ValueError("need at least 2 replications to form an interval")
    if max_replications < min_replications:
        raise ValueError("max_replications must be >= min_replications")
    collected: typing.Dict[str, typing.Dict[str, typing.List[JobMetrics]]] = {
        policy.name: {} for policy in policies
    }
    for replication in range(max_replications):
        for policy in policies:
            result = run_mix(
                mix,
                policy,
                seed=base_seed + replication,
                n_processors=n_processors,
                machine=machine,
            )
            for name, metrics in result.jobs.items():
                collected[policy.name].setdefault(name, []).append(metrics)
        if replication + 1 >= min_replications and _all_converged(
            collected, target_relative
        ):
            break
    summaries = {
        policy_name: {
            name: _summarize(name, samples) for name, samples in jobs.items()
        }
        for policy_name, jobs in collected.items()
    }
    n_done = len(next(iter(next(iter(collected.values())).values())))
    return MixComparison(mix=mix, n_replications=n_done, summaries=summaries)


def _all_converged(
    collected: typing.Mapping[str, typing.Mapping[str, typing.List[JobMetrics]]],
    target_relative: float,
) -> bool:
    for jobs in collected.values():
        for samples in jobs.values():
            stats = SampleStats()
            for m in samples:
                stats.add(m.response_time)
            if stats.confidence_interval().relative_half_width() > target_relative:
                return False
    return True


def relative_response_times(
    comparison: MixComparison,
    baseline: str = "Equipartition",
) -> typing.Dict[str, typing.Dict[str, float]]:
    """Figure 5/6 data: RT relative to ``baseline``, per policy per job."""
    if baseline not in comparison.summaries:
        raise KeyError(f"baseline policy {baseline!r} was not run")
    out: typing.Dict[str, typing.Dict[str, float]] = {}
    for policy in comparison.policies():
        if policy == baseline:
            continue
        out[policy] = {
            job: comparison.relative_response_time(policy, job, baseline)
            for job in comparison.job_names()
        }
    return out
