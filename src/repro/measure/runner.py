"""Running workload mixes under policies (the Section 6 experiments).

Replications are independent simulations with deterministic seeds, so the
comparison drivers fan them out across CPU cores via
``repro.engine.parallel`` when asked (``workers=N``).  Results are always
committed in replication order and the paper's confidence stopping rule is
evaluated on the same prefixes a serial run examines, so worker count
never changes the summaries — only the wall clock.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

from repro.core.policies.base import Policy
from repro.core.system import JobMetrics, SchedulingSystem, SystemResult
from repro.engine.parallel import (
    BatchedConvergence,
    ConvergenceCriterion,
    map_replications,
    resolve_workers,
    run_replications,
)
from repro.engine.rng import RngRegistry
from repro.engine.stats import ConfidenceInterval, SampleStats
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.measure.workloads import MIXES, WorkloadMix, make_jobs
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import SpanProfiler
from repro.obs.telemetry import HeartbeatEmitter, TelemetryChannel, TelemetrySink

#: One replication's outcome: policy name -> job name -> metrics.
ReplicationResult = typing.Dict[str, typing.Dict[str, JobMetrics]]

#: Default processor count: the paper profiles and schedules on 16 of the
#: Symmetry's 20 processors (the rest ran the OS and the allocator).
DEFAULT_PROCESSORS = 16


def run_mix(
    mix: typing.Union[int, WorkloadMix],
    policy: Policy,
    seed: int = 0,
    n_processors: int = DEFAULT_PROCESSORS,
    machine: MachineSpec = SEQUENT_SYMMETRY,
    tracer: typing.Optional[object] = None,
    metrics: typing.Optional[MetricsRegistry] = None,
    profiler: typing.Optional[object] = None,
    heartbeat: typing.Optional[HeartbeatEmitter] = None,
) -> SystemResult:
    """Run one mix once under one policy; returns per-job metrics.

    The workload RNG stream is derived from ``seed`` but *not* from the
    policy, so different policies scheduling the same seed see the same
    jobs — the common-random-numbers pairing the paper's relative response
    times rely on.  ``tracer``/``metrics``/``profiler`` attach the
    observability layer to the run; all default to off (the null fast
    path).  ``heartbeat`` streams live progress snapshots (observation
    only — results are unchanged).
    """
    rng = RngRegistry(seed)
    jobs = make_jobs(mix, rng.spawn("workload"), n_processors=n_processors, machine=machine)
    system = SchedulingSystem(
        jobs,
        policy,
        machine=machine,
        n_processors=n_processors,
        seed=seed,
        rng=rng.spawn(f"system/{policy.name}"),
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )
    if heartbeat is not None:
        system.sim.add_trace_hook(heartbeat.engine_hook)
    result = system.run()
    if heartbeat is not None:
        heartbeat.finish(result.makespan)
    return result


@dataclasses.dataclass(frozen=True)
class JobSummary:
    """Replication-averaged metrics for one job under one policy."""

    name: str
    response_time: ConfidenceInterval
    n_reallocations: float
    pct_affinity: float
    reallocation_interval: float
    work: float
    waste: float
    average_allocation: float

    @property
    def app(self) -> str:
        """Application name (job name without instance suffix)."""
        return self.name.split("-")[0]


@dataclasses.dataclass(frozen=True)
class Replication:
    """One replication: per-job outcomes, plus optional metrics snapshots.

    ``metrics`` maps policy name to a :meth:`MetricsRegistry.snapshot`
    dict; it is empty unless the comparison was asked to collect metrics.
    ``profile`` maps policy name to a :meth:`SpanProfiler.snapshot` dict
    (wall-clock simulator self-profile; empty unless collected).
    """

    jobs: ReplicationResult
    metrics: typing.Dict[str, dict] = dataclasses.field(default_factory=dict)
    profile: typing.Dict[str, dict] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class MixComparison:
    """One mix run under several policies with replications."""

    mix: WorkloadMix
    n_replications: int
    summaries: typing.Dict[str, typing.Dict[str, JobSummary]]  # policy -> job -> summary
    #: policy -> merged metrics snapshot (empty unless collect_metrics)
    metrics: typing.Dict[str, dict] = dataclasses.field(default_factory=dict)
    #: policy -> merged wall-clock profile (empty unless collect_profile)
    profiles: typing.Dict[str, dict] = dataclasses.field(default_factory=dict)

    def policies(self) -> typing.List[str]:
        """Policy names present."""
        return list(self.summaries)

    def job_names(self) -> typing.List[str]:
        """Job names (consistent across policies)."""
        first = next(iter(self.summaries.values()))
        return list(first)

    def relative_response_time(self, policy: str, job: str, baseline: str) -> float:
        """RT under ``policy`` divided by RT under ``baseline`` for ``job``."""
        rt = self.summaries[policy][job].response_time.mean
        base = self.summaries[baseline][job].response_time.mean
        return rt / base

    def mean_response_time(self, policy: str) -> float:
        """Average of per-job mean response times under ``policy``."""
        jobs = self.summaries[policy]
        return sum(s.response_time.mean for s in jobs.values()) / len(jobs)


def _run_replication(
    mix: WorkloadMix,
    policies: typing.Tuple[Policy, ...],
    base_seed: int,
    n_processors: int,
    machine: MachineSpec,
    collect_metrics: bool,
    collect_profile: bool,
    replication: int,
    telemetry_sink: typing.Optional[TelemetrySink] = None,
) -> Replication:
    """One full replication: every policy on the shared seed ``base_seed + r``.

    Module-level (not a closure) so it pickles across the process boundary
    when the comparison drivers run with ``workers > 1``.  Keeping all
    policies of a replication in one task preserves the common-random-
    numbers pairing *within* the worker that runs them.  When metrics or
    profiles are collected, each policy gets a fresh registry/profiler and
    the snapshot travels home with the replication (snapshots are plain
    dicts, so they pickle).
    """
    jobs_out: ReplicationResult = {}
    metrics_out: typing.Dict[str, dict] = {}
    profile_out: typing.Dict[str, dict] = {}
    for policy in policies:
        registry = MetricsRegistry() if collect_metrics else None
        profiler = SpanProfiler() if collect_profile else None
        heartbeat = None
        if telemetry_sink is not None:
            heartbeat = HeartbeatEmitter(
                telemetry_sink,
                label=f"mix{mix.mix_id}/{policy.name}/rep{replication}",
            )
        result = run_mix(
            mix,
            policy,
            seed=base_seed + replication,
            n_processors=n_processors,
            machine=machine,
            metrics=registry,
            profiler=profiler,
            heartbeat=heartbeat,
        )
        jobs_out[policy.name] = dict(result.jobs)
        if registry is not None:
            metrics_out[policy.name] = registry.snapshot()
        if profiler is not None:
            profile_out[policy.name] = profiler.snapshot()
    return Replication(jobs=jobs_out, metrics=metrics_out, profile=profile_out)


def _collect(
    results: typing.Sequence[Replication],
) -> typing.Dict[str, typing.Dict[str, typing.List[JobMetrics]]]:
    """Regroup ordered replication results into policy -> job -> samples."""
    collected: typing.Dict[str, typing.Dict[str, typing.List[JobMetrics]]] = {}
    for result in results:
        for policy_name, jobs in result.jobs.items():
            per_job = collected.setdefault(policy_name, {})
            for name, metrics in jobs.items():
                per_job.setdefault(name, []).append(metrics)
    return collected


def _summaries_from(
    results: typing.Sequence[Replication],
) -> typing.Dict[str, typing.Dict[str, JobSummary]]:
    return {
        policy_name: {
            name: _summarize(name, samples) for name, samples in jobs.items()
        }
        for policy_name, jobs in _collect(results).items()
    }


def _merged_metrics(
    results: typing.Sequence[Replication],
) -> typing.Dict[str, dict]:
    """Merge per-replication snapshots, policy by policy.

    ``results`` is already in replication order (the parallel drivers
    commit in order), and :meth:`MetricsRegistry.merged` folds snapshots
    in the order given — so a ``workers=N`` comparison merges to exactly
    the snapshot a serial run produces.
    """
    per_policy: typing.Dict[str, typing.List[dict]] = {}
    for result in results:
        for policy_name, snapshot in result.metrics.items():
            per_policy.setdefault(policy_name, []).append(snapshot)
    return {
        name: MetricsRegistry.merged(snapshots)
        for name, snapshots in per_policy.items()
    }


def _merged_profiles(
    results: typing.Sequence[Replication],
) -> typing.Dict[str, dict]:
    """Merge per-replication wall-clock profiles, policy by policy.

    Unlike metrics, profile *values* are wall-clock measurements and vary
    run to run; only the span names and call counts are deterministic.
    """
    per_policy: typing.Dict[str, typing.List[dict]] = {}
    for result in results:
        for policy_name, snapshot in result.profile.items():
            per_policy.setdefault(policy_name, []).append(snapshot)
    return {
        name: SpanProfiler.merged(snapshots)
        for name, snapshots in per_policy.items()
    }


def comparison_from_replications(
    mix: typing.Union[int, WorkloadMix],
    replications: typing.Sequence[Replication],
) -> MixComparison:
    """Assemble a :class:`MixComparison` from pre-computed replications.

    The sweep layer's entry point: it reconstructs ``Replication``
    objects from cached cell payloads and summarizes them through the
    same ``_summaries_from`` / ``_merged_metrics`` / ``_merged_profiles``
    pipeline :func:`compare_policies` uses, so a cache-served comparison
    is byte-identical to a freshly run one.  ``replications`` must be in
    seed order (merge order is part of the determinism contract).
    """
    if isinstance(mix, int):
        mix = MIXES[mix]
    results = list(replications)
    if not results:
        raise ValueError("need at least one replication")
    return MixComparison(
        mix=mix,
        n_replications=len(results),
        summaries=_summaries_from(results),
        metrics=_merged_metrics(results),
        profiles=_merged_profiles(results),
    )


def compare_policies(
    mix: typing.Union[int, WorkloadMix],
    policies: typing.Sequence[Policy],
    replications: int = 5,
    base_seed: int = 0,
    n_processors: int = DEFAULT_PROCESSORS,
    machine: MachineSpec = SEQUENT_SYMMETRY,
    workers: typing.Optional[int] = None,
    collect_metrics: bool = False,
    collect_profile: bool = False,
    telemetry: typing.Optional[TelemetrySink] = None,
    on_commit: typing.Optional[typing.Callable[[int, Replication], None]] = None,
) -> MixComparison:
    """Run ``mix`` under each policy for ``replications`` seeds.

    Replication ``r`` of every policy shares workload seed ``base_seed + r``
    (common random numbers), following the paper's paired comparisons
    against Equipartition.  ``workers > 1`` fans the replications out over
    a process pool; each replication is deterministic in its seed, so the
    result is identical to a serial run.  ``collect_metrics`` attaches a
    fresh registry to every run and merges the per-replication snapshots
    (in replication order) into :attr:`MixComparison.metrics`;
    ``collect_profile`` does the same with a :class:`SpanProfiler` into
    :attr:`MixComparison.profiles`.
    """
    if isinstance(mix, int):
        mix = MIXES[mix]
    if replications < 1:
        raise ValueError("need at least one replication")
    channel = (
        TelemetryChannel(resolve_workers(workers), telemetry)
        if telemetry is not None
        else None
    )
    try:
        run_once = functools.partial(
            _run_replication,
            mix,
            tuple(policies),
            base_seed,
            n_processors,
            machine,
            collect_metrics,
            collect_profile,
            telemetry_sink=channel.sink if channel is not None else None,
        )
        results = map_replications(
            run_once, replications, workers=workers, on_commit=on_commit
        )
    finally:
        if channel is not None:
            channel.close()
    return MixComparison(
        mix=mix,
        n_replications=replications,
        summaries=_summaries_from(results),
        metrics=_merged_metrics(results),
        profiles=_merged_profiles(results),
    )


def _summarize(name: str, samples: typing.List[JobMetrics]) -> JobSummary:
    rt = SampleStats()
    for m in samples:
        rt.add(m.response_time)
    n = len(samples)
    return JobSummary(
        name=name,
        response_time=rt.confidence_interval(),
        n_reallocations=sum(m.n_reallocations for m in samples) / n,
        pct_affinity=sum(m.pct_affinity for m in samples) / n,
        reallocation_interval=sum(m.reallocation_interval for m in samples) / n,
        work=sum(m.work for m in samples) / n,
        waste=sum(m.waste for m in samples) / n,
        average_allocation=sum(m.average_allocation for m in samples) / n,
    )


def _response_times(result: Replication) -> typing.Dict[str, float]:
    """Flatten one replication into the metrics the stopping rule tracks."""
    return {
        f"{policy_name}/{job_name}": metrics.response_time
        for policy_name, jobs in result.jobs.items()
        for job_name, metrics in jobs.items()
    }


def compare_policies_to_confidence(
    mix: typing.Union[int, WorkloadMix],
    policies: typing.Sequence[Policy],
    target_relative: float = 0.01,
    min_replications: int = 3,
    max_replications: int = 50,
    base_seed: int = 0,
    n_processors: int = DEFAULT_PROCESSORS,
    machine: MachineSpec = SEQUENT_SYMMETRY,
    workers: typing.Optional[int] = None,
    target_absolute: typing.Optional[float] = None,
    collect_metrics: bool = False,
    collect_profile: bool = False,
    telemetry: typing.Optional[TelemetrySink] = None,
    on_commit: typing.Optional[typing.Callable[[int, Replication], None]] = None,
) -> MixComparison:
    """Run replications until the paper's confidence criterion is met.

    Section 6: "enough replications of each experiment so that the 95%
    confidence interval is within 1% of the point estimate of the mean" —
    applied to every job's response time under every policy (with a cap
    so pathological cases terminate; the paper does not state one, and an
    absolute half-width tolerance ``target_absolute`` so that a degenerate
    zero-mean metric cannot stall convergence forever).

    ``workers > 1`` runs replications concurrently in a process pool while
    committing results in replication order and checking convergence on
    exactly the prefixes a serial run would, so the summaries are identical
    for the same ``base_seed`` regardless of worker count.
    """
    if isinstance(mix, int):
        mix = MIXES[mix]
    if min_replications < 2:
        raise ValueError("need at least 2 replications to form an interval")
    if max_replications < min_replications:
        raise ValueError("max_replications must be >= min_replications")
    criterion = (
        ConvergenceCriterion(target_relative)
        if target_absolute is None
        else ConvergenceCriterion(target_relative, target_absolute)
    )
    check: BatchedConvergence = BatchedConvergence(_response_times, criterion)
    channel = (
        TelemetryChannel(resolve_workers(workers), telemetry)
        if telemetry is not None
        else None
    )
    try:
        run_once = functools.partial(
            _run_replication,
            mix,
            tuple(policies),
            base_seed,
            n_processors,
            machine,
            collect_metrics,
            collect_profile,
            telemetry_sink=channel.sink if channel is not None else None,
        )
        results = run_replications(
            run_once,
            min_replications,
            max_replications,
            check,
            workers=workers,
            on_commit=on_commit,
        )
    finally:
        if channel is not None:
            channel.close()
    return MixComparison(
        mix=mix,
        n_replications=len(results),
        summaries=_summaries_from(results),
        metrics=_merged_metrics(results),
        profiles=_merged_profiles(results),
    )


def relative_response_times(
    comparison: MixComparison,
    baseline: str = "Equipartition",
) -> typing.Dict[str, typing.Dict[str, float]]:
    """Figure 5/6 data: RT relative to ``baseline``, per policy per job."""
    if baseline not in comparison.summaries:
        raise KeyError(f"baseline policy {baseline!r} was not run")
    out: typing.Dict[str, typing.Dict[str, float]] = {}
    for policy in comparison.policies():
        if policy == baseline:
            continue
        out[policy] = {
            job: comparison.relative_response_time(policy, job, baseline)
            for job in comparison.job_names()
        }
    return out
