"""Penalty vs number of intervening tasks: measuring S&L's survival ratio.

The Squillante & Lazowska model (implemented in
:mod:`repro.model.affinity_queueing`) parameterizes cache decay with a
single survival ratio: a footprint shrinks by a factor of ``sigma`` per
intervening dispatch, so the reload after ``j`` intervening tasks is
``footprint x (1 - sigma^j)``.  The paper argues with their *assumed*
values ("they assume that a task returning to a processor will find
useful data remaining in the cache even after many intervening tasks");
this experiment *measures* sigma on the cache simulator instead.

Extension of the Section 4 experiment: the multiprog regime runs ``k``
distinct intervening tasks (each for duration Q) between dispatches of
the measured program, for ``k = 0, 1, 2, ...``.  ``k = 0`` is the
stationary regime; large ``k`` approaches the migrating (full flush)
regime.  Fitting ``P^A(k) = P^NA x (1 - sigma^k)`` yields the measured
survival ratio — which can then be compared with the value that makes
affinity "pronounced" in the queueing model.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.apps.base import AppSpec
from repro.apps.reference import ReferenceGenerator, reduced_machine
from repro.engine.rng import RngRegistry
from repro.machine.batching import batch_limit, worst_touch_cost
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.machine.processor import Processor


@dataclasses.dataclass(frozen=True)
class InterveningResult:
    """Penalties as a function of the intervening-task count."""

    app: str
    q_s: float
    #: per-switch penalty (seconds) indexed by intervening count k
    penalty_by_k: typing.Dict[int, float]
    #: the k = infinity reference: full flush (P^NA)
    p_na_s: float

    def survival_after(self, k: int) -> float:
        """Estimated fraction of the footprint surviving ``k`` interveners."""
        if self.p_na_s <= 0:
            return 1.0
        return max(0.0, 1.0 - self.penalty_by_k[k] / self.p_na_s)

    def fitted_sigma(self) -> float:
        """Least-squares fit of ``survival(k) = sigma^k`` on k >= 1.

        Fits in log space over the ks whose survival is positive; returns
        0.0 if nothing survives even one intervener.
        """
        points = [
            (k, self.survival_after(k))
            for k in sorted(self.penalty_by_k)
            if k >= 1 and self.survival_after(k) > 0.0
        ]
        if not points:
            return 0.0
        # ln(survival) = k ln(sigma): slope through the origin.
        numerator = sum(k * math.log(s) for k, s in points)
        denominator = sum(k * k for k, _ in points)
        return math.exp(numerator / denominator)


class InterveningExperiment:
    """Measure P^A as a function of how many tasks intervene."""

    def __init__(
        self,
        machine: MachineSpec = SEQUENT_SYMMETRY,
        scale: int = 16,
        n_switches_target: int = 30,
        seed: int = 0,
        backend: typing.Optional[str] = None,
    ) -> None:
        self.machine = reduced_machine(machine, scale)
        self.scale = scale
        self.n_switches_target = n_switches_target
        self.seed = seed
        #: engine for the regime processors' caches *and* the reference
        #: generators (None = env var/default)
        self.backend = backend

    def measure(
        self,
        app: AppSpec,
        partner: AppSpec,
        q_s: float = 0.100,
        max_intervening: int = 4,
    ) -> InterveningResult:
        """Penalty per switch for 0..``max_intervening`` intervening tasks."""
        if max_intervening < 1:
            raise ValueError("need at least one intervening count")
        baseline = self._run(app, partner, q_s, n_intervening=0)
        penalties: typing.Dict[int, float] = {0: 0.0}
        for k in range(1, max_intervening + 1):
            rt, switches = self._run(app, partner, q_s, n_intervening=k)
            penalties[k] = max(0.0, (rt - baseline[0]) / max(1, switches))
        flushed_rt, flushed_switches = self._run(
            app, partner, q_s, n_intervening=-1
        )
        p_na = max(0.0, (flushed_rt - baseline[0]) / max(1, flushed_switches))
        return InterveningResult(
            app=app.name, q_s=q_s, penalty_by_k=penalties, p_na_s=p_na
        )

    def _run(
        self,
        app: AppSpec,
        partner: AppSpec,
        q_s: float,
        n_intervening: int,
    ) -> typing.Tuple[float, int]:
        """One run; ``n_intervening = -1`` means flush (the P^NA reference)."""
        rng = RngRegistry(self.seed).spawn(f"{app.name}/{q_s:g}")
        app_ref = app.reference.reduced(self.scale)
        partner_ref = partner.reference.reduced(self.scale)
        gen = ReferenceGenerator(app_ref, rng.stream("app"), backend=self.backend)
        # Fused path: numpy generators hand int64 arrays to touch_batch.
        draw = gen.next_blocks_array if gen.backend_name == "numpy" else gen.next_blocks
        intervening = [
            ReferenceGenerator(
                partner_ref, rng.stream(f"partner{i}"), backend=self.backend
            )
            for i in range(max(0, n_intervening))
        ]
        intervening_draws = [
            g.next_blocks_array if g.backend_name == "numpy" else g.next_blocks
            for g in intervening
        ]
        proc = Processor(0, self.machine, backend=self.backend)
        per_touch = app_ref.refs_per_touch * self.machine.hit_time_s
        total_seconds = max(2.0, self.n_switches_target * q_s)
        n_touches = int(total_seconds / per_touch)
        # Chunked driver; see repro.machine.batching for why chunk sizing
        # keeps rescheduling points identical to the touch-by-touch loop.
        app_worst = worst_touch_cost(
            self.machine.miss_time_s, self.machine.hit_time_s, app_ref.refs_per_touch
        )
        partner_worst = worst_touch_cost(
            self.machine.miss_time_s,
            self.machine.hit_time_s,
            partner_ref.refs_per_touch,
        )
        response_time = 0.0
        slice_left = q_s
        switches = 0
        remaining = n_touches
        while remaining:
            n = min(remaining, batch_limit(slice_left, app_worst))
            cost = proc.touch_batch("measured", draw(n), app_ref.refs_per_touch)
            response_time += cost
            slice_left -= cost
            remaining -= n
            if slice_left <= 0.0:
                switches += 1
                slice_left = q_s
                if n_intervening < 0:
                    proc.flush_cache()
                else:
                    for index, partner_draw in enumerate(intervening_draws):
                        budget = q_s
                        while budget > 0.0:
                            k = batch_limit(budget, partner_worst)
                            budget -= proc.touch_batch(
                                f"partner{index}",
                                partner_draw(k),
                                partner_ref.refs_per_touch,
                            )
        return response_time, switches
