"""The Section 4 cache-penalty measurement (Table 1).

The paper's experiment: run each program on a single processor under a
special allocator that reschedules it every Q ms, taking one of three
actions at each rescheduling point:

* **stationary** — immediately replace the program (baseline);
* **migrating** — flush the cache, then replace (captures ``P^NA``, the
  penalty of resuming where the task has no affinity);
* **multiprog** — run a task from another program for duration Q, then
  replace (captures ``P^A``, the penalty of resuming with affinity after
  an intervening task).

Then::

    P^NA = (RT_migrating - RT_stationary) / #switches
    P^A  = (RT_multiprog - RT_stationary) / #switches

We reproduce the experiment on the stateful cache simulator.  Every regime
executes the *identical* touch sequence for the measured program (common
random numbers), so response time differences are purely miss-pattern
differences, exactly as on the real machine.

Fidelity scaling: the experiment runs by default at 1/16 scale — cache
and working sets shrink 16x while the per-miss time grows 16x, leaving all
penalties in *seconds* unchanged (see :func:`repro.apps.reference.reduced_machine`).
The regime loops drive the simulator in chunks
(:mod:`repro.machine.batching`) rather than one touch at a time, which
makes the full-fidelity ``scale=1`` run feasible too — the CLI exposes it
via ``--scale 1``.  Tests validate that scale does not bias the measured
penalties.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.apps.base import AppSpec
from repro.apps.reference import ReferenceGenerator, reduced_machine
from repro.engine.rng import RngRegistry
from repro.machine.batching import batch_limit, worst_touch_cost
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.machine.processor import Processor

#: The paper's rescheduling intervals: a typical I/O wait, the DYNIX time
#: sharing quantum, and a rough dynamic space-sharing reallocation interval.
PAPER_QUANTA_S = (0.025, 0.100, 0.400)


@dataclasses.dataclass(frozen=True)
class RegimeRun:
    """Outcome of running the measured program under one regime."""

    response_time: float
    n_switches: int
    hit_rate: float


@dataclasses.dataclass(frozen=True)
class PenaltyResult:
    """Measured penalties for one (application, Q) pair."""

    app: str
    q_s: float
    stationary: RegimeRun
    migrating: RegimeRun
    multiprog: typing.Dict[str, RegimeRun]

    @property
    def p_na_s(self) -> float:
        """``P^NA`` in seconds per switch."""
        extra = self.migrating.response_time - self.stationary.response_time
        return extra / max(1, self.migrating.n_switches)

    def p_a_s(self, partner: str) -> float:
        """``P^A`` in seconds per switch, against ``partner``'s interference."""
        run = self.multiprog[partner]
        extra = run.response_time - self.stationary.response_time
        return extra / max(1, run.n_switches)

    @property
    def p_na_us(self) -> float:
        """``P^NA`` in microseconds (Table 1's unit)."""
        return self.p_na_s * 1e6

    def p_a_us(self, partner: str) -> float:
        """``P^A`` in microseconds (Table 1's unit)."""
        return self.p_a_s(partner) * 1e6


@dataclasses.dataclass(frozen=True)
class PenaltyTable:
    """The full Table 1: results per app per Q."""

    results: typing.Dict[typing.Tuple[str, float], PenaltyResult]
    partner_names: typing.Tuple[str, ...]

    def result(self, app: str, q_s: float) -> PenaltyResult:
        """Lookup one cell group."""
        return self.results[(app, q_s)]

    def quanta(self) -> typing.List[float]:
        """Distinct Q values present, sorted."""
        return sorted({q for (_, q) in self.results})

    def apps(self) -> typing.List[str]:
        """Distinct measured applications, in first-seen order."""
        seen: typing.List[str] = []
        for app, _ in self.results:
            if app not in seen:
                seen.append(app)
        return seen


class PenaltyExperiment:
    """Single-processor Q-rescheduling measurement on the cache simulator."""

    def __init__(
        self,
        machine: MachineSpec = SEQUENT_SYMMETRY,
        scale: int = 16,
        n_switches_target: int = 40,
        min_run_s: float = 2.0,
        seed: int = 0,
        tracer: typing.Optional[object] = None,
        metrics: typing.Optional[object] = None,
        profiler: typing.Optional[object] = None,
        backend: typing.Optional[str] = None,
    ) -> None:
        if n_switches_target < 2:
            raise ValueError("need at least 2 switches for a measurement")
        self.machine = reduced_machine(machine, scale)
        self.scale = scale
        self.n_switches_target = n_switches_target
        self.min_run_s = min_run_s
        self.seed = seed
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        #: engine for the regime processors' caches *and* the reference
        #: generators (None = env var/default)
        self.backend = backend

    # ------------------------------------------------------------------ #

    def _touch_count(self, app: AppSpec, q_s: float) -> int:
        """Touches amounting to ~n_switches_target slices of hit-speed work."""
        ref = app.reference.reduced(self.scale)
        total_seconds = max(self.min_run_s, self.n_switches_target * q_s)
        per_touch = ref.refs_per_touch * self.machine.hit_time_s
        return int(total_seconds / per_touch)

    def _run_regime(
        self,
        app: AppSpec,
        q_s: float,
        regime: str,
        partner: typing.Optional[AppSpec],
        n_touches: int,
    ) -> RegimeRun:
        """Execute the measured program once under one regime."""
        rng = RngRegistry(self.seed).spawn(f"{app.name}/q{q_s:g}")
        app_ref = app.reference.reduced(self.scale)
        gen = ReferenceGenerator(app_ref, rng.stream("app"), backend=self.backend)
        # Fused path: the numpy engine's native int64 array feeds
        # Processor.touch_batch (and the numpy cache) without ever
        # building a Python list.
        draw = gen.next_blocks_array if gen.backend_name == "numpy" else gen.next_blocks
        partner_gen = None
        partner_ref = None
        partner_draw = None
        if partner is not None:
            partner_ref = partner.reference.reduced(self.scale)
            partner_gen = ReferenceGenerator(
                partner_ref, rng.stream("partner"), backend=self.backend
            )
            partner_draw = (
                partner_gen.next_blocks_array
                if partner_gen.backend_name == "numpy"
                else partner_gen.next_blocks
            )

        proc = Processor(0, self.machine, tracer=self.tracer, backend=self.backend)
        prof = self.profiler
        profiling = prof is not None and prof.enabled  # type: ignore[attr-defined]
        if profiling:
            proc.attach_profiler(prof)
            prof.push(f"penalty/{regime}")  # type: ignore[attr-defined]
        machine = self.machine
        # Chunked driver: play the largest chunk guaranteed not to cross
        # the slice boundary before its final touch, so rescheduling
        # points land exactly where the touch-by-touch loop put them.
        app_worst = worst_touch_cost(
            machine.miss_time_s, machine.hit_time_s, app_ref.refs_per_touch
        )
        partner_worst = (
            worst_touch_cost(
                machine.miss_time_s, machine.hit_time_s, partner_ref.refs_per_touch
            )
            if partner_ref is not None
            else 0.0
        )
        response_time = 0.0
        slice_left = q_s
        switches = 0
        remaining = n_touches
        while remaining:
            n = min(remaining, batch_limit(slice_left, app_worst))
            if profiling:
                prof.push("generator")  # type: ignore[attr-defined]
                blocks = draw(n)
                prof.pop()  # type: ignore[attr-defined]
            else:
                blocks = draw(n)
            cost = proc.touch_batch("measured", blocks, app_ref.refs_per_touch)
            response_time += cost
            slice_left -= cost
            remaining -= n
            if slice_left <= 0.0:
                switches += 1
                slice_left = q_s
                if regime == "migrating":
                    proc.flush_cache()
                elif regime == "multiprog":
                    assert partner_draw is not None and partner_ref is not None
                    budget = q_s
                    while budget > 0.0:
                        k = batch_limit(budget, partner_worst)
                        if profiling:
                            prof.push("generator")  # type: ignore[attr-defined]
                            partner_blocks = partner_draw(k)
                            prof.pop()  # type: ignore[attr-defined]
                        else:
                            partner_blocks = partner_draw(k)
                        budget -= proc.touch_batch(
                            "partner",
                            partner_blocks,
                            partner_ref.refs_per_touch,
                        )
        if profiling:
            prof.pop()  # type: ignore[attr-defined]
        if self.metrics is not None:
            metrics = self.metrics
            stats = proc.cache.stats
            metrics.counter("penalty/cache_hits").inc(stats.hits)
            metrics.counter("penalty/cache_misses").inc(stats.misses)
            metrics.counter("penalty/switches").inc(switches)
            metrics.counter("penalty/touches").inc(n_touches)
            metrics.histogram("penalty/regime_response_s").observe(response_time)
        return RegimeRun(
            response_time=response_time,
            n_switches=switches,
            hit_rate=proc.cache.stats.hit_rate,
        )

    def measure(
        self,
        app: AppSpec,
        q_s: float,
        partners: typing.Sequence[AppSpec],
    ) -> PenaltyResult:
        """Measure ``P^NA`` and ``P^A`` (one per partner) for ``app`` at Q."""
        if q_s <= 0:
            raise ValueError("Q must be positive")
        n_touches = self._touch_count(app, q_s)
        stationary = self._run_regime(app, q_s, "stationary", None, n_touches)
        migrating = self._run_regime(app, q_s, "migrating", None, n_touches)
        multiprog = {
            partner.name: self._run_regime(app, q_s, "multiprog", partner, n_touches)
            for partner in partners
        }
        return PenaltyResult(
            app=app.name,
            q_s=q_s,
            stationary=stationary,
            migrating=migrating,
            multiprog=multiprog,
        )

    def table1(
        self,
        apps: typing.Sequence[AppSpec],
        quanta: typing.Sequence[float] = PAPER_QUANTA_S,
    ) -> PenaltyTable:
        """Reproduce the whole of Table 1 for ``apps`` x ``quanta``."""
        results = {}
        for app in apps:
            for q_s in quanta:
                results[(app.name, q_s)] = self.measure(app, q_s, partners=apps)
        return PenaltyTable(
            results=results, partner_names=tuple(a.name for a in apps)
        )
