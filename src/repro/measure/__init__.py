"""Experiment harnesses: Section 4 penalty measurement and Section 6 runs."""

from repro.measure.bus_analysis import BusLoadEstimate, estimate_bus_load
from repro.measure.intervening import InterveningExperiment, InterveningResult
from repro.measure.penalty import PenaltyExperiment, PenaltyResult, PenaltyTable
from repro.measure.runner import (
    MixComparison,
    compare_policies,
    compare_policies_to_confidence,
    relative_response_times,
    run_mix,
)
from repro.measure.workloads import MIXES, WorkloadMix, make_jobs

__all__ = [
    "BusLoadEstimate",
    "InterveningExperiment",
    "InterveningResult",
    "MIXES",
    "MixComparison",
    "PenaltyExperiment",
    "PenaltyResult",
    "PenaltyTable",
    "WorkloadMix",
    "compare_policies",
    "compare_policies_to_confidence",
    "estimate_bus_load",
    "make_jobs",
    "relative_response_times",
    "run_mix",
]
