"""The six workload mixes of Table 2.

========  ====  ====  ====  ====  ====  ====
app        #1    #2    #3    #4    #5    #6
========  ====  ====  ====  ====  ====  ====
MVA         2     1     1     0     0     1
MATRIX      0     1     0     0     1     1
GRAVITY     0     0     1     2     1     1
========  ====  ====  ====  ====  ====  ====

Workload #1 is a light load; #2 pairs dynamically-changing parallelism
(MVA) with massive constant parallelism (MATRIX); #3 and #4 are moderate
loads needing more frequent reallocation; #5 and #6 are reasonably heavy
loads with quickly changing parallelisms.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.apps import APPLICATIONS, AppSpec
from repro.engine.rng import RngRegistry
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.threads.job import Job


@dataclasses.dataclass(frozen=True)
class WorkloadMix:
    """A named multiset of applications."""

    mix_id: int
    copies: typing.Mapping[str, int]
    note: str = ""

    @property
    def is_homogeneous(self) -> bool:
        """True when every job is an instance of the same application."""
        present = [app for app, n in self.copies.items() if n > 0]
        return len(present) == 1

    @property
    def n_jobs(self) -> int:
        """Total job count."""
        return sum(self.copies.values())

    def app_names(self) -> typing.List[str]:
        """Application names with at least one copy, in table row order."""
        return [app for app in ("MVA", "MATRIX", "GRAVITY") if self.copies.get(app, 0)]


#: Table 2, verbatim.
MIXES: typing.Dict[int, WorkloadMix] = {
    1: WorkloadMix(1, {"MVA": 2, "MATRIX": 0, "GRAVITY": 0}, "light load"),
    2: WorkloadMix(2, {"MVA": 1, "MATRIX": 1, "GRAVITY": 0}, "changing vs massive parallelism"),
    3: WorkloadMix(3, {"MVA": 1, "MATRIX": 0, "GRAVITY": 1}, "moderate load"),
    4: WorkloadMix(4, {"MVA": 0, "MATRIX": 0, "GRAVITY": 2}, "moderate load"),
    5: WorkloadMix(5, {"MVA": 0, "MATRIX": 1, "GRAVITY": 1}, "heavy, quickly changing"),
    6: WorkloadMix(6, {"MVA": 1, "MATRIX": 1, "GRAVITY": 1}, "heavy, quickly changing"),
}


def make_jobs(
    mix: typing.Union[int, WorkloadMix],
    rng: RngRegistry,
    n_processors: int = 16,
    machine: MachineSpec = SEQUENT_SYMMETRY,
    applications: typing.Optional[typing.Mapping[str, AppSpec]] = None,
) -> typing.List[Job]:
    """Instantiate the jobs of a mix.

    Job names follow the paper's convention: the bare application name for
    the first copy, ``NAME-1`` etc. for additional copies.
    """
    if isinstance(mix, int):
        mix = MIXES[mix]
    apps = applications if applications is not None else APPLICATIONS
    jobs: typing.List[Job] = []
    for app_name in ("MVA", "MATRIX", "GRAVITY"):
        copies = mix.copies.get(app_name, 0)
        if copies and app_name not in apps:
            raise KeyError(f"unknown application {app_name!r}")
        for instance in range(copies):
            spec = apps[app_name]
            job_rng = rng.stream(f"job/{app_name}/{instance}")
            jobs.append(
                spec.make_job(
                    job_rng,
                    instance=instance,
                    n_processors=n_processors,
                    machine=machine,
                )
            )
    if not jobs:
        raise ValueError(f"mix {mix.mix_id} contains no jobs")
    return jobs
