"""Crash-safe artifact writes: same-directory temp file + atomic rename.

Every result artifact this repository produces — JSONL and columnar
traces, metric snapshots, CSV exports, sweep-cache cells — goes through
this module.  The contract is all-or-nothing at the destination path: a
reader either sees the complete new artifact or whatever was there
before, never a truncated hybrid.  A process killed mid-write leaves at
most an orphaned ``.tmp-*`` file *next to* the destination (same
directory, so the final :func:`os.replace` is a same-filesystem rename
and therefore atomic on POSIX), and never a damaged artifact *at* it.

The loaders in this repo already refuse truncated artifacts loudly;
atomic writes close the other half of the crash-safety story — the
artifact you spent an hour computing is not destroyed by the crash that
interrupted its rewrite.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import typing

#: Prefix for in-flight temp files (orphans are harmless and greppable).
TMP_PREFIX = ".tmp-"


@contextlib.contextmanager
def atomic_open(
    path: str, mode: str = "w", encoding: typing.Optional[str] = None
) -> typing.Iterator[typing.IO]:
    """Open a handle whose contents reach ``path`` only on clean exit.

    Writes go to a ``.tmp-*`` file in the destination's directory; on a
    clean ``with`` exit the temp file is flushed, fsynced, and renamed
    over ``path`` with :func:`os.replace` (atomic within a filesystem).
    On an exception — or a SIGKILL, which never runs the rename — the
    destination is untouched and the temp file is removed (or orphaned,
    for a hard kill).

    ``mode`` must be a write mode (``"w"``, ``"wb"``); text mode
    defaults to UTF-8.
    """
    if "w" not in mode:
        raise ValueError(f"atomic_open needs a write mode, got {mode!r}")
    if "b" not in mode and encoding is None:
        encoding = "utf-8"
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=TMP_PREFIX + os.path.basename(path) + "-", dir=directory
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding, newline="" if "b" not in mode else None) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` all-or-nothing (temp file + rename)."""
    with atomic_open(path, "w", encoding=encoding) as handle:
        handle.write(text)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` all-or-nothing (temp file + rename)."""
    with atomic_open(path, "wb") as handle:
        handle.write(data)
