"""The adaptive priority scheme of [McCann et al. 91] (abbreviated).

The paper gives only a summary (its footnote 3): "Each job is assigned a
priority level that depends on its processor usage to that time.  Job
priorities are set using a scheme that raises them as a 'reward' for using
few processors and lowers them as a result of using many.  In this way, a
job acquires credit during periods when it uses few processors.  The job
may later spend these credits to obtain temporarily more than its fair
share of processors."

We implement that summary directly: each job carries a *credit* measured in
processor-seconds, integrating ``(equal_share - current_allocation)`` over
time, clamped to a window so neither credit nor debt grows without bound.
Priority order is credit order.  Rule D.3 preemption is allowed either to
restore parity (victim holds at least two more processors than the
requester) or as *credit spending*: a requester may take processors beyond
parity while its credit exceeds the victim's by a margin that grows with
each processor beyond parity, which bounds burst sizes by banked credit.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.threads.job import Job


class CreditScheduler:
    """Tracks per-job credits and answers the policy's priority questions."""

    #: credit window, in processor-seconds: |credit| never exceeds this
    CREDIT_CAP = 8.0
    #: extra credit advantage required per processor taken beyond parity
    SPEND_MARGIN = 0.5
    #: slack when comparing priorities "as high as" (rule A.1's gate)
    EQUALITY_TOLERANCE = 0.25

    def __init__(self, n_processors: int) -> None:
        if n_processors <= 0:
            raise ValueError("need at least one processor")
        self.n_processors = n_processors
        self._credit: typing.Dict[str, float] = {}
        self._last_update: typing.Dict[str, float] = {}
        self._allocation: typing.Dict[str, int] = {}
        self._live_jobs = 0

    # ------------------------------------------------------------------ #
    # bookkeeping

    def job_arrived(self, job: "Job", now: float) -> None:
        """Begin tracking ``job`` with zero credit."""
        self._credit[job.name] = 0.0
        self._last_update[job.name] = now
        self._allocation[job.name] = 0
        self._live_jobs += 1

    def job_departed(self, job: "Job", now: float) -> None:
        """Stop tracking a completed job."""
        self.refresh(job, now)
        self._credit.pop(job.name, None)
        self._last_update.pop(job.name, None)
        self._allocation.pop(job.name, None)
        self._live_jobs -= 1

    def equal_share(self) -> float:
        """Fair per-job share of the machine at this instant."""
        if self._live_jobs == 0:
            return float(self.n_processors)
        return self.n_processors / self._live_jobs

    def refresh(self, job: "Job", now: float) -> None:
        """Integrate the credit of ``job`` up to ``now``."""
        name = job.name
        if name not in self._credit:
            return
        elapsed = now - self._last_update[name]
        if elapsed > 0:
            delta = (self.equal_share() - self._allocation[name]) * elapsed
            credit = self._credit[name] + delta
            self._credit[name] = max(-self.CREDIT_CAP, min(self.CREDIT_CAP, credit))
        self._last_update[name] = now

    def set_allocation(self, job: "Job", allocation: int, now: float) -> None:
        """Record an allocation change (after integrating up to ``now``)."""
        if allocation < 0:
            raise ValueError("allocation cannot be negative")
        self.refresh(job, now)
        self._allocation[job.name] = allocation

    def credit(self, job: "Job") -> float:
        """Current banked credit of ``job`` (0.0 if untracked)."""
        return self._credit.get(job.name, 0.0)

    # ------------------------------------------------------------------ #
    # policy questions

    def priority_order(self, jobs: typing.Iterable["Job"], now: float) -> typing.List["Job"]:
        """Jobs sorted most-deserving first (highest credit; name tie-break)."""
        jobs = list(jobs)
        for job in jobs:
            self.refresh(job, now)
        return sorted(jobs, key=lambda j: (-self.credit(j), j.name))

    def at_least_as_deserving(self, job: "Job", others: typing.Iterable["Job"]) -> bool:
        """Rule A.1's gate: is ``job``'s priority as high as any requester's?"""
        mine = self.credit(job)
        return all(
            mine >= self.credit(other) - self.EQUALITY_TOLERANCE for other in others
        )

    def may_preempt(
        self,
        requester: "Job",
        requester_allocation: int,
        victim: "Job",
        victim_allocation: int,
    ) -> bool:
        """Rule D.3: may ``requester`` take one processor from ``victim``?

        Parity restoration is always allowed; going beyond parity requires
        spending banked credit, with the required advantage growing per
        processor beyond parity.
        """
        if victim_allocation <= 1:
            return False
        if victim_allocation > requester_allocation + 1:
            return True
        beyond_parity = requester_allocation - victim_allocation + 2
        needed = beyond_parity * self.SPEND_MARGIN
        return self.credit(requester) - self.credit(victim) > needed

    def __repr__(self) -> str:
        return f"CreditScheduler(jobs={self._live_jobs}, share={self.equal_share():.2f})"
