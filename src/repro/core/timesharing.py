"""A quantum-driven time-sharing scheduler: the related-work baseline.

Section 8 of the paper reconciles its "affinity barely matters" result
with earlier work ([Squillante & Lazowska 89], [Mogul & Borg 91]) that
found large affinity effects: those studies examined *time sharing*
policies, which rotate processors among jobs on quantum expiry.  Time
sharing maximizes the damage of multiprogramming — reallocation is
frequent and involuntary, tasks are interrupted mid-computation (so the
data they need across the switch is large), and jobs continually
overwrite each other's cache contexts.

This module implements that baseline so the contrast can be measured
rather than argued: a round-robin scheduler with a DYNIX-style quantum,
in a plain and an affinity-aware variant.  The benchmark suite shows that
affinity scheduling helps markedly here while remaining irrelevant under
the space-sharing policies — the paper's explanation, reproduced.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.core.system import JobMetrics, SystemResult
from repro.engine.rng import RngRegistry
from repro.engine.simulator import Simulator
from repro.machine.footprint import FootprintModel
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.threads.job import Job
from repro.threads.workers import WorkerState, WorkerTask

#: DYNIX used a 100 ms quantum (paper, footnote 2).
DYNIX_QUANTUM_S = 0.100


@dataclasses.dataclass(frozen=True)
class TimeSharingPolicy:
    """Configuration of the time-sharing baseline."""

    name: str
    quantum_s: float = DYNIX_QUANTUM_S
    #: prefer dispatching the queued task that last ran on the processor
    use_affinity: bool = False
    #: how deep into the run queue the affinity search may look
    affinity_search_depth: int = 8
    #: a queued task skipped this many times must be dispatched next
    #: (aging — without it, affinity search starves tasks whose affine
    #: processor never comes up, per [Squillante & Lazowska 89])
    max_skips: int = 4

    def __post_init__(self) -> None:
        if self.quantum_s <= 0:
            raise ValueError("quantum must be positive")
        if self.affinity_search_depth < 1:
            raise ValueError("affinity_search_depth must be at least 1")
        if self.max_skips < 1:
            raise ValueError("max_skips must be at least 1")


TIME_SHARING = TimeSharingPolicy(name="TimeSharing")
TIME_SHARING_AFFINITY = TimeSharingPolicy(name="TimeSharing-Aff", use_affinity=True)


class TimeSharingSystem:
    """Round-robin quantum scheduling of jobs' worker tasks.

    Workers enter a global FIFO run queue.  Each processor runs one worker
    at a time; on quantum expiry the worker is preempted and requeued at
    the tail (an *involuntary* switch), and on running out of work it
    leaves the queue (a *voluntary* one).  Dispatches pay the kernel
    switch path plus the footprint model's cache reload penalty, exactly
    like the space-sharing system, so results are directly comparable.
    """

    def __init__(
        self,
        jobs: typing.Sequence[Job],
        policy: TimeSharingPolicy = TIME_SHARING,
        machine: MachineSpec = SEQUENT_SYMMETRY,
        n_processors: int = 16,
        seed: int = 0,
        rng: typing.Optional[RngRegistry] = None,
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")
        self.sim = Simulator(rng=rng, seed=seed)
        self.policy = policy
        self.machine = machine
        self.jobs = list(jobs)
        self.footprint = FootprintModel(machine)
        self.n_processors = n_processors
        self.run_queue: typing.Deque[WorkerTask] = collections.deque()
        self._on_cpu: typing.List[typing.Optional[WorkerTask]] = [None] * n_processors
        self._quantum_handles: typing.List[typing.Optional[object]] = [None] * n_processors
        self._alloc_mark: typing.Dict[str, float] = {}
        self._alloc_count: typing.Dict[str, int] = {}
        self._skips: typing.Dict[typing.Tuple[str, int], int] = {}
        self._finished = 0
        self.involuntary_switches = 0
        self.voluntary_switches = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    # ------------------------------------------------------------------ #

    def run(self) -> SystemResult:
        """Execute all jobs to completion."""
        self.sim.at(0.0, self._start, label="start")
        self.sim.run()
        if self._finished != len(self.jobs):
            unfinished = [j.name for j in self.jobs if not j.finished]
            raise RuntimeError(f"time-sharing run stalled: {unfinished}")
        return SystemResult(
            policy=self.policy.name,
            n_processors=self.n_processors,
            seed=self.sim.rng.master_seed,
            makespan=self.now,
            jobs={job.name: self._metrics(job) for job in self.jobs},
        )

    def _start(self) -> None:
        for job in self.jobs:
            job.start(self.now)
            self._alloc_mark[job.name] = self.now
            self._alloc_count[job.name] = 0
            self._enqueue_ready_workers(job)
        for cpu in range(self.n_processors):
            self._dispatch_next(cpu)

    # ------------------------------------------------------------------ #
    # queue management

    def _enqueue_ready_workers(self, job: Job) -> None:
        """Put workers behind every claimable unit of work on the queue."""
        for worker in job.dispatchable_workers():
            if worker in self.run_queue:
                continue
            if worker.state == WorkerState.IDLE:
                tid = job.take_ready_thread()
                if tid is None:
                    continue
                worker.current_thread = tid
                worker.remaining_service = job.graph.service_time(tid)
                worker.state = WorkerState.SUSPENDED
            self.run_queue.append(worker)

    def _pick_worker(self, cpu: int) -> typing.Optional[WorkerTask]:
        if not self.run_queue:
            return None
        if self.policy.use_affinity:
            head = self.run_queue[0]
            if self._skips.get(head.key, 0) < self.policy.max_skips:
                depth = min(self.policy.affinity_search_depth, len(self.run_queue))
                for index in range(depth):
                    if self.run_queue[index].last_processor == cpu:
                        worker = self.run_queue[index]
                        del self.run_queue[index]
                        self._skips.pop(worker.key, None)
                        for skipped in list(self.run_queue)[:index]:
                            self._skips[skipped.key] = (
                                self._skips.get(skipped.key, 0) + 1
                            )
                        return worker
        worker = self.run_queue.popleft()
        self._skips.pop(worker.key, None)
        return worker

    def _wake_idle_processors(self) -> None:
        """Dispatch queued workers onto every idle processor."""
        for cpu in range(self.n_processors):
            if not self.run_queue:
                return
            if self._on_cpu[cpu] is None:
                self._dispatch_next(cpu)

    # ------------------------------------------------------------------ #
    # dispatch / preempt

    def _touch_alloc(self, job: Job) -> None:
        mark = self._alloc_mark[job.name]
        job.allocation_integral += self._alloc_count[job.name] * (self.now - mark)
        self._alloc_mark[job.name] = self.now

    def _dispatch_next(self, cpu: int) -> None:
        worker = self._pick_worker(cpu)
        if worker is None:
            return
        job = worker.job
        affine = worker.note_dispatch(cpu, self.now)
        penalty, _ = self.footprint.reload_penalty(worker.key, cpu)
        overhead = self.machine.context_switch_s + penalty
        job.n_reallocations += 1
        if affine:
            job.n_affine += 1
        job.cache_penalty_total += penalty
        job.switch_overhead_total += self.machine.context_switch_s
        worker.stint_overhead = overhead
        self._on_cpu[cpu] = worker
        self._touch_alloc(job)
        self._alloc_count[job.name] += 1
        run_for = min(self.policy.quantum_s, overhead + worker.remaining_service)
        if run_for >= overhead + worker.remaining_service:
            worker.completion_handle = self.sim.schedule(
                overhead + worker.remaining_service,
                lambda: self._on_complete(cpu),
                label=f"ts-complete:{job.name}#{worker.index}",
            )
        else:
            self._quantum_handles[cpu] = self.sim.schedule(
                self.policy.quantum_s,
                lambda: self._on_quantum(cpu),
                label=f"ts-quantum:{cpu}",
            )

    def _depart(self, cpu: int, suspended: bool) -> WorkerTask:
        worker = self._on_cpu[cpu]
        assert worker is not None
        job = worker.job
        duration = worker.note_departure(self.now, suspended=suspended)
        self.footprint.note_run(worker.key, cpu, duration, job.curve)
        self._on_cpu[cpu] = None
        self._touch_alloc(job)
        self._alloc_count[job.name] -= 1
        return worker

    def _on_quantum(self, cpu: int) -> None:
        """Involuntary switch: preempt, requeue at the tail."""
        worker = self._on_cpu[cpu]
        assert worker is not None
        job = worker.job
        self._quantum_handles[cpu] = None
        elapsed = self.now - worker.segment_start
        useful = min(
            max(0.0, elapsed - worker.stint_overhead), worker.remaining_service
        )
        job.work_done += useful
        worker.remaining_service -= useful
        self._depart(cpu, suspended=True)
        self.involuntary_switches += 1
        self.run_queue.append(worker)
        self._dispatch_next(cpu)

    def _on_complete(self, cpu: int) -> None:
        """A thread finished within its quantum."""
        worker = self._on_cpu[cpu]
        assert worker is not None
        job = worker.job
        worker.completion_handle = None
        job.work_done += worker.remaining_service
        tid = worker.current_thread
        worker.current_thread = None
        worker.remaining_service = 0.0
        assert tid is not None
        job.on_thread_complete(tid)

        if job.finished:
            self._depart(cpu, suspended=False)
            job.completion_time = self.now
            self._finished += 1
            if self._finished == len(self.jobs):
                self.sim.stop()
                return
            self._dispatch_next(cpu)
            self._wake_idle_processors()
            return

        next_tid = job.take_ready_thread()
        if next_tid is not None and not self.run_queue:
            # Nothing else wants the processor: run on (fresh quantum).
            worker.current_thread = next_tid
            worker.remaining_service = job.graph.service_time(next_tid)
            worker.segment_start = self.now
            worker.stint_overhead = 0.0
            run = worker.remaining_service
            if run <= self.policy.quantum_s:
                worker.completion_handle = self.sim.schedule(
                    run, lambda: self._on_complete(cpu)
                )
            else:
                self._quantum_handles[cpu] = self.sim.schedule(
                    self.policy.quantum_s, lambda: self._on_quantum(cpu)
                )
            # This completion may have readied more threads than this
            # worker can absorb: offer them to idle processors.
            self._enqueue_ready_workers(job)
            self._wake_idle_processors()
            return

        # Voluntary switch: yield the processor at a natural boundary.
        self.voluntary_switches += 1
        if next_tid is not None:
            worker.current_thread = next_tid
            worker.remaining_service = job.graph.service_time(next_tid)
            self._depart(cpu, suspended=True)
            self.run_queue.append(worker)
        else:
            self._depart(cpu, suspended=False)
        self._enqueue_ready_workers(job)
        self._dispatch_next(cpu)
        self._wake_idle_processors()

    def _metrics(self, job: Job) -> JobMetrics:
        return JobMetrics(
            name=job.name,
            response_time=job.response_time,
            work=job.work_done,
            waste=job.waste,
            n_reallocations=job.n_reallocations,
            pct_affinity=job.affinity_percentage(),
            cache_penalty_total=job.cache_penalty_total,
            switch_overhead_total=job.switch_overhead_total,
            average_allocation=job.average_allocation(),
        )
