"""Recording and rendering processor-allocation timelines.

An :class:`AllocationTrace` attached to a :class:`SchedulingSystem`
records every ownership change of every processor.  The result can be
queried (per-job allocation as a step function, per-processor segment
lists) or rendered as an ASCII Gantt chart — one row per processor, one
letter per job — which makes policy behavior directly visible:
Equipartition's static bands, Dynamic's churn at GRAVITY's barriers,
NoPri's starvation stripes.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Segment:
    """One continuous ownership interval of one processor."""

    cpu: int
    start: float
    end: float
    job: typing.Optional[str]

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start


class AllocationTrace:
    """Collects ownership-change events from a scheduling system."""

    def __init__(self) -> None:
        self._events: typing.Dict[int, typing.List[typing.Tuple[float, typing.Optional[str]]]] = {}
        self._end_time = 0.0

    def record(self, time: float, cpu: int, job: typing.Optional[str]) -> None:
        """Note that ``cpu`` became owned by ``job`` (None = free) at ``time``."""
        self._events.setdefault(cpu, []).append((time, job))
        self._end_time = max(self._end_time, time)

    def finish(self, time: float) -> None:
        """Close the trace at the simulation end time."""
        self._end_time = max(self._end_time, time)

    @property
    def end_time(self) -> float:
        """Last recorded instant."""
        return self._end_time

    def processors(self) -> typing.List[int]:
        """Processors with at least one recorded event, sorted."""
        return sorted(self._events)

    def segments(self, cpu: int) -> typing.List[Segment]:
        """The ownership intervals of ``cpu``, in time order."""
        events = self._events.get(cpu, [])
        segments = []
        for (start, job), (end, _) in zip(events, events[1:]):
            if end > start:
                segments.append(Segment(cpu, start, end, job))
        if events and self._end_time > events[-1][0]:
            start, job = events[-1]
            segments.append(Segment(cpu, start, self._end_time, job))
        return segments

    def owner_at(self, cpu: int, time: float) -> typing.Optional[str]:
        """The job owning ``cpu`` at ``time`` (None if free or unknown)."""
        owner = None
        for event_time, job in self._events.get(cpu, []):
            if event_time > time:
                break
            owner = job
        return owner

    def allocation_of(self, job: str, time: float) -> int:
        """Processors owned by ``job`` at ``time``."""
        return sum(1 for cpu in self._events if self.owner_at(cpu, time) == job)

    def job_names(self) -> typing.List[str]:
        """All jobs ever seen, sorted by first appearance."""
        seen: typing.List[str] = []
        for events in self._events.values():
            for _, job in events:
                if job is not None and job not in seen:
                    seen.append(job)
        return seen

    def render_gantt(self, width: int = 80) -> str:
        """ASCII Gantt chart: rows = processors, columns = time buckets.

        Each cell shows the job that owned the processor for the largest
        share of that bucket (``.`` = mostly free).  A legend maps the
        single-letter codes to job names.
        """
        if width < 10:
            raise ValueError("width must be at least 10")
        if not self._events or self._end_time <= 0:
            return "(empty trace)"
        jobs = self.job_names()
        letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        code = {job: letters[i % len(letters)] for i, job in enumerate(jobs)}
        bucket = self._end_time / width
        lines = []
        for cpu in self.processors():
            row = []
            segs = self.segments(cpu)
            for column in range(width):
                lo = column * bucket
                hi = lo + bucket
                best: typing.Dict[typing.Optional[str], float] = {}
                for seg in segs:
                    overlap = min(seg.end, hi) - max(seg.start, lo)
                    if overlap > 0:
                        best[seg.job] = best.get(seg.job, 0.0) + overlap
                if not best:
                    row.append(" ")
                    continue
                winner = max(best, key=lambda j: best[j])
                row.append("." if winner is None else code[winner])
            lines.append(f"cpu{cpu:3d} |" + "".join(row) + "|")
        lines.append(
            f"        0s{' ' * (width - 12)}{self._end_time:8.1f}s"
        )
        lines.append(
            "legend: " + "  ".join(f"{code[j]} = {j}" for j in jobs) + "  . = free"
        )
        return "\n".join(lines)
