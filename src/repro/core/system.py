"""The discrete-event scheduling system: jobs x policy x machine.

This is the experimental testbed of Sections 5-6 in simulation form.  It
executes a set of jobs (thread dependence graphs run by worker tasks)
under one allocation policy on a machine model, charging every processor
reallocation its kernel path length plus the cache reload penalty from the
footprint model, and accounting the quantities the paper's response time
model needs: work, waste, #reallocations, %affinity, and average
allocation per job.

Cost conventions (mirroring Section 2):

* a *dispatch* of a worker task onto a processor costs the 750 us context
  switch path plus the footprint model's cache reload penalty, and counts
  as one reallocation experienced by the job;
* a worker continuing into the next user-level thread on the same
  processor costs nothing (user-level threading is the cheap fine-grained
  parallelism the applications are built on);
* a worker resuming on a processor its job *held* throughout, where it
  was also the last task to run, costs nothing — this is Equipartition's
  "perfect affinity" and Dyn-Aff-Delay's penalty-free work pickup;
* a processor held by a job with nothing to run accrues *waste*.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.allocator import Allocator, ProcessorRecord
from repro.core.policies.base import Policy
from repro.core.trace import AllocationTrace
from repro.engine.rng import RngRegistry
from repro.engine.simulator import Simulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.records import (
    AllocationChange,
    CacheFlush,
    CpuFailure,
    CpuRecovery,
    Dispatch,
    JobArrival,
    JobCancelled,
    JobDeparture,
    RunConfig,
    RunEnd,
    Undispatch,
)
from repro.obs.tracer import Tracer
from repro.machine.footprint import FootprintModel
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.threads.job import Job
from repro.threads.workers import WorkerState, WorkerTask

#: Event priority for job arrivals: before anything else at that instant.
_ARRIVAL_PRIORITY = 10


@dataclasses.dataclass(frozen=True)
class JobMetrics:
    """Per-job outcome of one simulated run."""

    name: str
    response_time: float
    work: float
    waste: float
    n_reallocations: int
    pct_affinity: float
    cache_penalty_total: float
    switch_overhead_total: float
    average_allocation: float

    @property
    def app(self) -> str:
        """Application name (job name without the instance suffix)."""
        return self.name.split("-")[0]

    @property
    def reallocation_interval(self) -> float:
        """Mean seconds a processor runs between reallocations (Table 3 row 3)."""
        if self.n_reallocations == 0:
            return float("inf")
        return self.response_time * self.average_allocation / self.n_reallocations


@dataclasses.dataclass(frozen=True)
class SystemResult:
    """Outcome of one simulated workload run."""

    policy: str
    n_processors: int
    seed: int
    makespan: float
    jobs: typing.Dict[str, JobMetrics]
    #: job name -> cancellation timestamp (open-system disruptions only;
    #: cancelled jobs never appear in ``jobs``)
    cancelled: typing.Dict[str, float] = dataclasses.field(default_factory=dict)

    def mean_response_time(self) -> float:
        """Average job response time, the paper's primary metric."""
        if not self.jobs:
            return 0.0
        return sum(m.response_time for m in self.jobs.values()) / len(self.jobs)

    def job(self, name: str) -> JobMetrics:
        """Metrics for one job by name."""
        return self.jobs[name]


class SchedulingSystem:
    """Runs one workload mix under one policy to completion."""

    def __init__(
        self,
        jobs: typing.Sequence[Job],
        policy: Policy,
        machine: MachineSpec = SEQUENT_SYMMETRY,
        n_processors: int = 16,
        seed: int = 0,
        rng: typing.Optional[RngRegistry] = None,
        arrival_times: typing.Optional[typing.Sequence[float]] = None,
        trace: typing.Optional["AllocationTrace"] = None,
        footprint_model: typing.Optional[object] = None,
        tracer: typing.Optional[Tracer] = None,
        metrics: typing.Optional[MetricsRegistry] = None,
        profiler: typing.Optional[object] = None,
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        if n_processors > machine.n_processors:
            raise ValueError(
                f"machine {machine.name!r} has only {machine.n_processors} processors"
            )
        self.sim = Simulator(rng=rng, seed=seed)
        self.machine = machine
        self.policy = policy
        self.jobs = list(jobs)
        self.seed = seed
        # The cache-pricing oracle: the analytic footprint model by
        # default, or any object with the same note_run/reload_penalty
        # surface (e.g. machine.cache_oracle.SimulatedCacheFootprint).
        self.footprint = (
            footprint_model if footprint_model is not None else FootprintModel(machine)
        )
        self.allocator = Allocator(policy, n_processors, self)
        self.rng = self.sim.rng.stream("allocator")
        self._arrivals = (
            list(arrival_times) if arrival_times is not None else [0.0] * len(jobs)
        )
        if len(self._arrivals) != len(self.jobs):
            raise ValueError("arrival_times must match jobs")
        self._alloc_mark: typing.Dict[str, float] = {}
        self._alloc_count: typing.Dict[str, int] = {}
        self._busy_count: typing.Dict[str, int] = {}
        self._arrival_handles: typing.Dict[str, object] = {}
        self._finished_jobs = 0
        #: optional allocation-timeline recorder (see repro.core.trace)
        self.trace = trace
        #: optional structured tracer and metrics registry (see repro.obs);
        #: both default to None, which keeps every emission site at a
        #: single attribute load and branch.
        self.tracer = tracer
        self.metrics = metrics
        #: optional wall-clock span profiler (see repro.obs.profiling);
        #: the allocator reads it for policy/* spans, the simulator for
        #: the engine/* spans.
        self.profiler = profiler
        self.sim.attach_tracer(tracer)
        self.sim.attach_profiler(profiler)

    # ------------------------------------------------------------------ #
    # public API

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    def run(self, until: typing.Optional[float] = None) -> SystemResult:
        """Execute the workload to completion and return per-job metrics."""
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(
                RunConfig(
                    time=self.now,
                    policy=self.policy.name,
                    n_processors=len(self.allocator.procs),
                    seed=self.seed,
                    jobs=tuple(job.name for job in self.jobs),
                    machine=self.machine.name,
                    cache_lines=self.machine.cache_lines,
                    miss_time_s=self.machine.miss_time_s,
                    context_switch_s=self.machine.context_switch_s,
                    respect_priority=self.policy.respect_priority,
                    use_affinity=self.policy.use_affinity,
                )
            )
        for job, arrival in zip(self.jobs, self._arrivals):
            if job.cancelled:
                continue  # cancelled before the run started
            self._arrival_handles[job.name] = self.sim.at(
                arrival,
                lambda j=job: self._arrive(j),
                priority=_ARRIVAL_PRIORITY,
                label=f"arrive:{job.name}",
            )
        self.sim.run(until=until)
        if self.trace is not None:
            self.trace.finish(self.now)
        if tr is not None and tr.enabled:
            tr.emit(
                RunEnd(
                    time=self.now,
                    makespan=self.now,
                    events_fired=self.sim.events_fired,
                )
            )
        if self.metrics is not None:
            self.metrics.gauge("run/makespan_s").set(self.now)
            self.metrics.counter("run/events_fired").inc(self.sim.events_fired)
        unfinished = [
            job.name for job in self.jobs if not job.finished and not job.cancelled
        ]
        if unfinished and until is None:
            raise RuntimeError(
                f"simulation stalled with unfinished jobs: {unfinished}"
            )
        metrics = {job.name: self._metrics_for(job) for job in self.jobs if job.finished}
        return SystemResult(
            policy=self.policy.name,
            n_processors=len(self.allocator.procs),
            seed=self.seed,
            makespan=self.now,
            jobs=metrics,
            cancelled={
                job.name: job.cancelled_time
                for job in self.jobs
                if job.cancelled_time is not None
            },
        )

    # ------------------------------------------------------------------ #
    # arrival / completion

    def _arrive(self, job: Job) -> None:
        job.start(self.now)
        self._alloc_mark[job.name] = self.now
        self._alloc_count[job.name] = 0
        self._busy_count[job.name] = 0
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(JobArrival(time=self.now, job=job.name))
        if self.metrics is not None:
            self.metrics.counter("jobs/arrived").inc()
        self.allocator.job_arrived(job)

    def _complete_job(self, job: Job) -> None:
        job.completion_time = self.now
        self._touch_allocation(job)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(
                JobDeparture(
                    time=self.now,
                    job=job.name,
                    response_time=job.response_time,
                    n_reallocations=job.n_reallocations,
                )
            )
        if self.metrics is not None:
            self.metrics.counter("jobs/completed").inc()
            self.metrics.histogram("jobs/response_s").observe(job.response_time)
        self.allocator.job_departed(job)
        self._finished_jobs += 1
        if self._finished_jobs == len(self.jobs):
            self.sim.stop()

    # ------------------------------------------------------------------ #
    # open-system disruptions (see repro.workloads.opensys)

    def cancel_job(self, job: Job) -> bool:
        """Cancel ``job``: before arrival it never enters; after arrival its
        processors are released and its partial work stays accounted.

        Returns:
            True if the job was cancelled, False if it had already finished
            or been cancelled (an idempotent no-op that emits nothing).
        """
        if job not in self.jobs:
            raise ValueError(f"job {job.name!r} is not part of this system")
        if job.finished or job.cancelled:
            return False
        arrived = job.name in self._alloc_mark
        if arrived:
            for proc in self.allocator.procs:
                if proc.job is job and proc.worker is not None:
                    self.preempt_processor(proc)
            self._touch_allocation(job)
        else:
            handle = self._arrival_handles.get(job.name)
            if handle is not None:
                self.sim.cancel(handle)
        job.cancelled_time = self.now
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(
                JobCancelled(time=self.now, job=job.name, work_done=job.work_done)
            )
        if self.metrics is not None:
            self.metrics.counter("jobs/cancelled").inc()
            self.metrics.counter("jobs/cancelled_work_s").inc(job.work_done)
        if arrived:
            self.allocator.job_departed(job)
        self._finished_jobs += 1
        if self._finished_jobs == len(self.jobs):
            self.sim.stop()
        return True

    def fail_processor(self, cpu_id: int) -> None:
        """Take processor ``cpu_id`` offline, losing its cache contents.

        A running worker is suspended (its partial work preserved), the
        processor is released and marked offline, every cache residue on
        it is flushed (traced as a ``cache_flush``), and the victim job —
        or, under equipartition, the whole allocation — is re-placed on
        the surviving processors.
        """
        proc = self.allocator.procs[cpu_id]
        if not proc.online:
            raise RuntimeError(f"processor {cpu_id} is already offline")
        victim = proc.job
        if proc.worker is not None:
            self.preempt_processor(proc)
        self.release_processor(proc)
        proc.online = False
        proc.history.clear()
        flush = getattr(self.footprint, "flush_processor", None)
        lost = float(flush(cpu_id)) if flush is not None else 0.0
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(CpuFailure(time=self.now, cpu=cpu_id))
            tr.emit(CacheFlush(time=self.now, cpu=cpu_id, lines=int(lost)))
        if self.metrics is not None:
            self.metrics.counter("cpu/failures").inc()
            self.metrics.counter("cpu/flushed_lines").inc(int(lost))
        if self.policy.is_equipartition:
            self.allocator.rebalance_equipartition()
        elif victim is not None and not victim.finished and not victim.cancelled:
            self.allocator.new_work(victim)

    def recover_processor(self, cpu_id: int) -> None:
        """Bring a failed processor back online (with a cold cache)."""
        proc = self.allocator.procs[cpu_id]
        if proc.online:
            raise RuntimeError(f"processor {cpu_id} is already online")
        proc.online = True
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(CpuRecovery(time=self.now, cpu=cpu_id))
        if self.metrics is not None:
            self.metrics.counter("cpu/recoveries").inc()
        if self.policy.is_equipartition:
            self.allocator.rebalance_equipartition()
        else:
            self.allocator.processor_available(proc)

    def _metrics_for(self, job: Job) -> JobMetrics:
        return JobMetrics(
            name=job.name,
            response_time=job.response_time,
            work=job.work_done,
            waste=job.waste,
            n_reallocations=job.n_reallocations,
            pct_affinity=job.affinity_percentage(),
            cache_penalty_total=job.cache_penalty_total,
            switch_overhead_total=job.switch_overhead_total,
            average_allocation=job.average_allocation(),
        )

    # ------------------------------------------------------------------ #
    # allocation accounting

    def _touch_allocation(self, job: Job) -> None:
        """Integrate allocation x time for ``job`` up to now."""
        mark = self._alloc_mark.get(job.name)
        if mark is None:
            return
        job.allocation_integral += self._alloc_count[job.name] * (self.now - mark)
        self._alloc_mark[job.name] = self.now

    def _change_owner(
        self, proc: ProcessorRecord, job: typing.Optional[Job]
    ) -> None:
        old = proc.job
        if old is job:
            return
        if old is not None:
            self._touch_allocation(old)
            self._alloc_count[old.name] -= 1
        if job is not None:
            self._touch_allocation(job)
            self._alloc_count[job.name] += 1
        proc.job = job
        if self.trace is not None:
            self.trace.record(self.now, proc.cpu_id, job.name if job else None)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(
                AllocationChange(
                    time=self.now,
                    cpu=proc.cpu_id,
                    job=job.name if job else None,
                    prev=old.name if old else None,
                )
            )
        if self.metrics is not None:
            self.metrics.counter("alloc/changes").inc()

    def _note_busy_change(self, job: Job, delta: int) -> None:
        """Track busy (actually-executing) processors for the credit scheme.

        Credits reward *using* few processors, so a processor held idle
        (equipartition hold or a yield-delay window) banks credit for its
        owner just as a released one would.
        """
        count = self._busy_count.get(job.name, 0) + delta
        if count < 0:
            raise RuntimeError(f"negative busy count for {job.name}")
        self._busy_count[job.name] = count
        self.allocator.credit.set_allocation(job, count, self.now)

    # ------------------------------------------------------------------ #
    # processor hand-off mechanics (called by the allocator and internally)

    def grant_processor(
        self,
        proc: ProcessorRecord,
        job: Job,
        worker: typing.Optional[WorkerTask] = None,
    ) -> None:
        """Give ``proc`` to ``job`` and dispatch a worker if work exists.

        The processor must be free or already held (idle) by ``job``.
        """
        if not proc.online:
            raise RuntimeError(f"processor {proc.cpu_id} is offline")
        if proc.job is not None and proc.job is not job:
            raise RuntimeError(
                f"processor {proc.cpu_id} belongs to {proc.job.name}, "
                f"cannot grant to {job.name}"
            )
        was_held = proc.job is job
        if proc.yield_handle is not None:
            self.sim.cancel(proc.yield_handle)
            proc.yield_handle = None
        if proc.idle_since is not None:
            job.waste += self.now - proc.idle_since
            proc.idle_since = None
        self._change_owner(proc, job)
        if worker is None:
            worker = job.select_worker(
                proc.cpu_id, self.policy.use_affinity, self.policy.history_depth
            )
        if worker is None:
            # Granted ahead of demand (equipartition): hold it idle.
            proc.idle_since = self.now
            return
        self._dispatch(proc, job, worker, was_held=was_held)

    def _dispatch(
        self, proc: ProcessorRecord, job: Job, worker: WorkerTask, was_held: bool
    ) -> None:
        """Place ``worker`` on ``proc`` and schedule its thread completion."""
        ready_depth = len(job.ready)
        cheap = (
            was_held
            and worker.last_processor == proc.cpu_id
            and proc.history.last_task == worker.key
        )
        if cheap:
            overhead = 0.0
            switch_charged = penalty_charged = 0.0
            affine = True
        else:
            penalty, affine = self.footprint.reload_penalty(worker.key, proc.cpu_id)
            overhead = self.machine.context_switch_s + penalty
            switch_charged = self.machine.context_switch_s
            penalty_charged = penalty
            job.n_reallocations += 1
            if affine:
                job.n_affine += 1
            job.cache_penalty_total += penalty
            job.switch_overhead_total += self.machine.context_switch_s
        worker.note_dispatch(proc.cpu_id, self.now)
        proc.worker = worker
        proc.history.record(worker.key)
        self._note_busy_change(job, +1)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(
                Dispatch(
                    time=self.now,
                    cpu=proc.cpu_id,
                    job=job.name,
                    worker=worker.index,
                    affine=affine,
                    cheap=cheap,
                    penalty_s=penalty_charged,
                    switch_s=switch_charged,
                    ready_depth=ready_depth,
                )
            )
        if self.metrics is not None:
            metrics = self.metrics
            metrics.counter("dispatch/total").inc()
            metrics.histogram("dispatch/ready_depth").observe(ready_depth)
            if not cheap:
                metrics.counter("dispatch/reallocations").inc()
                if affine:
                    metrics.counter("dispatch/affine").inc()
                metrics.counter("dispatch/cache_penalty_s").inc(penalty_charged)
                metrics.counter("dispatch/switch_overhead_s").inc(switch_charged)
                metrics.histogram("dispatch/penalty_s").observe(penalty_charged)
        if worker.current_thread is None:
            tid = job.take_ready_thread(worker)
            if tid is None:
                raise RuntimeError(
                    f"dispatched worker {worker.key} with no thread to run"
                )
            worker.current_thread = tid
            worker.remaining_service = job.thread_service_for(worker, tid)
        worker.stint_overhead = overhead
        worker.stint_switch_charged = switch_charged
        worker.stint_penalty_charged = penalty_charged
        worker.completion_handle = self.sim.schedule(
            overhead + worker.remaining_service,
            lambda: self._on_thread_complete(proc, worker),
            label=f"complete:{job.name}#{worker.index}",
        )

    def preempt_processor(self, proc: ProcessorRecord) -> None:
        """Suspend the worker running on ``proc`` (rule D.3 / rebalance)."""
        worker = proc.worker
        if worker is None:
            raise RuntimeError(f"processor {proc.cpu_id} is not running a worker")
        job = proc.job
        assert job is not None
        if worker.completion_handle is not None:
            self.sim.cancel(worker.completion_handle)
            worker.completion_handle = None
        elapsed = self.now - worker.segment_start
        useful = min(max(0.0, elapsed - worker.stint_overhead), worker.remaining_service)
        job.work_done += useful
        worker.remaining_service -= useful
        # Preempted before the dispatch overhead finished executing: the
        # unconsumed portion of the charged switch/reload cost never
        # happened — refund it so processor-time accounting balances.
        unconsumed = max(0.0, worker.stint_overhead - elapsed)
        if unconsumed > 0.0:
            refund_penalty = min(unconsumed, worker.stint_penalty_charged)
            job.cache_penalty_total -= refund_penalty
            job.switch_overhead_total -= min(
                unconsumed - refund_penalty, worker.stint_switch_charged
            )
        worker.stint_switch_charged = 0.0
        worker.stint_penalty_charged = 0.0
        duration = worker.note_departure(self.now, suspended=True)
        self.footprint.note_run(worker.key, proc.cpu_id, duration, job.curve)
        proc.worker = None
        self._note_busy_change(job, -1)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(
                Undispatch(
                    time=self.now,
                    cpu=proc.cpu_id,
                    job=job.name,
                    worker=worker.index,
                    reason="preempt",
                )
            )
        if self.metrics is not None:
            self.metrics.counter("dispatch/preemptions").inc()

    def release_processor(self, proc: ProcessorRecord) -> None:
        """Return ``proc`` to the free pool (it must not be running)."""
        if proc.worker is not None:
            raise RuntimeError(f"release of busy processor {proc.cpu_id}")
        if proc.yield_handle is not None:
            self.sim.cancel(proc.yield_handle)
            proc.yield_handle = None
        if proc.idle_since is not None and proc.job is not None:
            proc.job.waste += self.now - proc.idle_since
        proc.idle_since = None
        self._change_owner(proc, None)

    # ------------------------------------------------------------------ #
    # event handlers

    def _on_thread_complete(self, proc: ProcessorRecord, worker: WorkerTask) -> None:
        job = worker.job
        worker.completion_handle = None
        job.work_done += worker.remaining_service
        tid = worker.current_thread
        worker.current_thread = None
        worker.remaining_service = 0.0
        assert tid is not None
        job.on_thread_complete(tid)

        if job.finished:
            duration = worker.note_departure(self.now, suspended=False)
            self.footprint.note_run(worker.key, proc.cpu_id, duration, job.curve)
            proc.worker = None
            self._note_busy_change(job, -1)
            tr = self.tracer
            if tr is not None and tr.enabled:
                tr.emit(
                    Undispatch(
                        time=self.now,
                        cpu=proc.cpu_id,
                        job=job.name,
                        worker=worker.index,
                        reason="done",
                    )
                )
            self._complete_job(job)
            return

        next_tid = job.take_ready_thread(worker)
        if next_tid is not None:
            # Continue on the same processor: a user-level thread switch,
            # free of kernel or cache cost.
            worker.current_thread = next_tid
            worker.remaining_service = job.thread_service_for(worker, next_tid)
            worker.segment_start = self.now
            worker.stint_overhead = 0.0
            worker.stint_switch_charged = 0.0
            worker.stint_penalty_charged = 0.0
            worker.completion_handle = self.sim.schedule(
                worker.remaining_service,
                lambda: self._on_thread_complete(proc, worker),
                label=f"complete:{job.name}#{worker.index}",
            )
        else:
            self._worker_idle(proc, worker, job)

        if job.ready or self._has_waiting_suspended(job):
            self._place_new_work(job)

    def _has_waiting_suspended(self, job: Job) -> bool:
        return any(w.state == WorkerState.SUSPENDED for w in job.workers)

    def _worker_idle(self, proc: ProcessorRecord, worker: WorkerTask, job: Job) -> None:
        """The worker found no runnable thread: depart, then hold or yield."""
        duration = worker.note_departure(self.now, suspended=False)
        self.footprint.note_run(worker.key, proc.cpu_id, duration, job.curve)
        proc.worker = None
        self._note_busy_change(job, -1)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(
                Undispatch(
                    time=self.now,
                    cpu=proc.cpu_id,
                    job=job.name,
                    worker=worker.index,
                    reason="idle",
                )
            )

        # A suspended sibling holds a partial thread: give it the processor.
        sibling = job.select_worker(
            proc.cpu_id, self.policy.use_affinity, self.policy.history_depth
        )
        if sibling is not None:
            self._dispatch(proc, job, sibling, was_held=True)
            return

        if self.policy.is_equipartition:
            proc.idle_since = self.now
        elif self.policy.yield_delay_s > 0:
            proc.idle_since = self.now
            proc.yield_handle = self.sim.schedule(
                self.policy.yield_delay_s,
                lambda: self._yield_now(proc),
                label=f"yield:{proc.cpu_id}",
            )
        else:
            self.release_processor(proc)
            self.allocator.processor_available(proc)

    def _yield_now(self, proc: ProcessorRecord) -> None:
        """Yield-delay expired with no new work: give the processor back."""
        proc.yield_handle = None
        self.release_processor(proc)
        self.allocator.processor_available(proc)

    def _place_new_work(self, job: Job) -> None:
        """New runnable work appeared in ``job``: use held processors, then ask."""
        for proc in self.allocator.procs:
            if proc.job is job and proc.is_held_idle:
                worker = job.select_worker(
                    proc.cpu_id, prefer_affinity=True,
                    history_depth=self.policy.history_depth,
                )
                if worker is None:
                    break
                self.grant_processor(proc, job, worker=worker)
        self.allocator.new_work(job)
