"""Dyn-Aff-NoPri (Section 5.3): the artificial no-fairness variant.

Used only to measure the maximum benefit affinity scheduling could provide
if non-performance considerations (fairness, interactive response,
countermeasure resilience) were sacrificed:

* rule **D.3** is ignored — no preemption enforces equity;
* rule **A.1** always reactivates *last-task* when it is runnable with
  work, regardless of priority.

The paper emphasizes this "is not suggested as a policy for implementation
in real systems"; its erratic per-job response times (Figure 6) and its
failure to beat Dyn-Aff on homogeneous workloads (Table 4) are the point.
"""

from __future__ import annotations

from repro.core.policies.base import Policy


class DynAffNoPri(Policy):
    """Frozen policy instance; see module docstring."""


DYN_AFF_NOPRI = DynAffNoPri(
    name="Dyn-Aff-NoPri",
    space_sharing="dynamic",
    use_affinity=True,
    respect_priority=False,
    yield_delay_s=0.0,
    description=(
        "Dyn-Aff with the priority scheme sacrificed to affinity: no D.3 "
        "preemption, A.1 ignores priorities (artificial bounding policy)"
    ),
)
