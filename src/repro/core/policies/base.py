"""Policy interface and shared allocation arithmetic.

A policy is a small bundle of decisions layered over the allocator's
mechanics.  The paper's five policies differ only along the "degrees of
freedom" of Section 2, which map onto four switches:

* ``space_sharing`` — ``"equipartition"`` (reallocate only on job arrival
  and completion) or ``"dynamic"`` (reallocate on demand changes, rules
  D.1-D.3);
* ``use_affinity`` — apply rules A.1/A.2 when placing tasks;
* ``respect_priority`` — honor the credit scheme (and enforce D.3);
* ``yield_delay_s`` — how long a job may retain an idle processor hoping
  for new work before declaring it willing-to-yield.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Policy:
    """A space-sharing processor allocation policy."""

    name: str
    space_sharing: str  # "equipartition" | "dynamic"
    use_affinity: bool
    respect_priority: bool
    yield_delay_s: float = 0.0
    #: depth of the processor/task histories consulted by rules A.1/A.2;
    #: the paper uses 1 ("we remember only the last task or processor")
    history_depth: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.space_sharing not in ("equipartition", "dynamic"):
            raise ValueError(f"unknown space_sharing mode {self.space_sharing!r}")
        if self.yield_delay_s < 0:
            raise ValueError("yield_delay_s must be non-negative")
        if self.history_depth < 1:
            raise ValueError("history_depth must be at least 1")

    @property
    def is_equipartition(self) -> bool:
        """True for the static extreme of the policy spectrum."""
        return self.space_sharing == "equipartition"

    @property
    def is_dynamic(self) -> bool:
        """True for demand-driven policies (rules D.1-D.3)."""
        return self.space_sharing == "dynamic"


def equipartition_allocation(
    max_parallelism: typing.Mapping[str, int], n_processors: int
) -> typing.Dict[str, int]:
    """The Section 5.1 allocation-number computation.

    "The allocation number of all jobs is initially set to zero, and then
    incremented by one in turn.  Any job whose allocation number has
    reached its maximum parallelism drops out.  This process continues
    until either there are no remaining jobs or all processors have been
    allocated."

    Args:
        max_parallelism: per-job maximum usable processors.
        n_processors: machine size.

    Returns:
        Processors to allocate to each job (0 for jobs that fit nothing).
    """
    if n_processors < 0:
        raise ValueError("n_processors must be non-negative")
    allocation = {name: 0 for name in max_parallelism}
    remaining = n_processors
    # Stable round-robin order: insertion order of the mapping.
    active = [name for name, cap in max_parallelism.items() if cap > 0]
    while remaining > 0 and active:
        still_active = []
        for name in active:
            if remaining == 0:
                still_active.append(name)
                continue
            allocation[name] += 1
            remaining -= 1
            if allocation[name] < max_parallelism[name]:
                still_active.append(name)
        active = still_active
    return allocation
