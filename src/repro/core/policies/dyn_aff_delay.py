"""Dyn-Aff-Delay (Section 5.4): affinity plus yield-delay.

A less aggressive Dynamic that sits between the Equipartition and Dynamic
extremes: a job retains an idle ("willing to yield") processor for a short
period in the hope that new work arrives within the job, in which case the
work starts with no reallocation penalty at all — the spin-then-block idea
of [Lo & Gligor 87, Karlin et al. 91] applied to processor allocation.
Trades slightly increased ``waste`` for reduced ``#reallocations``.

During the delay window the processor *is* still willing to yield: another
job's request may claim it (rule D.2), cancelling the delay.

The paper does not give its delay constant; 25 ms reproduces Table 3's
~35% reduction in reallocations while keeping response times essentially
equal to Dyn-Aff's on the base machine, and sits well under the 220-450 ms
reallocation intervals the paper reports.
"""

from __future__ import annotations

from repro.core.policies.base import Policy


class DynAffDelay(Policy):
    """Frozen policy instance; see module docstring."""


#: Delay before an idle processor is actually handed back.
DEFAULT_YIELD_DELAY_S = 0.025


DYN_AFF_DELAY = DynAffDelay(
    name="Dyn-Aff-Delay",
    space_sharing="dynamic",
    use_affinity=True,
    respect_priority=True,
    yield_delay_s=DEFAULT_YIELD_DELAY_S,
    description=(
        "Dyn-Aff plus a yield delay: idle processors are retained briefly "
        "so newly generated work avoids a reallocation"
    ),
)
