"""Dynamic (Section 5.2), from [McCann et al. 91].

The other extreme of the policy spectrum: minimizes ``waste`` at the cost
of a very large ``#reallocations``, with no regard for affinity.  Each job
continually reflects its instantaneous processor demand to the allocator
through shared memory; idle processors are declared *willing to yield*
immediately.  Requests are satisfied with the least valuable processors
first:

* **D.1** unallocated processors;
* **D.2** willing-to-yield processors;
* **D.3** equitable allocation enforced by preempting from the job(s)
  with the largest current allocation,

plus the adaptive credit-based priority mechanism.
"""

from __future__ import annotations

from repro.core.policies.base import Policy


class Dynamic(Policy):
    """Frozen policy instance; see module docstring."""


DYNAMIC = Dynamic(
    name="Dynamic",
    space_sharing="dynamic",
    use_affinity=False,
    respect_priority=True,
    yield_delay_s=0.0,
    description=(
        "Demand-driven reallocation (rules D.1-D.3) with the McCann et al. "
        "adaptive priority scheme; oblivious to affinity"
    ),
)
