"""Equipartition (Section 5.1).

The static extreme of the space-sharing spectrum: a constant, equal
allocation of processors to all jobs, recomputed only on job arrival and
completion via the allocation-number algorithm (based on the "process
control" policy of [Tucker & Gupta 89]).  Minimizes ``#reallocations`` at
the expense of maximizing ``waste`` — and therefore provides perfect
affinity scheduling, "since tasks essentially never move".
"""

from __future__ import annotations

from repro.core.policies.base import Policy


class Equipartition(Policy):
    """Frozen policy instance; see module docstring."""


EQUIPARTITION = Equipartition(
    name="Equipartition",
    space_sharing="equipartition",
    use_affinity=False,
    respect_priority=False,
    yield_delay_s=0.0,
    description=(
        "Static equal partition; reallocates only on job arrival/completion "
        "(process-control style, Tucker & Gupta 89)"
    ),
)
