"""The five space-sharing policies of Section 5."""

from repro.core.policies.base import Policy, equipartition_allocation
from repro.core.policies.dyn_aff import DYN_AFF, DynAff
from repro.core.policies.dyn_aff_delay import DYN_AFF_DELAY, DynAffDelay
from repro.core.policies.dyn_aff_nopri import DYN_AFF_NOPRI, DynAffNoPri
from repro.core.policies.dynamic import DYNAMIC, Dynamic
from repro.core.policies.equipartition import EQUIPARTITION, Equipartition

#: All policies by display name, in the paper's presentation order.
POLICIES = {
    policy.name: policy
    for policy in (EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_NOPRI, DYN_AFF_DELAY)
}

__all__ = [
    "DYNAMIC",
    "DYN_AFF",
    "DYN_AFF_DELAY",
    "DYN_AFF_NOPRI",
    "Dynamic",
    "DynAff",
    "DynAffDelay",
    "DynAffNoPri",
    "EQUIPARTITION",
    "Equipartition",
    "POLICIES",
    "Policy",
    "equipartition_allocation",
]
