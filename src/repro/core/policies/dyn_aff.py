"""Dynamic with Affinity — Dyn-Aff (Section 5.3).

Makes the same reallocation decisions as Dynamic but reduces the cost of
each by maximizing ``%affinity`` through processor and task histories
(depth 1, per [Squillante & Lazowska 89]):

* **A.1** when a processor becomes available, the last task to have run on
  it is re-activated there if it is not active elsewhere, is runnable with
  useful work, and its job's priority is as high as any requester's;
* **A.2** a requesting job names a *desired processor* (where its most
  progress-critical task last ran); the allocator grants it if available.

Preemption of a *busy* desired processor is never performed: "an active
task presumably has greater affinity for the processor than the task we
are attempting to schedule."  Both rules defer to the priority scheme.
"""

from __future__ import annotations

from repro.core.policies.base import Policy


class DynAff(Policy):
    """Frozen policy instance; see module docstring."""


DYN_AFF = DynAff(
    name="Dyn-Aff",
    space_sharing="dynamic",
    use_affinity=True,
    respect_priority=True,
    yield_delay_s=0.0,
    description="Dynamic plus affinity rules A.1/A.2 (histories of depth 1)",
)
