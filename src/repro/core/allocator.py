"""The processor allocator (the paper's Minos analogue).

The allocator owns the processor table and makes every *who gets which
processor* decision; the scheduling system (:mod:`repro.core.system`)
executes the mechanics (dispatch overheads, events, cache accounting).

Decision rules implemented here, exactly as Section 5 presents them:

* **D.1** requests are satisfied first from unallocated processors;
* **D.2** then from "willing to yield" processors (idle processors inside
  a yield-delay window still belong to their job but may be claimed);
* **D.3** finally, equity is enforced by preempting from the job(s) with
  the largest current allocation (subject to the credit scheme);
* **A.1** an available processor is offered first to the last task that
  ran on it, if that task is runnable with useful work and its job's
  priority is as high as any requester's (Dyn-Aff-NoPri drops the
  priority clause);
* **A.2** a requesting job names a desired processor — where its most
  progress-critical task last ran — which is granted if available.

Equipartition bypasses all of the above: it computes allocation numbers on
job arrival/completion only (Section 5.1).
"""

from __future__ import annotations

import typing

from repro.core.history import ProcessorHistory
from repro.core.policies.base import Policy, equipartition_allocation
from repro.core.priority import CreditScheduler
from repro.obs.records import PolicyDecision
from repro.threads.job import Job
from repro.threads.workers import WorkerTask

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import SchedulingSystem


class ProcessorRecord:
    """Allocator-side state of one processor."""

    def __init__(self, cpu_id: int, history_depth: int = 1) -> None:
        self.cpu_id = cpu_id
        self.job: typing.Optional[Job] = None
        self.worker: typing.Optional[WorkerTask] = None
        #: set while the owning job holds the processor idle
        self.idle_since: typing.Optional[float] = None
        #: pending yield-delay event handle (dynamic policies only)
        self.yield_handle: typing.Optional[object] = None
        #: False while the processor is failed (open-system disruptions)
        self.online = True
        self.history = ProcessorHistory(depth=history_depth)

    @property
    def is_free(self) -> bool:
        """Unallocated and online (an offline processor is never granted)."""
        return self.job is None and self.online

    @property
    def is_busy(self) -> bool:
        """Running a worker."""
        return self.worker is not None

    @property
    def is_held_idle(self) -> bool:
        """Owned by a job but running nothing."""
        return self.job is not None and self.worker is None

    @property
    def is_willing_to_yield(self) -> bool:
        """Held idle inside a yield-delay window (claimable via D.2)."""
        return self.is_held_idle and self.yield_handle is not None

    def __repr__(self) -> str:
        owner = self.job.name if self.job else None
        return f"ProcessorRecord(cpu={self.cpu_id}, job={owner!r}, busy={self.is_busy})"


class Allocator:
    """Implements the Section 5 allocation rules over a processor table."""

    def __init__(
        self,
        policy: Policy,
        n_processors: int,
        system: "SchedulingSystem",
    ) -> None:
        if n_processors <= 0:
            raise ValueError("need at least one processor")
        self.policy = policy
        self.system = system
        self.procs = [
            ProcessorRecord(i, history_depth=policy.history_depth)
            for i in range(n_processors)
        ]
        self.credit = CreditScheduler(n_processors)
        self.jobs: typing.List[Job] = []

    # ------------------------------------------------------------------ #
    # queries

    def allocation(self, job: Job) -> int:
        """Processors currently owned by ``job`` (busy or held idle)."""
        return sum(1 for p in self.procs if p.job is job)

    def free_processors(self) -> typing.List[ProcessorRecord]:
        """Unallocated processors, in id order."""
        return [p for p in self.procs if p.is_free]

    def online_count(self) -> int:
        """Processors currently online (the machine size policies see)."""
        return sum(1 for p in self.procs if p.online)

    def willing_processors(self, exclude: Job) -> typing.List[ProcessorRecord]:
        """Yield-delay-window processors claimable by other jobs (D.2)."""
        return [p for p in self.procs if p.is_willing_to_yield and p.job is not exclude]

    def requesters(self, exclude: typing.Optional[Job] = None) -> typing.List[Job]:
        """Live jobs that could use additional processors right now."""
        result = []
        for job in self.jobs:
            if job is exclude or job.finished:
                continue
            if job.additional_request(self.allocation(job)) > 0:
                result.append(job)
        return result

    def _worker_of(self, key: typing.Tuple[str, int]) -> typing.Optional[WorkerTask]:
        for job in self.jobs:
            worker = job.worker_by_key(key)
            if worker is not None:
                return worker
        return None

    # ------------------------------------------------------------------ #
    # observability

    def _emit_decision(
        self,
        rule: str,
        job: typing.Optional[Job],
        cpu: typing.Optional[int],
        reason: str,
        credits: typing.Optional[typing.Mapping[str, float]] = None,
        allocations: typing.Optional[typing.Mapping[str, int]] = None,
    ) -> None:
        """Record one allocation decision, with the evidence it weighed.

        The credit snapshot is exactly what the rule compared, so the
        invariant layer can re-derive the choice mechanically.
        """
        tracer = self.system.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                PolicyDecision(
                    time=self.system.now,
                    rule=rule,
                    job=job.name if job is not None else None,
                    cpu=cpu,
                    reason=reason,
                    credits=dict(credits) if credits else {},
                    allocations=dict(allocations) if allocations else {},
                )
            )
        metrics = self.system.metrics
        if metrics is not None:
            metrics.counter(f"policy/decisions/{rule}").inc()

    def _credit_snapshot(self, jobs: typing.Iterable[Job]) -> typing.Dict[str, float]:
        return {job.name: self.credit.credit(job) for job in jobs}

    def _profiled(
        self, span: str, call: typing.Callable[[], None]
    ) -> None:
        """Run one decision entry point under a ``policy/*`` span.

        Mirrors the tracer guard: without an enabled profiler the cost is
        one attribute load and branch per decision, no clock reads.
        """
        prof = self.system.profiler
        if prof is None or not prof.enabled:  # type: ignore[attr-defined]
            call()
            return
        prof.push(span)  # type: ignore[attr-defined]
        try:
            call()
        finally:
            prof.pop()  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # job lifecycle

    def job_arrived(self, job: Job) -> None:
        """Admit ``job``; equipartition rebalances, dynamic lets it request."""
        now = self.system.now
        self.jobs.append(job)
        self.credit.job_arrived(job, now)
        if self.policy.is_equipartition:
            self.rebalance_equipartition()
        else:
            self.new_work(job)

    def job_departed(self, job: Job) -> None:
        """Remove a finished job and redistribute its processors."""
        self.credit.job_departed(job, self.system.now)
        self.jobs.remove(job)
        freed = [p for p in self.procs if p.job is job]
        for proc in freed:
            self.system.release_processor(proc)
        if self.policy.is_equipartition:
            self.rebalance_equipartition()
        else:
            for proc in freed:
                if proc.is_free:
                    self.processor_available(proc)

    # ------------------------------------------------------------------ #
    # equipartition (Section 5.1)

    def equipartition_targets(self) -> typing.Dict[str, int]:
        """Allocation numbers for the current job set.

        The paper leaves the round-robin increment order unspecified; we
        order by descending maximum parallelism (then name), so remainder
        processors go to the jobs best able to use them.
        """
        ordered = sorted(self.jobs, key=lambda j: (-len(j.workers), j.name))
        caps = {job.name: len(job.workers) for job in ordered}
        return equipartition_allocation(caps, self.online_count())

    def rebalance_equipartition(self) -> None:
        """Move processors so every job holds its allocation number.

        Processors are taken from over-allocated jobs (idle ones first)
        and granted to under-allocated jobs.  This happens only on job
        arrival and completion, so in the workload mixes (simultaneous
        arrival at t = 0) it runs a handful of times per experiment.
        """
        self._profiled("policy/rebalance", self._rebalance_impl)

    def _rebalance_impl(self) -> None:
        targets = self.equipartition_targets()
        self._emit_decision(
            "EQ",
            None,
            None,
            "allocation numbers recomputed on job arrival/completion",
            allocations=targets,
        )
        surplus: typing.List[ProcessorRecord] = [p for p in self.procs if p.is_free]
        for job in self.jobs:
            excess = self.allocation(job) - targets[job.name]
            if excess <= 0:
                continue
            owned = [p for p in self.procs if p.job is job]
            owned.sort(key=lambda p: (p.is_busy, p.cpu_id))  # idle first
            for proc in owned[:excess]:
                if proc.is_busy:
                    self.system.preempt_processor(proc)
                self.system.release_processor(proc)
                surplus.append(proc)
        for job in self.jobs:
            deficit = targets[job.name] - self.allocation(job)
            for _ in range(deficit):
                if not surplus:
                    return
                proc = surplus.pop(0)
                self.system.grant_processor(proc, job)

    # ------------------------------------------------------------------ #
    # dynamic policies (Sections 5.2-5.4)

    def processor_available(self, proc: ProcessorRecord) -> None:
        """A processor became free: apply rule A.1, then priority dispatch."""
        if self.policy.is_equipartition:
            return  # equipartition never reacts to availability mid-run
        self._profiled(
            "policy/processor_available",
            lambda: self._processor_available_impl(proc),
        )

    def _processor_available_impl(self, proc: ProcessorRecord) -> None:
        if not proc.is_free:
            raise RuntimeError(f"processor {proc.cpu_id} is not free")
        requesting = self.requesters()
        if self.policy.use_affinity:
            # Rule A.1, walking the processor history most-recent first
            # (depth 1 in the paper; deeper for the history ablation).
            for task_key in proc.history:
                worker = self._worker_of(task_key)
                if worker is None or worker not in worker.job.dispatchable_workers():
                    continue
                priority_ok = (
                    not self.policy.respect_priority
                    or self.credit.at_least_as_deserving(worker.job, requesting)
                )
                if priority_ok:
                    # Snapshot the credits the gate actually compared
                    # (empty for NoPri, which never ran the gate).
                    credits: typing.Dict[str, float] = {}
                    if self.policy.respect_priority:
                        credits = self._credit_snapshot([worker.job] + requesting)
                    self._emit_decision(
                        "A.1",
                        worker.job,
                        proc.cpu_id,
                        "affinity offer to the last task that ran here",
                        credits=credits,
                    )
                    self.system.grant_processor(proc, worker.job, worker=worker)
                    return
                break  # the most deserving history entry lost on priority
        if not requesting:
            return
        if self.policy.respect_priority:
            job = self.credit.priority_order(requesting, self.system.now)[0]
        else:
            job = self.system.rng.choice(requesting)
        worker = job.select_worker(
            proc.cpu_id, self.policy.use_affinity, self.policy.history_depth
        )
        if worker is None:
            return
        if self.policy.respect_priority:
            self._emit_decision(
                "priority",
                job,
                proc.cpu_id,
                "highest-credit requester wins the free processor",
                credits=self._credit_snapshot(requesting),
            )
        else:
            self._emit_decision(
                "random",
                job,
                proc.cpu_id,
                "uniform-random requester (priority clause dropped)",
            )
        self.system.grant_processor(proc, job, worker=worker)

    def new_work(self, job: Job) -> None:
        """``job`` has new runnable work: apply rules D.1, D.2, D.3 / A.2."""
        if self.policy.is_equipartition:
            return  # its processors were already used by the system
        self._profiled("policy/new_work", lambda: self._new_work_impl(job))

    def _new_work_impl(self, job: Job) -> None:
        while True:
            want = job.additional_request(self.allocation(job))
            if want <= 0:
                return
            rule, reason = "D.1", "granted from the free pool"
            proc = self._take_free(job)
            if proc is None:
                rule, reason = "D.2", "claimed from a yield-delay window"
                proc = self._take_willing(job)
            if proc is None:
                rule = "D.3"  # _take_preempt emits its own evidence record
                proc = self._take_preempt(job)
            if proc is None:
                return
            if rule != "D.3":
                self._emit_decision(rule, job, proc.cpu_id, reason)
            worker = job.select_worker(
                proc.cpu_id, self.policy.use_affinity, self.policy.history_depth
            )
            if worker is None:
                return
            self.system.grant_processor(proc, job, worker=worker)

    def _pick_with_affinity(
        self, job: Job, candidates: typing.List[ProcessorRecord]
    ) -> typing.Optional[ProcessorRecord]:
        """A.2: desired processor first, then any affine one, then arbitrary."""
        if not candidates:
            return None
        if self.policy.use_affinity:
            desired = job.desired_processor()
            for proc in candidates:
                if proc.cpu_id == desired:
                    return proc
            affine_cpus = {
                w.last_processor
                for w in job.dispatchable_workers()
                if w.last_processor is not None
            }
            for proc in candidates:
                if proc.cpu_id in affine_cpus:
                    return proc
        # Affinity-oblivious fall-through: lowest-numbered candidate, the
        # natural free-list order a real allocator hands out.  (This is
        # what gives plain Dynamic its *incidental* ~20-30% affinity in
        # Table 3: tasks tend to bounce within a stable set of processors.)
        return candidates[0]

    def _take_free(self, job: Job) -> typing.Optional[ProcessorRecord]:
        """Rule D.1."""
        return self._pick_with_affinity(job, self.free_processors())

    def _take_willing(self, job: Job) -> typing.Optional[ProcessorRecord]:
        """Rule D.2: claim a processor out of another job's yield window."""
        proc = self._pick_with_affinity(job, self.willing_processors(exclude=job))
        if proc is None:
            return None
        self.system.release_processor(proc)
        return proc

    def _take_preempt(self, job: Job) -> typing.Optional[ProcessorRecord]:
        """Rule D.3: preempt from the job(s) with the largest allocation."""
        if not self.policy.respect_priority:
            return None  # Dyn-Aff-NoPri ignores D.3 entirely
        my_alloc = self.allocation(job)
        victims = [
            (self.allocation(other), other)
            for other in self.jobs
            if other is not job and not other.finished
        ]
        if not victims:
            return None
        victims.sort(key=lambda item: (-item[0], item[1].name))
        victim_alloc, victim = victims[0]
        self.credit.refresh(job, self.system.now)
        self.credit.refresh(victim, self.system.now)
        if not self.credit.may_preempt(job, my_alloc, victim, victim_alloc):
            return None
        owned_busy = [p for p in self.procs if p.job is victim and p.is_busy]
        if not owned_busy:
            return None
        proc = self.system.rng.choice(owned_busy)
        self._emit_decision(
            "D.3",
            job,
            proc.cpu_id,
            f"preempt {victim.name} (largest allocation) for equity",
            credits=self._credit_snapshot([job, victim]),
            allocations={job.name: my_alloc, victim.name: victim_alloc},
        )
        self.system.preempt_processor(proc)
        self.system.release_processor(proc)
        return proc
