"""Processor allocation: the paper's contribution.

This package is the Minos analogue: an allocator framework
(:mod:`~repro.core.allocator`), the adaptive priority scheme of
[McCann et al. 91] (:mod:`~repro.core.priority`), processor/task histories
(:mod:`~repro.core.history`), the five space-sharing policies of Section 5
(:mod:`~repro.core.policies`), and the discrete-event scheduling system
(:mod:`~repro.core.system`) that runs workload mixes under a policy.
"""

from repro.core.allocator import Allocator
from repro.core.history import ProcessorHistory, TaskHistory
from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
    POLICIES,
    Policy,
    equipartition_allocation,
)
from repro.core.priority import CreditScheduler
from repro.core.system import SchedulingSystem, SystemResult
from repro.core.trace import AllocationTrace, Segment
from repro.core.timesharing import (
    TIME_SHARING,
    TIME_SHARING_AFFINITY,
    TimeSharingPolicy,
    TimeSharingSystem,
)

__all__ = [
    "AllocationTrace",
    "Allocator",
    "CreditScheduler",
    "DYNAMIC",
    "DYN_AFF",
    "DYN_AFF_DELAY",
    "DYN_AFF_NOPRI",
    "EQUIPARTITION",
    "POLICIES",
    "Policy",
    "ProcessorHistory",
    "SchedulingSystem",
    "Segment",
    "SystemResult",
    "TIME_SHARING",
    "TIME_SHARING_AFFINITY",
    "TaskHistory",
    "TimeSharingPolicy",
    "TimeSharingSystem",
    "equipartition_allocation",
]
