"""Processor and task histories ([Squillante & Lazowska 89], Section 5.3).

"For a processor, its history is an ordered list of the last T tasks to
have run on it.  For a task, its history is an ordered list of the last P
processors on which it has run.  In the work that follows, we remember
only the last task or processor (T = P = 1)."

The classes support arbitrary depth; the policies use depth 1 like the
paper, but the generalization is exercised by tests and available for
experimentation.
"""

from __future__ import annotations

import collections
import typing

K = typing.TypeVar("K")


class _BoundedHistory(typing.Generic[K]):
    """Most-recent-first bounded history of hashable items."""

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError("history depth must be at least 1")
        self.depth = depth
        self._items: typing.Deque[K] = collections.deque(maxlen=depth)

    def record(self, item: K) -> None:
        """Push ``item`` as the most recent entry (deduplicating the head)."""
        if self._items and self._items[0] == item:
            return
        self._items.appendleft(item)

    @property
    def most_recent(self) -> typing.Optional[K]:
        """The latest entry, or None if empty."""
        return self._items[0] if self._items else None

    def __contains__(self, item: K) -> bool:
        return item in self._items

    def __iter__(self) -> typing.Iterator[K]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        """Forget everything."""
        self._items.clear()


class ProcessorHistory(_BoundedHistory[typing.Tuple[str, int]]):
    """The last T task keys to have run on one processor."""

    @property
    def last_task(self) -> typing.Optional[typing.Tuple[str, int]]:
        """The most recent task key (rule A.1's *last-task*)."""
        return self.most_recent


class TaskHistory(_BoundedHistory[int]):
    """The last P processors one task has run on."""

    @property
    def last_processor(self) -> typing.Optional[int]:
        """The most recent processor (rule A.2's *desired-processor*)."""
        return self.most_recent

    def has_affinity_for(self, processor: int) -> bool:
        """True when ``processor`` appears anywhere in the remembered window."""
        return processor in self
